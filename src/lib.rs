#![warn(missing_docs)]

//! # darm — Control-Flow Melding for SIMT Thread Divergence Reduction
//!
//! Facade crate for the DARM reproduction (Saumya, Sundararajah & Kulkarni,
//! CGO 2022). Re-exports every subsystem:
//!
//! * [`ir`] — SSA intermediate representation and builder,
//! * [`analysis`] — dominators, regions, SESE chains, divergence analysis,
//!   and the memoizing analysis manager,
//! * [`transforms`] — simplifycfg, DCE, SSA repair,
//! * [`pipeline`] — the pass manager: cached analyses with invalidation,
//!   composable pass pipelines, textual pipeline specs,
//! * [`align`] — sequence alignment and melding profitability,
//! * [`melding`] — the DARM pass plus tail-merging / branch-fusion baselines,
//! * [`simt`] — SIMT GPU simulator with IPDOM reconvergence and counters,
//! * [`kernels`] — the paper's synthetic and real-world benchmark kernels,
//! * [`serve`] — the `darm serve` persistent compile service: framed
//!   JSON protocol, bounded work queue with load shedding, cross-run
//!   content-hash compile cache, fail-then-degrade fault policy.
//!
//! ## Quickstart
//!
//! ```
//! use darm::prelude::*;
//!
//! // Build the paper's running example (bitonic sort), meld it, and compare
//! // simulated cycles.
//! let kernel = darm::kernels::bitonic::build_kernel(64);
//! let mut melded = kernel.clone();
//! let stats = darm::melding::meld_function(&mut melded, &MeldConfig::default());
//! assert!(stats.melded_subgraphs > 0);
//! ```

pub use darm_align as align;
pub use darm_analysis as analysis;
pub use darm_ir as ir;
pub use darm_kernels as kernels;
pub use darm_melding as melding;
pub use darm_pipeline as pipeline;
pub use darm_serve as serve;
pub use darm_simt as simt;
pub use darm_transforms as transforms;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use darm_analysis::divergence::DivergenceAnalysis;
    pub use darm_analysis::AnalysisManager;
    pub use darm_ir::builder::FunctionBuilder;
    pub use darm_ir::{
        AddrSpace, BlockId, Dim, FcmpPred, Function, IcmpPred, InstData, InstId, Module, Opcode,
        Type, Value,
    };
    pub use darm_melding::{meld_function, run_meld_pipeline, MeldConfig, MeldMode, MeldStats};
    pub use darm_pipeline::{
        ModuleOptions, ModulePassManager, PassManager, PassRegistry, PassSpec, PipelineOptions,
    };
    pub use darm_simt::{Gpu, GpuConfig, LaunchConfig};
}
