//! `darm` — command-line driver for the control-flow melding toolchain.
//!
//! ```text
//! darm meld <input.ir> [-o out.ir] [--mode darm|bf] [--threshold T]
//!           [--no-unpredicate] [--dot out.dot] [--stats] [--jobs N]
//!           [--passes SPEC] [--time-passes] [--verify-each]
//!           [--on-error degrade|fail] [--timeout-ms N] [--fuel N]
//! darm run  <input.ir> --block N [--grid N] [--buf LEN]... [--i32 X]...
//!           [--backend reference|prepared|bytecode]
//!           [--timing] [--issue-width N] [--no-mem-model]
//! darm analyze <input.ir>
//! darm serve [--socket PATH] [--jobs N] [--queue-depth N]
//!            [--cache-entries N] [--cache-bytes N] [--spec SPEC]
//!            [--timeout-ms N] [--fuel N] [--max-frame N]
//! ```
//!
//! `meld` parses a textual IR module — one or more `fn @name` kernels per
//! file — runs DARM (or the branch-fusion baseline) over every function,
//! and prints or writes the transformed module. With `--passes` the
//! transform chain is built from a pipeline spec (parameters and fixpoint
//! groups supported, e.g. `meld(threshold=0.3),fixpoint(simplify,dce)`;
//! see `darm_pipeline::spec` for the grammar and `darm_melding::registry`
//! for the names) instead of the default single melding pass. Functions
//! are compiled on `--jobs N` worker threads (default: all cores; the
//! output is bit-identical to `--jobs 1`). `--time-passes` prints the
//! per-pass/per-function timing tables and `--verify-each` checks SSA
//! between passes.
//!
//! Failure semantics: melding is strictly optional, so by default
//! (`--on-error degrade`) a function whose pipeline faults — panics,
//! errors, or exhausts the `--timeout-ms`/`--fuel` budget — is emitted as
//! its verified *input* IR with a `warning:` diagnostic on stderr, and the
//! exit code stays 0. `--on-error fail` turns the earliest fault into an
//! `error:` and exit code 1. `run` executes a kernel (the first function of the
//! module) on the SIMT simulator with zero-initialized `i32` buffers and
//! prints the counters; `--backend` picks the execution tier (the per-lane
//! `reference` interpreter, the pre-decoded `prepared` engine — the
//! default — or the flat register `bytecode` engine; all three are
//! bit-identical in buffers, stats, and errors). `--timing` additionally
//! threads the cycle-level timing observer through the run (prepared and
//! bytecode tiers) and prints simulated cycles, stalls and issue slots
//! next to the architectural counters; `--issue-width N` sets the lanes
//! issued per cycle and `--no-mem-model` drops the coalescing/bank-
//! conflict occupancy terms. `analyze` reports divergence analysis and
//! meldable regions for every function without transforming.
//!
//! `serve` starts the persistent compile service: a length-prefixed JSON
//! frame protocol on stdin/stdout (or a Unix socket with `--socket`),
//! compile requests keyed into a cross-run per-function cache, a bounded
//! work queue that sheds load with typed `overloaded` responses, and a
//! fail-then-degrade fault policy under per-request budgets. See
//! `darm_serve` for the protocol grammar and policies.

use darm::analysis::{to_dot, verify_ssa, DivergenceAnalysis};
use darm::ir::parser::{fixup_types, parse_module};
use darm::ir::Module;
use darm::melding::{region, Analyses, MeldConfig, MeldMode};
use darm::pipeline::{Budget, ModuleOptions, ModulePassManager, OnError, PipelineOptions};
use darm::prelude::*;
use darm::serve::{serve_stream, Engine, ServeConfig};
use darm::simt::{BackendKind, KernelArg, TimingConfig};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  darm meld <input.ir> [-o out.ir] [--mode darm|bf] [--threshold T] [--no-unpredicate] [--dot out.dot] [--stats] [--jobs N] [--passes SPEC] [--time-passes] [--verify-each] [--on-error degrade|fail] [--timeout-ms N] [--fuel N]\n  darm run <input.ir> --block N [--grid N] [--buf LEN]... [--i32 X]... [--backend reference|prepared|bytecode] [--timing] [--issue-width N] [--no-mem-model]\n  darm analyze <input.ir>\n  darm serve [--socket PATH] [--jobs N] [--queue-depth N] [--cache-entries N] [--cache-bytes N] [--spec SPEC] [--timeout-ms N] [--fuel N] [--max-frame N]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Module {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut module = parse_module(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    });
    for func in module.functions_mut() {
        fixup_types(func);
        if let Err(e) = verify_ssa(func) {
            eprintln!("error: {path}: @{}: {e}", func.name());
            std::process::exit(1);
        }
    }
    module
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "meld" => cmd_meld(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        _ => usage(),
    }
}

fn cmd_meld(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut output = None;
    let mut dot = None;
    let mut config = MeldConfig::default();
    let mut show_stats = false;
    let mut passes_spec: Option<String> = None;
    let mut options = PipelineOptions::default();
    let mut jobs = 0usize; // 0 = available_parallelism
                           // The CLI defaults to graceful degradation: melding is optional, the
                           // verified input IR is always a correct output for a faulting function.
    let mut on_error = OnError::Degrade;
    let mut timeout_ms: Option<u64> = None;
    let mut fuel: Option<u64> = None;
    fn parse_on_error(v: &str) -> OnError {
        match v {
            "fail" => OnError::Fail,
            "degrade" => OnError::Degrade,
            _ => usage(),
        }
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = it.next().cloned(),
            "--dot" => dot = it.next().cloned(),
            "--stats" => show_stats = true,
            "--no-unpredicate" => config.unpredicate = false,
            "--passes" => passes_spec = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--time-passes" => options.time_passes = true,
            "--verify-each" => options.verify_each = true,
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--on-error" => {
                on_error = parse_on_error(it.next().map(String::as_str).unwrap_or_else(|| usage()))
            }
            "--timeout-ms" => {
                timeout_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--fuel" => {
                fuel = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--mode" => match it.next().map(String::as_str) {
                Some("darm") => config.mode = MeldMode::Darm,
                Some("bf") => config.mode = MeldMode::BranchFusion,
                _ => usage(),
            },
            "--threshold" => {
                config.threshold = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            other if !other.starts_with('-') && input.is_none() => input = Some(other.to_string()),
            // `--flag=value` spellings of the failure-semantics flags.
            other => match other.split_once('=') {
                Some(("--on-error", v)) => on_error = parse_on_error(v),
                Some(("--timeout-ms", v)) => {
                    timeout_ms = Some(v.parse().unwrap_or_else(|_| usage()))
                }
                Some(("--fuel", v)) => fuel = Some(v.parse().unwrap_or_else(|_| usage())),
                _ => usage(),
            },
        }
    }
    let Some(input) = input else { usage() };
    let mut module = load(&input);
    // One driver for both paths: the default chain is the single melding
    // pass; --passes builds an arbitrary pipeline from the registry. The
    // module manager runs it over every function, in parallel with --jobs.
    let spec = passes_spec.as_deref().unwrap_or("meld");
    let registry = darm::melding::registry(&config);
    let time_passes = options.time_passes;
    options.budget = Budget::new(timeout_ms.map(std::time::Duration::from_millis), fuel);
    let module_options = ModuleOptions {
        pipeline: options,
        jobs,
        on_error,
    };
    let report = ModulePassManager::compile(&registry, spec, module_options, &mut module);
    let report = match report {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Degraded functions were emitted as their verified input IR; say why,
    // stably (`warning: @fn: pass 'meld': time budget exceeded (at ...)`).
    for (_, diag) in report.degraded() {
        eprintln!("warning: {diag}");
    }
    if show_stats {
        let multi = module.len() > 1;
        for fr in &report.functions {
            let prefix = if multi {
                format!("@{}: ", fr.function)
            } else {
                String::new()
            };
            match &passes_spec {
                // Default chain: the friendly melding summary, recovered
                // from the meld pass's stat entries.
                None => {
                    let stats = darm::melding::MeldStats::from_report(&fr.report);
                    eprintln!(
                        "{prefix}melded {} region(s), {} subgraph(s), {} replication(s), {} select(s), {} unpredicated group(s)",
                        stats.melded_regions,
                        stats.melded_subgraphs,
                        stats.replications,
                        stats.selects_inserted,
                        stats.unpredicated_groups
                    );
                }
                Some(_) => {
                    for pass in &fr.report.passes {
                        for (k, v) in &pass.stats {
                            eprintln!("{prefix}{}: {k} = {v}", pass.name);
                        }
                    }
                }
            }
        }
    }
    if time_passes {
        eprint!("{}", report.render());
    }
    for func in module.functions() {
        if let Err(e) = verify_ssa(func) {
            eprintln!(
                "internal error: melded function @{} fails verification: {e}",
                func.name()
            );
            return ExitCode::FAILURE;
        }
    }
    if let Some(p) = dot {
        if module.len() != 1 {
            eprintln!("error: --dot needs a single-function module");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&p, to_dot(&module.functions()[0])) {
            eprintln!("error: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let text = module.to_string();
    match output {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, text) {
                eprintln!("error: cannot write {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut block = 32u32;
    let mut grid = 1u32;
    let mut arg_specs: Vec<(bool, i64)> = Vec::new(); // (is_buffer, len-or-value)
    let mut backend = BackendKind::Prepared;
    let mut timing = TimingConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timing" => timing.enabled = true,
            "--no-mem-model" => timing.memory_model = false,
            "--issue-width" => {
                timing.issue_width = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--block" => {
                block = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--grid" => {
                grid = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--buf" => arg_specs.push((
                true,
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage()),
            )),
            "--i32" => arg_specs.push((
                false,
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage()),
            )),
            "--backend" => {
                backend = it
                    .next()
                    .and_then(|v| BackendKind::parse(v))
                    .unwrap_or_else(|| usage())
            }
            other if !other.starts_with('-') && input.is_none() => input = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let module = load(&input);
    let func = &module.functions()[0];
    let mut gpu = Gpu::new(GpuConfig {
        timing,
        ..GpuConfig::default()
    });
    let mut kargs = Vec::new();
    let mut buffers = Vec::new();
    for &(is_buf, v) in &arg_specs {
        if is_buf {
            let b = gpu.alloc_i32(&vec![0; v as usize]);
            buffers.push(b);
            kargs.push(KernelArg::Buffer(b));
        } else {
            kargs.push(KernelArg::I32(v as i32));
        }
    }
    match gpu.launch_with(backend, func, &LaunchConfig::linear(grid, block), &kargs) {
        Ok(stats) => {
            println!("cycles:              {}", stats.cycles);
            println!("warp instructions:   {}", stats.warp_instructions);
            println!("SIMD efficiency:     {:.3}", stats.simd_efficiency());
            println!("ALU utilization:     {:.1}%", stats.alu_utilization());
            println!("global mem insts:    {}", stats.global_mem_insts);
            println!("shared mem insts:    {}", stats.shared_mem_insts);
            println!("bank conflicts:      {}", stats.shared_bank_conflicts);
            if timing.enabled {
                println!("sim cycles:          {}", stats.sim_cycles);
                println!("sim stall cycles:    {}", stats.sim_stall_cycles);
                println!("sim issue slots:     {}", stats.sim_issue_slots);
                println!("sim divergent brs:   {}", stats.sim_divergent_branches);
                println!("sim reconvergences:  {}", stats.sim_reconvergences);
            }
            for (k, b) in buffers.iter().enumerate() {
                let data = gpu.read_i32(*b);
                let head: Vec<i32> = data.iter().copied().take(8).collect();
                println!(
                    "buffer {k}: {head:?}{}",
                    if data.len() > 8 { " ..." } else { "" }
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simulation error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let Some(input) = args.first() else { usage() };
    let module = load(input);
    for func in module.functions() {
        let da = DivergenceAnalysis::new(func);
        println!(
            "kernel {} — {} blocks, {} instructions",
            func.name(),
            func.block_ids().len(),
            func.live_inst_count()
        );
        let divergent = da.divergent_branch_blocks();
        println!("divergent branches: {}", divergent.len());
        for b in &divergent {
            println!("  {}", func.block_name(*b));
        }
        let analyses = Analyses::new(func);
        for &b in analyses.cfg.rpo() {
            if let Some(r) = region::detect_region(func, &analyses, b) {
                println!(
                    "meldable divergent region at {} (exit {}): {} true / {} false subgraph(s)",
                    func.block_name(r.branch_block),
                    func.block_name(r.exit),
                    r.true_chain.len(),
                    r.false_chain.len()
                );
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut config = ServeConfig {
        // A serving daemon defaults to all cores; `ServeConfig`'s own
        // library default of one worker is for embedders and tests.
        workers: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        ..ServeConfig::default()
    };
    let mut socket: Option<String> = None;
    let mut max_frame = darm::serve::proto::DEFAULT_MAX_FRAME;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        fn num(v: Option<&String>) -> u64 {
            v.and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
        }
        match a.as_str() {
            "--socket" => socket = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--jobs" => config.workers = num(it.next()) as usize,
            "--queue-depth" => config.queue_depth = num(it.next()).max(1) as usize,
            "--cache-entries" => config.cache_entries = num(it.next()) as usize,
            "--cache-bytes" => config.cache_bytes = num(it.next()) as usize,
            "--spec" => config.default_spec = it.next().cloned().unwrap_or_else(|| usage()),
            "--timeout-ms" => config.default_timeout_ms = Some(num(it.next())),
            "--fuel" => config.default_fuel = Some(num(it.next())),
            "--max-frame" => max_frame = num(it.next()).max(16) as usize,
            _ => usage(),
        }
    }
    let engine = std::sync::Arc::new(Engine::new(config));
    match socket {
        Some(path) => serve_on_socket(&engine, &path, max_frame),
        None => {
            // Stdio mode serves exactly one client; EOF without a
            // `shutdown` request still drains in-flight work cleanly.
            // Note the `lock()` guards: the writer moves into worker
            // responders, so it must be `Send + 'static`.
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            match serve_stream(&engine, stdin, stdout, max_frame) {
                Ok(_end) => {
                    engine.shutdown();
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}

#[cfg(unix)]
fn serve_on_socket(engine: &std::sync::Arc<Engine>, path: &str, max_frame: usize) -> ExitCode {
    let listener = match std::os::unix::net::UnixListener::bind(path) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("error: serve: cannot bind {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = darm::serve::serve_unix(engine, &listener, max_frame);
    let _ = std::fs::remove_file(path);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(not(unix))]
fn serve_on_socket(_engine: &std::sync::Arc<Engine>, _path: &str, _max_frame: usize) -> ExitCode {
    eprintln!("error: serve: --socket requires a Unix platform; use stdio mode");
    ExitCode::FAILURE
}
