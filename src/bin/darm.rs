//! `darm` — command-line driver for the control-flow melding toolchain.
//!
//! ```text
//! darm meld <input.ir> [-o out.ir] [--mode darm|bf] [--threshold T]
//!           [--no-unpredicate] [--dot out.dot] [--stats]
//!           [--passes SPEC] [--time-passes] [--verify-each]
//! darm run  <input.ir> --block N [--grid N] [--buf LEN]... [--i32 X]...
//! darm analyze <input.ir>
//! ```
//!
//! `meld` parses a textual IR kernel, runs DARM (or the branch-fusion
//! baseline), and prints or writes the transformed kernel. With `--passes`
//! the transform chain is built from a comma-separated pipeline spec (e.g.
//! `simplify,meld,instcombine,dce`; see `darm_melding::registry` for the
//! names) instead of the default single melding pass; `--time-passes`
//! prints the per-pass timing/stat table and `--verify-each` checks SSA
//! between passes. `run` executes a kernel on the SIMT simulator with
//! zero-initialized `i32` buffers and prints the counters. `analyze`
//! reports divergence analysis and meldable regions without transforming.

use darm::analysis::{to_dot, verify_ssa, DivergenceAnalysis};
use darm::ir::parser::{fixup_types, parse_function};
use darm::melding::{region, run_meld_pipeline, Analyses, MeldConfig, MeldMode};
use darm::pipeline::PipelineOptions;
use darm::prelude::*;
use darm::simt::KernelArg;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  darm meld <input.ir> [-o out.ir] [--mode darm|bf] [--threshold T] [--no-unpredicate] [--dot out.dot] [--stats] [--passes SPEC] [--time-passes] [--verify-each]\n  darm run <input.ir> --block N [--grid N] [--buf LEN]... [--i32 X]...\n  darm analyze <input.ir>"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Function {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let mut func = parse_function(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    });
    fixup_types(&mut func);
    if let Err(e) = verify_ssa(&func) {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    }
    func
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "meld" => cmd_meld(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        _ => usage(),
    }
}

fn cmd_meld(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut output = None;
    let mut dot = None;
    let mut config = MeldConfig::default();
    let mut show_stats = false;
    let mut passes_spec: Option<String> = None;
    let mut options = PipelineOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => output = it.next().cloned(),
            "--dot" => dot = it.next().cloned(),
            "--stats" => show_stats = true,
            "--no-unpredicate" => config.unpredicate = false,
            "--passes" => passes_spec = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--time-passes" => options.time_passes = true,
            "--verify-each" => options.verify_each = true,
            "--mode" => match it.next().map(String::as_str) {
                Some("darm") => config.mode = MeldMode::Darm,
                Some("bf") => config.mode = MeldMode::BranchFusion,
                _ => usage(),
            },
            "--threshold" => {
                config.threshold = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            other if !other.starts_with('-') && input.is_none() => input = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let mut func = load(&input);
    // One driver for both paths: the default chain is the single melding
    // pass; --passes builds an arbitrary pipeline from the registry.
    let report = match &passes_spec {
        Some(spec) => {
            let registry = darm::melding::registry(&config);
            let mut pm = match registry.build(spec, options) {
                Ok(pm) => pm,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match pm.run(&mut func) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => match run_meld_pipeline(&mut func, &config, options) {
            Ok(outcome) => {
                if show_stats {
                    let stats = outcome.stats;
                    eprintln!(
                        "melded {} region(s), {} subgraph(s), {} replication(s), {} select(s), {} unpredicated group(s)",
                        stats.melded_regions,
                        stats.melded_subgraphs,
                        stats.replications,
                        stats.selects_inserted,
                        stats.unpredicated_groups
                    );
                }
                outcome.report
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    if show_stats && passes_spec.is_some() {
        for pass in &report.passes {
            for (k, v) in &pass.stats {
                eprintln!("{}: {k} = {v}", pass.name);
            }
        }
    }
    if options.time_passes {
        eprint!("{}", report.render());
    }
    if let Err(e) = verify_ssa(&func) {
        eprintln!("internal error: melded function fails verification: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(p) = dot {
        if let Err(e) = std::fs::write(&p, to_dot(&func)) {
            eprintln!("error: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let text = func.to_string();
    match output {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, text) {
                eprintln!("error: cannot write {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut block = 32u32;
    let mut grid = 1u32;
    let mut arg_specs: Vec<(bool, i64)> = Vec::new(); // (is_buffer, len-or-value)
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--block" => {
                block = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--grid" => {
                grid = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--buf" => arg_specs.push((
                true,
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage()),
            )),
            "--i32" => arg_specs.push((
                false,
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage()),
            )),
            other if !other.starts_with('-') && input.is_none() => input = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let func = load(&input);
    let mut gpu = Gpu::new(GpuConfig::default());
    let mut kargs = Vec::new();
    let mut buffers = Vec::new();
    for &(is_buf, v) in &arg_specs {
        if is_buf {
            let b = gpu.alloc_i32(&vec![0; v as usize]);
            buffers.push(b);
            kargs.push(KernelArg::Buffer(b));
        } else {
            kargs.push(KernelArg::I32(v as i32));
        }
    }
    match gpu.launch(&func, &LaunchConfig::linear(grid, block), &kargs) {
        Ok(stats) => {
            println!("cycles:              {}", stats.cycles);
            println!("warp instructions:   {}", stats.warp_instructions);
            println!("SIMD efficiency:     {:.3}", stats.simd_efficiency());
            println!("ALU utilization:     {:.1}%", stats.alu_utilization());
            println!("global mem insts:    {}", stats.global_mem_insts);
            println!("shared mem insts:    {}", stats.shared_mem_insts);
            println!("bank conflicts:      {}", stats.shared_bank_conflicts);
            for (k, b) in buffers.iter().enumerate() {
                let data = gpu.read_i32(*b);
                let head: Vec<i32> = data.iter().copied().take(8).collect();
                println!(
                    "buffer {k}: {head:?}{}",
                    if data.len() > 8 { " ..." } else { "" }
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simulation error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let Some(input) = args.first() else { usage() };
    let func = load(input);
    let da = DivergenceAnalysis::new(&func);
    println!(
        "kernel {} — {} blocks, {} instructions",
        func.name(),
        func.block_ids().len(),
        func.live_inst_count()
    );
    let divergent = da.divergent_branch_blocks();
    println!("divergent branches: {}", divergent.len());
    for b in &divergent {
        println!("  {}", func.block_name(*b));
    }
    let analyses = Analyses::new(&func);
    for &b in analyses.cfg.rpo() {
        if let Some(r) = region::detect_region(&func, &analyses, b) {
            println!(
                "meldable divergent region at {} (exit {}): {} true / {} false subgraph(s)",
                func.block_name(r.branch_block),
                func.block_name(r.exit),
                r.true_chain.len(),
                r.false_chain.len()
            );
        }
    }
    ExitCode::SUCCESS
}
