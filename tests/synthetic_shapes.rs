//! Golden structural tests for the Fig. 7 synthetic patterns: the CFG
//! shapes, the divergence analysis verdicts, and the region decomposition
//! must match the paper's diagrams.

use darm::kernels::synthetic::{build_kernel, SyntheticKind};
use darm::melding::{region, Analyses};
use darm::prelude::*;

/// Finds the unique meldable divergent region of a synthetic kernel.
fn the_region(func: &Function) -> darm::melding::MeldableRegion {
    let a = Analyses::new(func);
    let mut found = None;
    for &b in a.cfg.rpo() {
        if let Some(r) = region::detect_region(func, &a, b) {
            assert!(found.is_none(), "expected exactly one meldable region");
            found = Some(r);
        }
    }
    found.expect("synthetic kernels contain a meldable divergent region")
}

#[test]
fn sb1_is_a_diamond() {
    let f = build_kernel(SyntheticKind::Sb1, 32);
    let r = the_region(&f);
    assert_eq!(r.true_chain.len(), 1);
    assert_eq!(r.false_chain.len(), 1);
    assert!(r.true_chain[0].is_single_block());
    assert!(r.false_chain[0].is_single_block());
}

#[test]
fn sb2_sides_are_if_then_regions() {
    let f = build_kernel(SyntheticKind::Sb2, 32);
    let r = the_region(&f);
    assert_eq!(r.true_chain.len(), 1);
    assert_eq!(r.false_chain.len(), 1);
    // if-then region absorbed its join: header + then + join = 3 blocks
    assert_eq!(r.true_chain[0].blocks.len(), 3);
    assert_eq!(r.false_chain[0].blocks.len(), 3);
}

#[test]
fn sb3_sides_are_two_chained_regions() {
    let f = build_kernel(SyntheticKind::Sb3, 32);
    let r = the_region(&f);
    assert_eq!(r.true_chain.len(), 2, "two consecutive if-then regions");
    assert_eq!(r.false_chain.len(), 2);
    for sg in r.true_chain.iter().chain(&r.false_chain) {
        assert_eq!(sg.blocks.len(), 3);
    }
}

#[test]
fn sb4_has_three_way_divergence() {
    let f = build_kernel(SyntheticKind::Sb4, 32);
    // Two nested divergent branches (if-else-if-else).
    let a = Analyses::new(&f);
    let divergent: Vec<_> = a
        .cfg
        .rpo()
        .iter()
        .copied()
        .filter(|&b| a.da.is_divergent_branch(b))
        .collect();
    assert_eq!(divergent.len(), 2, "outer + inner divergent branch");
}

#[test]
fn loop_branches_are_uniform() {
    // The nested loop conditions (o < OUTER, i < INNER) are uniform: they
    // must not be flagged divergent and must not form meldable regions.
    let f = build_kernel(SyntheticKind::Sb1, 32);
    let a = Analyses::new(&f);
    for &b in a.cfg.rpo() {
        let name = f.block_name(b).to_string();
        if name.contains("hdr") {
            assert!(
                !a.da.is_divergent_branch(b),
                "loop header {name} must be uniform"
            );
        }
    }
}

/// §VIII: "DARM can be used as an intra-function code size reduction
/// optimization" — the melded kernel has fewer static instructions.
#[test]
fn melding_reduces_static_code_size_on_identical_paths() {
    for kind in [
        SyntheticKind::Sb1,
        SyntheticKind::Sb2,
        SyntheticKind::Sb3,
        SyntheticKind::Sb4,
    ] {
        let f = build_kernel(kind, 32);
        let before = f.live_inst_count();
        let mut melded = f.clone();
        darm::melding::meld_function(&mut melded, &MeldConfig::default());
        let after = melded.live_inst_count();
        assert!(
            after < before,
            "{}: melding identical paths must shrink code ({before} -> {after})",
            kind.name()
        );
    }
}

/// §VIII: melding reduces the number of branches a symbolic executor would
/// have to fork on.
#[test]
fn melding_reduces_branch_count_on_identical_paths() {
    let f = build_kernel(SyntheticKind::Sb1, 32);
    let mut melded = f.clone();
    darm::melding::meld_function(&mut melded, &MeldConfig::default());
    assert!(melded.cond_branch_count() < f.cond_branch_count());
}

/// Melding straight-lines both paths, so values of both sides are live at
/// once: register pressure may rise but must stay bounded (here: at most
/// 2× plus the inserted selects). This documents the known if-conversion
/// trade-off the paper accepts.
#[test]
fn melding_pressure_tradeoff_is_bounded() {
    use darm::analysis::max_pressure;
    for kind in [SyntheticKind::Sb1R, SyntheticKind::Sb2R] {
        let f = build_kernel(kind, 32);
        let before = max_pressure(&f);
        let mut melded = f.clone();
        darm::melding::meld_function(&mut melded, &MeldConfig::default());
        let after = max_pressure(&melded);
        assert!(
            after <= before * 2 + 8,
            "{}: pressure exploded ({before} -> {after})",
            kind.name()
        );
    }
}
