//! The central correctness property of the reproduction: applying DARM (or
//! the branch-fusion baseline) to *every* benchmark kernel preserves its
//! semantics on the SIMT simulator, and melds where the paper says melding
//! happens.

use darm::analysis::verify_ssa;
use darm::kernels::synthetic::SyntheticKind;
use darm::kernels::{bitonic, dct, lud, mergesort, nqueens, pcm, srad, BenchCase};
use darm::melding::{run_meld_pipeline, MeldConfig, MeldStats};
use darm::pipeline::PipelineOptions;

/// Melds the case's kernel through the shared pipeline driver with SSA
/// verification between passes, re-runs it on the same inputs and checks
/// the CPU-reference outputs. Returns meld statistics.
fn meld_and_check(case: &BenchCase, config: &MeldConfig) -> MeldStats {
    case.run_checked(&case.func); // baseline sanity
    let mut melded = case.func.clone();
    let options = PipelineOptions {
        verify_each: true,
        ..PipelineOptions::default()
    };
    let stats = run_meld_pipeline(&mut melded, config, options)
        .unwrap_or_else(|e| panic!("{}: meld pipeline failed: {e}\n{melded}", case.name))
        .stats;
    verify_ssa(&melded).unwrap_or_else(|e| {
        panic!(
            "{}: melded kernel fails verification: {e}\n{melded}",
            case.name
        )
    });
    case.run_checked(&melded);
    stats
}

#[test]
fn synthetic_kernels_meld_correctly_under_darm() {
    for kind in SyntheticKind::all() {
        for bs in [32, 64] {
            let case = darm::kernels::synthetic::build_case(kind, bs);
            let stats = meld_and_check(&case, &MeldConfig::default());
            assert!(
                stats.melded_subgraphs >= 1,
                "{}: DARM must meld every synthetic pattern, got {stats:?}",
                case.name
            );
        }
    }
}

#[test]
fn synthetic_kernels_meld_correctly_under_branch_fusion() {
    for kind in SyntheticKind::all() {
        let case = darm::kernels::synthetic::build_case(kind, 32);
        let stats = meld_and_check(&case, &MeldConfig::branch_fusion());
        // BF only handles the diamond patterns (SB1, SB4's inner diamond);
        // it must never mis-compile the rest (checked by meld_and_check).
        if matches!(kind, SyntheticKind::Sb1 | SyntheticKind::Sb1R) {
            assert!(
                stats.melded_subgraphs >= 1,
                "{}: BF handles diamonds",
                case.name
            );
        }
        if matches!(kind, SyntheticKind::Sb2 | SyntheticKind::Sb3) {
            assert_eq!(
                stats.melded_subgraphs, 0,
                "{}: BF cannot handle complex control flow",
                case.name
            );
        }
    }
}

#[test]
fn bitonic_melds_and_stays_a_sort() {
    for bs in [32, 64, 128] {
        let case = bitonic::build_case(bs);
        let stats = meld_and_check(&case, &MeldConfig::default());
        assert!(stats.melded_subgraphs >= 1, "BIT{bs} must meld: {stats:?}");
        let bf = meld_and_check(&case, &MeldConfig::branch_fusion());
        assert_eq!(
            bf.melded_subgraphs, 0,
            "BIT{bs}: BF cannot meld the if-then regions"
        );
    }
}

#[test]
fn pcm_melds_and_stays_a_sort() {
    for bs in [32, 64] {
        let case = pcm::build_case(bs);
        let stats = meld_and_check(&case, &MeldConfig::default());
        assert!(stats.melded_subgraphs >= 1, "PCM{bs} must meld: {stats:?}");
        meld_and_check(&case, &MeldConfig::branch_fusion());
    }
}

#[test]
fn mergesort_melds_and_stays_a_merge() {
    for bs in [32, 64] {
        let case = mergesort::build_case(bs);
        let stats = meld_and_check(&case, &MeldConfig::default());
        assert!(stats.melded_subgraphs >= 1, "MS{bs} must meld: {stats:?}");
        meld_and_check(&case, &MeldConfig::branch_fusion());
    }
}

#[test]
fn lud_melds_the_perimeter_loops() {
    for bs in [16, 32, 64, 128] {
        let case = lud::build_case(bs);
        let stats = meld_and_check(&case, &MeldConfig::default());
        assert!(stats.melded_subgraphs >= 1, "LUD{bs} must meld: {stats:?}");
    }
}

#[test]
fn nqueens_melds_with_region_replication() {
    let case = nqueens::build_case(32);
    let stats = meld_and_check(&case, &MeldConfig::default());
    assert!(stats.melded_subgraphs >= 1, "NQU must meld: {stats:?}");
    meld_and_check(&case, &MeldConfig::branch_fusion());
}

#[test]
fn srad_melds_and_preserves_the_stencil() {
    for block in [(16, 16), (32, 32)] {
        let case = srad::build_case(block);
        let stats = meld_and_check(&case, &MeldConfig::default());
        assert!(stats.melded_subgraphs >= 1, "SRAD must meld: {stats:?}");
        meld_and_check(&case, &MeldConfig::branch_fusion());
    }
}

#[test]
fn dct_melds_the_quantization_diamond() {
    for block in [(4, 4), (8, 8), (16, 16)] {
        let case = dct::build_case(block);
        let stats = meld_and_check(&case, &MeldConfig::default());
        assert!(stats.melded_subgraphs >= 1, "DCT must meld: {stats:?}");
        let bf = meld_and_check(&case, &MeldConfig::branch_fusion());
        assert!(
            bf.melded_subgraphs >= 1,
            "DCT's diamond is BF territory too"
        );
    }
}

#[test]
fn ablation_no_unpredication_still_correct() {
    let cfg = MeldConfig {
        unpredicate: false,
        ..MeldConfig::default()
    };
    for kind in [SyntheticKind::Sb1R, SyntheticKind::Sb2R] {
        let case = darm::kernels::synthetic::build_case(kind, 32);
        meld_and_check(&case, &cfg);
    }
    meld_and_check(&dct::build_case((8, 8)), &cfg);
}

#[test]
fn threshold_sweep_is_always_correct() {
    let case = bitonic::build_case(32);
    for th in [0.1, 0.2, 0.3, 0.4, 0.5] {
        meld_and_check(&case, &MeldConfig::with_threshold(th));
    }
}
