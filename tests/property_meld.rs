//! Property-based testing of the whole pipeline: random divergent kernels
//! are melded (DARM and branch fusion) and must keep their simulator
//! semantics bit-for-bit, stay verifier-clean, and never hang.

use darm::analysis::verify_ssa;
use darm::melding::{meld_function, MeldConfig};
use darm::prelude::*;
use darm::simt::KernelArg;
use darm::transforms::{run_dce, simplify_cfg};
use proptest::prelude::*;

/// One straight-line operation applied to the running value.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add(i32),
    Sub(i32),
    Mul(i32),
    Xor(i32),
    And(i32),
    Or(i32),
    Shl(u8),
    Tid,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-50i32..50).prop_map(Op::Add),
        (-50i32..50).prop_map(Op::Sub),
        (-7i32..7).prop_map(Op::Mul),
        (0i32..1024).prop_map(Op::Xor),
        (0i32..1024).prop_map(Op::And),
        (0i32..1024).prop_map(Op::Or),
        (0u8..4).prop_map(Op::Shl),
        Just(Op::Tid),
    ]
}

/// One side of the divergent branch: a body plus an optional nested
/// data-dependent if-then region (making the side a multi-block subgraph).
#[derive(Debug, Clone)]
struct Side {
    body: Vec<Op>,
    nested: Option<Vec<Op>>,
}

fn side_strategy() -> impl Strategy<Value = Side> {
    (
        proptest::collection::vec(op_strategy(), 1..6),
        proptest::option::of(proptest::collection::vec(op_strategy(), 1..4)),
    )
        .prop_map(|(body, nested)| Side { body, nested })
}

fn emit_ops(b: &mut FunctionBuilder<'_>, tid: Value, mut v: Value, ops: &[Op]) -> Value {
    for op in ops {
        v = match *op {
            Op::Add(k) => b.add(v, Value::I32(k)),
            Op::Sub(k) => b.sub(v, Value::I32(k)),
            Op::Mul(k) => b.mul(v, Value::I32(k)),
            Op::Xor(k) => b.xor(v, Value::I32(k)),
            Op::And(k) => b.and(v, Value::I32(k)),
            Op::Or(k) => b.or(v, Value::I32(k)),
            Op::Shl(k) => b.shl(v, Value::I32(k as i32)),
            Op::Tid => b.add(v, tid),
        };
    }
    v
}

/// Builds `out[tid] = f(tid)` where f diverges on `tid % 2` into the two
/// random sides (each side reads and writes out[tid]).
fn build_kernel(t_side: &Side, f_side: &Side) -> Function {
    let mut f = Function::new("prop", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let join = f.add_block("join");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let p = b.gep(Type::I32, b.param(0), tid);
    let v0 = b.load(Type::I32, p);
    let one = b.const_i32(1);
    let parity = b.and(tid, one);
    let c = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
    let cur = b.current_block();

    let emit_side = |b: &mut FunctionBuilder<'_>, side: &Side, label: &str| -> BlockId {
        let blk = b.add_block(label);
        b.switch_to(blk);
        let v = emit_ops(b, tid, v0, &side.body);
        b.store(v, p);
        match &side.nested {
            None => {
                b.jump(join);
                blk
            }
            Some(nested) => {
                let then = b.add_block(&format!("{label}.then"));
                let out = b.add_block(&format!("{label}.out"));
                let cc = b.icmp(IcmpPred::Sgt, v, b.const_i32(0));
                b.br(cc, then, out);
                b.switch_to(then);
                let w = emit_ops(b, tid, v, nested);
                b.store(w, p);
                b.jump(out);
                b.switch_to(out);
                b.jump(join);
                blk
            }
        }
    };
    let t_blk = emit_side(&mut b, t_side, "t");
    let f_blk = emit_side(&mut b, f_side, "f");
    b.switch_to(cur);
    b.br(c, t_blk, f_blk);
    b.switch_to(join);
    b.ret(None);
    f
}

fn run(func: &Function, input: &[i32]) -> Vec<i32> {
    let mut gpu = Gpu::new(GpuConfig::default());
    let buf = gpu.alloc_i32(input);
    gpu.launch(
        func,
        &LaunchConfig::linear(1, input.len() as u32),
        &[KernelArg::Buffer(buf)],
    )
    .unwrap_or_else(|e| panic!("simulation failed: {e}\n{func}"));
    gpu.read_i32(buf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DARM and branch fusion preserve semantics on arbitrary two-sided
    /// divergent kernels, with or without unpredication, at any threshold.
    #[test]
    fn melding_preserves_semantics(
        t_side in side_strategy(),
        f_side in side_strategy(),
        threshold in prop_oneof![Just(0.1), Just(0.2), Just(0.4)],
        unpredicate in any::<bool>(),
    ) {
        let func = build_kernel(&t_side, &f_side);
        verify_ssa(&func).expect("generated kernel must verify");
        let input: Vec<i32> = (0..64).map(|i| (i * 31 % 97) - 48).collect();
        let expected = run(&func, &input);

        for mode in [MeldMode::Darm, MeldMode::BranchFusion] {
            let mut melded = func.clone();
            let cfg = MeldConfig { mode, threshold, unpredicate, ..MeldConfig::default() };
            meld_function(&mut melded, &cfg);
            verify_ssa(&melded)
                .unwrap_or_else(|e| panic!("melded kernel fails verification: {e}\n{melded}"));
            let got = run(&melded, &input);
            prop_assert_eq!(&got, &expected, "mode {:?} changed semantics\n{}", mode, melded);
        }
    }

    /// The cleanup pipeline alone (simplify-cfg + DCE) is also semantics
    /// preserving on the same kernel family.
    #[test]
    fn cleanup_preserves_semantics(t_side in side_strategy(), f_side in side_strategy()) {
        let func = build_kernel(&t_side, &f_side);
        let input: Vec<i32> = (0..64).map(|i| (i * 13 % 89) - 44).collect();
        let expected = run(&func, &input);
        let mut cleaned = func.clone();
        simplify_cfg(&mut cleaned);
        run_dce(&mut cleaned);
        verify_ssa(&cleaned).expect("cleaned kernel must verify");
        let got = run(&cleaned, &input);
        prop_assert_eq!(got, expected);
    }
}

/// Builds a loop-wrapped three-way divergent kernel:
/// `for p in 0..3 { if tid%3==0 {A} else if tid%3==1 {B} else {C} }`
/// with random bodies — exercises melding inside loops and the
/// if-else-if-else (SB4) shape with arbitrary instruction mixes.
fn build_three_way_loop_kernel(a_ops: &[Op], b_ops: &[Op], c_ops: &[Op]) -> Function {
    let mut f = Function::new("prop3", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let hdr = f.add_block("hdr");
    let body = f.add_block("body");
    let a_blk = f.add_block("a");
    let sel = f.add_block("sel");
    let b_blk = f.add_block("b");
    let c_blk = f.add_block("c");
    let latch = f.add_block("latch");
    let exit = f.add_block("exit");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let p = b.gep(Type::I32, b.param(0), tid);
    b.jump(hdr);
    b.switch_to(hdr);
    let i = b.phi(Type::I32, &[(entry, Value::I32(0))]);
    let hc = b.icmp(IcmpPred::Slt, i, b.const_i32(3));
    b.br(hc, body, exit);
    b.switch_to(body);
    let three = b.const_i32(3);
    let m = b.srem(tid, three);
    let c0 = b.icmp(IcmpPred::Eq, m, b.const_i32(0));
    b.br(c0, a_blk, sel);
    let emit_leaf = |b: &mut FunctionBuilder<'_>, blk: BlockId, ops: &[Op]| {
        b.switch_to(blk);
        let v = b.load(Type::I32, p);
        let w = emit_ops(b, tid, v, ops);
        b.store(w, p);
        b.jump(latch);
    };
    emit_leaf(&mut b, a_blk, a_ops);
    b.switch_to(sel);
    let c1 = b.icmp(IcmpPred::Eq, m, b.const_i32(1));
    b.br(c1, b_blk, c_blk);
    emit_leaf(&mut b, b_blk, b_ops);
    emit_leaf(&mut b, c_blk, c_ops);
    b.switch_to(latch);
    let i2 = b.add(i, b.const_i32(1));
    b.jump(hdr);
    b.switch_to(exit);
    b.ret(None);
    let pi = i.as_inst().unwrap();
    f.inst_mut(pi).operands.push(i2);
    f.inst_mut(pi).phi_blocks.push(latch);
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Loop-wrapped three-way divergence (the SB4 shape) with random
    /// bodies: melding must preserve semantics under every configuration.
    #[test]
    fn three_way_loop_melding_preserves_semantics(
        a_ops in proptest::collection::vec(op_strategy(), 1..5),
        b_ops in proptest::collection::vec(op_strategy(), 1..5),
        c_ops in proptest::collection::vec(op_strategy(), 1..5),
        unpredicate in any::<bool>(),
    ) {
        let func = build_three_way_loop_kernel(&a_ops, &b_ops, &c_ops);
        verify_ssa(&func).expect("generated kernel must verify");
        let input: Vec<i32> = (0..96).map(|i| (i * 17 % 61) - 30).collect();
        let expected = run(&func, &input);
        for mode in [MeldMode::Darm, MeldMode::BranchFusion] {
            let mut melded = func.clone();
            let cfg = MeldConfig { mode, unpredicate, ..MeldConfig::default() };
            meld_function(&mut melded, &cfg);
            verify_ssa(&melded)
                .unwrap_or_else(|e| panic!("melded kernel fails verification: {e}\n{melded}"));
            let got = run(&melded, &input);
            prop_assert_eq!(&got, &expected, "mode {:?} changed semantics\n{}", mode, melded);
        }
    }
}
