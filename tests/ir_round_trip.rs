//! Print → parse → print round-trip over every benchmark kernel, before
//! and after melding — a strong structural golden test for the printer,
//! parser and the IR itself.

use darm::ir::parser::{fixup_types, parse_function};
use darm::kernels::synthetic::SyntheticKind;
use darm::kernels::{bitonic, dct, lud, mergesort, nqueens, pcm, srad};
use darm::melding::{meld_function, MeldConfig};
use darm::prelude::*;

/// Parsing re-numbers values densely (the original arena keeps tombstones),
/// so the check is normalization idempotence: after one print→parse pass,
/// further passes must be exact fixpoints.
fn assert_round_trip(func: &Function) {
    let parse = |text: &str| -> Function {
        let mut f = parse_function(text)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{text}", func.name()));
        fixup_types(&mut f);
        f.verify_structure()
            .unwrap_or_else(|e| panic!("{}: reparsed does not verify: {e}", func.name()));
        f
    };
    let normalized = parse(&func.to_string()).to_string();
    let again = parse(&normalized).to_string();
    assert_eq!(again, normalized, "{} did not round-trip", func.name());
}

fn all_kernels() -> Vec<Function> {
    let mut fs = vec![
        bitonic::build_kernel(64),
        pcm::build_kernel(64),
        mergesort::build_kernel(),
        lud::build_kernel(),
        nqueens::build_kernel(),
        srad::build_kernel((16, 16)),
        dct::build_kernel(),
    ];
    for kind in SyntheticKind::all() {
        fs.push(darm::kernels::synthetic::build_kernel(kind, 64));
    }
    fs
}

#[test]
fn every_kernel_round_trips() {
    for f in all_kernels() {
        assert_round_trip(&f);
    }
}

#[test]
fn every_melded_kernel_round_trips() {
    for mut f in all_kernels() {
        meld_function(&mut f, &MeldConfig::default());
        assert_round_trip(&f);
    }
}
