//! Integration tests for the `darm` command-line driver: meld, run and
//! analyze a textual kernel end to end through the real binary.

use std::process::Command;

const KERNEL: &str = r#"
fn @cli_demo(ptr(global) %arg0) -> void {
entry:
  %0 = tid.x
  %1 = and %0, 1
  %2 = icmp eq %1, 0
  br %2, t, e
t:
  %3 = mul %0, 3
  %4 = add %3, 10
  %5 = gep i32 %arg0, %0
  store %4, %5
  jump x
e:
  %6 = mul %0, 5
  %7 = add %6, 77
  %8 = gep i32 %arg0, %0
  store %7, %8
  jump x
x:
  ret
}
"#;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_darm"))
}

fn write_kernel(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, KERNEL).unwrap();
    path
}

#[test]
fn meld_subcommand_transforms_and_reports() {
    let input = write_kernel("darm_cli_meld.ir");
    let out = bin()
        .args(["meld", input.to_str().unwrap(), "--stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stdout.contains("fn @cli_demo"), "{stdout}");
    // the divergent diamond must be gone: a single select-merged path
    assert!(stderr.contains("melded 1 region(s)"), "{stderr}");
    assert!(stdout.contains("select"), "{stdout}");
}

#[test]
fn meld_output_is_reparseable_and_runnable() {
    let input = write_kernel("darm_cli_meld2.ir");
    let melded = std::env::temp_dir().join("darm_cli_meld2.out.ir");
    let ok = bin()
        .args([
            "meld",
            input.to_str().unwrap(),
            "-o",
            melded.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(ok.success());
    let out = bin()
        .args([
            "run",
            melded.to_str().unwrap(),
            "--block",
            "32",
            "--buf",
            "32",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("cycles:"), "{stdout}");
    // tid 0: even → 0*3+10 = 10; tid 1: odd → 1*5+77 = 82
    assert!(stdout.contains("[10, 82,"), "{stdout}");
}

#[test]
fn run_subcommand_executes_baseline() {
    let input = write_kernel("darm_cli_run.ir");
    let out = bin()
        .args([
            "run",
            input.to_str().unwrap(),
            "--block",
            "32",
            "--buf",
            "32",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("SIMD efficiency"), "{stdout}");
    assert!(stdout.contains("[10, 82,"), "{stdout}");
}

#[test]
fn run_subcommand_backends_agree() {
    // The --backend flag selects the execution tier; all three must print
    // identical counters and buffer contents on the same kernel.
    let input = write_kernel("darm_cli_backend.ir");
    let run = |backend: &str| {
        let out = bin()
            .args([
                "run",
                input.to_str().unwrap(),
                "--block",
                "32",
                "--buf",
                "32",
                "--backend",
                backend,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "--backend {backend} failed");
        String::from_utf8(out.stdout).unwrap()
    };
    let prepared = run("prepared");
    assert!(prepared.contains("[10, 82,"), "{prepared}");
    assert_eq!(prepared, run("reference"));
    assert_eq!(prepared, run("bytecode"));
    // An unknown backend is a usage error.
    let out = bin()
        .args(["run", input.to_str().unwrap(), "--backend", "jit"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn analyze_subcommand_reports_regions() {
    let input = write_kernel("darm_cli_analyze.ir");
    let out = bin()
        .args(["analyze", input.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("divergent branches: 1"), "{stdout}");
    assert!(
        stdout.contains("meldable divergent region at entry"),
        "{stdout}"
    );
}

#[test]
fn dot_export_writes_a_digraph() {
    let input = write_kernel("darm_cli_dot.ir");
    let dot = std::env::temp_dir().join("darm_cli.dot");
    let ok = bin()
        .args([
            "meld",
            input.to_str().unwrap(),
            "--dot",
            dot.to_str().unwrap(),
            "-o",
            "/dev/null",
        ])
        .status()
        .unwrap();
    assert!(ok.success());
    let text = std::fs::read_to_string(&dot).unwrap();
    assert!(text.starts_with("digraph"));
}

/// Two copies of the divergent diamond under different names — a module.
const MODULE: &str = r#"
fn @k_a(ptr(global) %arg0) -> void {
entry:
  %0 = tid.x
  %1 = and %0, 1
  %2 = icmp eq %1, 0
  br %2, t, e
t:
  %3 = mul %0, 3
  %4 = add %3, 10
  %5 = gep i32 %arg0, %0
  store %4, %5
  jump x
e:
  %6 = mul %0, 5
  %7 = add %6, 77
  %8 = gep i32 %arg0, %0
  store %7, %8
  jump x
x:
  ret
}

fn @k_b(ptr(global) %arg0) -> void {
entry:
  %0 = tid.x
  %1 = and %0, 1
  %2 = icmp eq %1, 0
  br %2, t, e
t:
  %3 = mul %0, 7
  %4 = add %3, 1
  %5 = gep i32 %arg0, %0
  store %4, %5
  jump x
e:
  %6 = mul %0, 9
  %7 = add %6, 2
  %8 = gep i32 %arg0, %0
  store %7, %8
  jump x
x:
  ret
}
"#;

fn write_module(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, MODULE).unwrap();
    path
}

#[test]
fn meld_handles_modules_with_jobs() {
    let input = write_module("darm_cli_module.ir");
    let out = bin()
        .args(["meld", input.to_str().unwrap(), "--jobs", "2", "--stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stdout.contains("fn @k_a"), "{stdout}");
    assert!(stdout.contains("fn @k_b"), "{stdout}");
    // Per-function stats are prefixed in module mode.
    assert!(stderr.contains("@k_a: melded 1 region(s)"), "{stderr}");
    assert!(stderr.contains("@k_b: melded 1 region(s)"), "{stderr}");
}

#[test]
fn parallel_module_meld_is_bit_identical_to_serial() {
    let input = write_module("darm_cli_module_det.ir");
    let run = |jobs: &str| {
        let out = bin()
            .args(["meld", input.to_str().unwrap(), "--jobs", jobs])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    // One serial and one two-worker run — the pair a multi-core CI runner
    // uses to exercise the parallel claim path (the dev container is
    // single-core, so worker counts beyond 2 add nothing locally) — plus
    // an all-cores-ish run for good measure.
    let serial = run("1");
    assert_eq!(serial, run("2"));
    assert_eq!(serial, run("4"));
}

#[test]
fn jobs_two_reports_the_same_stats_as_serial() {
    let input = write_module("darm_cli_module_stats.ir");
    let run = |jobs: &str| {
        let out = bin()
            .args(["meld", input.to_str().unwrap(), "--jobs", jobs, "--stats"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8(out.stdout).unwrap(),
            String::from_utf8(out.stderr).unwrap(),
        )
    };
    let (out1, stats1) = run("1");
    let (out2, stats2) = run("2");
    assert_eq!(out1, out2, "--jobs 2 IR diverged from --jobs 1");
    assert_eq!(stats1, stats2, "--jobs 2 stats diverged from --jobs 1");
    assert!(stats1.contains("@k_a: melded 1 region(s)"), "{stats1}");
}

#[test]
fn parameterized_pass_specs_drive_the_pipeline() {
    let input = write_module("darm_cli_spec.ir");
    // A threshold above any profit melds nothing; both diamonds survive.
    let out = bin()
        .args([
            "meld",
            input.to_str().unwrap(),
            "--passes",
            "meld(threshold=1000000),fixpoint(instcombine,dce)",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.matches("br %").count(), 2, "{stdout}");
    // The default threshold melds both.
    let out = bin()
        .args([
            "meld",
            input.to_str().unwrap(),
            "--passes",
            "meld(threshold=0.2),fixpoint(instcombine,dce)",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.matches("br %").count(), 0, "{stdout}");
}

#[test]
fn bad_specs_fail_with_positioned_diagnostics() {
    let input = write_kernel("darm_cli_badspec.ir");
    let out = bin()
        .args(["meld", input.to_str().unwrap(), "--passes", "fixpoint(dce"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("expected"), "{stderr}");
    let out = bin()
        .args([
            "meld",
            input.to_str().unwrap(),
            "--passes",
            "meld(thresold=0.3)",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown parameter `thresold`"), "{stderr}");
}

#[test]
fn bad_input_fails_with_diagnostic() {
    let path = std::env::temp_dir().join("darm_cli_bad.ir");
    std::fs::write(&path, "fn @x() -> void {\nentry:\n  %0 = bogus\n  ret\n}").unwrap();
    let out = bin()
        .args(["meld", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 3"), "{stderr}");
}

#[test]
fn timeout_zero_degrades_every_function_and_reprints_the_input() {
    let input = write_module("darm_cli_timeout.ir");
    let out = bin()
        .args(["meld", input.to_str().unwrap(), "--timeout-ms", "0"])
        .output()
        .unwrap();
    // Degrade is the CLI default: the run succeeds, every function keeps
    // its baseline IR, and each degradation is a stderr warning.
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    // The divergent diamonds survive untouched (no select-merge happened).
    assert_eq!(stdout.matches("br %").count(), 2, "{stdout}");
    assert!(!stdout.contains("select"), "{stdout}");
    // Pinned diagnostic rendering: function, pass, cause, site.
    assert!(
        stderr.contains("warning: @k_a: pass 'meld': time budget exceeded (at pipeline::pass)"),
        "{stderr}"
    );
    assert!(
        stderr.contains("warning: @k_b: pass 'meld': time budget exceeded (at pipeline::pass)"),
        "{stderr}"
    );
}

#[test]
fn on_error_fail_turns_a_budget_fault_into_exit_one() {
    let input = write_module("darm_cli_fail.ir");
    // Both `--on-error fail` and `--on-error=fail` spellings.
    for args in [
        vec!["--timeout-ms", "0", "--on-error", "fail"],
        vec!["--timeout-ms=0", "--on-error=fail"],
    ] {
        let out = bin()
            .args(["meld", input.to_str().unwrap()])
            .args(&args)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1));
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("error: @k_a: pass 'meld': time budget exceeded (at pipeline::pass)"),
            "{stderr}"
        );
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.is_empty(), "no IR on a failed run: {stdout}");
    }
}

#[test]
fn fuel_zero_degrades_with_a_fuel_diagnostic() {
    let input = write_module("darm_cli_fuel.ir");
    let out = bin()
        .args(["meld", input.to_str().unwrap(), "--fuel", "0"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("warning: @k_a: pass 'meld': fuel budget exhausted (at pipeline::pass)"),
        "{stderr}"
    );
    assert_eq!(stderr.matches("warning: ").count(), 2, "{stderr}");
}

#[test]
fn malformed_module_second_function_fails_with_position() {
    // The first function parses; the second is malformed — module-mode
    // errors still carry the position and exit 1.
    let path = std::env::temp_dir().join("darm_cli_badmod.ir");
    let good = MODULE.split("fn @k_b").next().unwrap();
    std::fs::write(
        &path,
        format!(
            "{good}fn @k_b(ptr(global) %arg0) -> void {{\nentry:\n  %0 = frobnicate\n  ret\n}}\n"
        ),
    )
    .unwrap();
    let out = bin()
        .args(["meld", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("line"), "{stderr}");
}

#[test]
fn degraded_runs_still_render_time_passes_tables() {
    let input = write_module("darm_cli_timeout_tables.ir");
    let out = bin()
        .args([
            "meld",
            input.to_str().unwrap(),
            "--timeout-ms",
            "0",
            "--time-passes",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("| @k_a | 0.000 | 0 | degraded |"),
        "{stderr}"
    );
    assert!(stderr.contains("degraded: 2 function(s)"), "{stderr}");
}

// ---------------------------------------------------------------------------
// `darm serve`: protocol round-trips and malformed-frame behavior through
// the real binary over stdio.

mod serve_protocol {
    use super::{bin, KERNEL};
    use std::io::{Read, Write};
    use std::process::{Child, ChildStdin, ChildStdout, Stdio};

    /// A `darm serve` daemon on piped stdio plus frame-level helpers.
    struct Daemon {
        child: Child,
        stdin: ChildStdin,
        stdout: ChildStdout,
    }

    impl Daemon {
        fn spawn(extra_args: &[&str]) -> Daemon {
            let mut child = bin()
                .arg("serve")
                .args(extra_args)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .unwrap();
            let stdin = child.stdin.take().unwrap();
            let stdout = child.stdout.take().unwrap();
            Daemon {
                child,
                stdin,
                stdout,
            }
        }

        fn send_raw(&mut self, bytes: &[u8]) {
            self.stdin.write_all(bytes).unwrap();
            self.stdin.flush().unwrap();
        }

        fn send(&mut self, json: &str) {
            let mut frame = Vec::with_capacity(4 + json.len());
            frame.extend_from_slice(&(json.len() as u32).to_be_bytes());
            frame.extend_from_slice(json.as_bytes());
            self.send_raw(&frame);
        }

        /// Read one response frame and return its JSON text.
        fn recv(&mut self) -> String {
            let mut prefix = [0u8; 4];
            self.stdout.read_exact(&mut prefix).unwrap();
            let len = u32::from_be_bytes(prefix) as usize;
            let mut body = vec![0u8; len];
            self.stdout.read_exact(&mut body).unwrap();
            String::from_utf8(body).unwrap()
        }

        /// Close stdin (EOF) and wait for a clean exit.
        fn finish(mut self) {
            drop(self.stdin);
            let status = self.child.wait().unwrap();
            assert!(status.success(), "daemon exited uncleanly: {status:?}");
        }
    }

    fn compile_request(id: u64, ir: &str) -> String {
        // Hand-rolled JSON escaping for the IR payload (quotes never
        // appear in IR text, newlines do).
        let escaped = ir
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        format!("{{\"op\":\"compile\",\"id\":{id},\"ir\":\"{escaped}\"}}")
    }

    #[test]
    fn ping_compile_stats_shutdown_round_trip() {
        let mut daemon = Daemon::spawn(&["--jobs", "1"]);
        daemon.send("{\"op\":\"ping\",\"id\":1}");
        assert_eq!(daemon.recv(), "{\"id\":1,\"status\":\"pong\"}");

        daemon.send(&compile_request(2, KERNEL));
        let response = daemon.recv();
        assert!(response.contains("\"status\":\"ok\""), "{response}");
        assert!(response.contains("\"outcome\":\"optimized\""), "{response}");
        assert!(
            response.contains("select"),
            "expected melded IR: {response}"
        );

        daemon.send("{\"op\":\"stats\",\"id\":3}");
        let stats = daemon.recv();
        assert!(stats.contains("\"status\":\"stats\""), "{stats}");
        assert!(stats.contains("\"misses\":1"), "{stats}");

        daemon.send("{\"op\":\"shutdown\",\"id\":4}");
        let bye = daemon.recv();
        assert!(bye.contains("\"status\":\"bye\""), "{bye}");
        assert!(bye.contains("\"completed\":1"), "{bye}");
        daemon.finish();
    }

    #[test]
    fn warm_hit_response_is_byte_identical_to_cold() {
        let mut daemon = Daemon::spawn(&["--jobs", "1"]);
        daemon.send(&compile_request(7, KERNEL));
        let cold = daemon.recv();
        daemon.send(&compile_request(7, KERNEL));
        let warm = daemon.recv();
        // Same id, same input: apart from the cached marker the bytes
        // must match exactly — JSON keys render sorted, so any drift
        // in the payload would show.
        assert_eq!(cold.replace("\"cached\":false", "\"cached\":true"), warm);
        assert!(warm.contains("\"cached\":true"), "{warm}");
        daemon.finish();
    }

    #[test]
    fn bad_json_gets_typed_error_and_daemon_stays_up() {
        let mut daemon = Daemon::spawn(&["--jobs", "1"]);
        daemon.send("{not json");
        let err = daemon.recv();
        assert!(err.contains("\"kind\":\"protocol\""), "{err}");
        assert!(err.contains("invalid JSON"), "{err}");

        daemon.send("{\"op\":\"fly\",\"id\":1}");
        let err = daemon.recv();
        assert!(err.contains("unknown op"), "{err}");

        // Still alive and serving.
        daemon.send("{\"op\":\"ping\",\"id\":2}");
        assert_eq!(daemon.recv(), "{\"id\":2,\"status\":\"pong\"}");
        daemon.finish();
    }

    #[test]
    fn nesting_bomb_gets_typed_error_and_daemon_stays_up() {
        // A frame of densely nested `[` drives the JSON parser's
        // recursion as deep as the input allows; without the parser's
        // depth cap this would overflow the stack and abort the daemon
        // (a stack overflow is not an unwind — no catch_unwind saves
        // it). With the cap it is just another malformed frame.
        let mut daemon = Daemon::spawn(&["--jobs", "1"]);
        daemon.send(&"[".repeat(200_000));
        let err = daemon.recv();
        assert!(err.contains("\"kind\":\"protocol\""), "{err}");
        assert!(err.contains("nesting"), "{err}");

        // Still alive and serving.
        daemon.send("{\"op\":\"ping\",\"id\":2}");
        assert_eq!(daemon.recv(), "{\"id\":2,\"status\":\"pong\"}");
        daemon.finish();
    }

    #[test]
    fn oversized_frame_is_skipped_and_daemon_stays_up() {
        let mut daemon = Daemon::spawn(&["--jobs", "1", "--max-frame", "64"]);
        let big = format!(
            "{{\"op\":\"ping\",\"id\":1,\"pad\":\"{}\"}}",
            "x".repeat(128)
        );
        daemon.send(&big);
        let err = daemon.recv();
        assert!(err.contains("\"kind\":\"protocol\""), "{err}");
        assert!(err.contains("oversized frame"), "{err}");

        // The oversized body was drained, so the stream is still
        // aligned and the next request parses.
        daemon.send("{\"op\":\"ping\",\"id\":2}");
        assert_eq!(daemon.recv(), "{\"id\":2,\"status\":\"pong\"}");
        daemon.finish();
    }

    #[test]
    fn truncated_frame_gets_typed_error_and_clean_exit() {
        let mut daemon = Daemon::spawn(&["--jobs", "1"]);
        // A frame that promises 100 bytes but delivers 3, then EOF.
        let mut bytes = 100u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"abc");
        daemon.send_raw(&bytes);
        drop(daemon.stdin);
        let mut out = String::new();
        daemon.stdout.read_to_string(&mut out).unwrap();
        assert!(out.contains("truncated frame"), "{out}");
        assert!(out.contains("\"kind\":\"protocol\""), "{out}");
        let status = daemon.child.wait().unwrap();
        assert!(status.success(), "daemon exited uncleanly: {status:?}");
    }

    /// One framed client over a Unix socket.
    #[cfg(unix)]
    struct SocketClient {
        stream: std::os::unix::net::UnixStream,
    }

    #[cfg(unix)]
    impl SocketClient {
        fn connect(path: &std::path::Path) -> SocketClient {
            // The daemon binds the socket after it starts; poll briefly.
            for _ in 0..200 {
                if let Ok(stream) = std::os::unix::net::UnixStream::connect(path) {
                    return SocketClient { stream };
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            panic!("daemon did not bind {}", path.display());
        }

        fn send(&mut self, json: &str) {
            let mut frame = Vec::with_capacity(4 + json.len());
            frame.extend_from_slice(&(json.len() as u32).to_be_bytes());
            frame.extend_from_slice(json.as_bytes());
            self.stream.write_all(&frame).unwrap();
            self.stream.flush().unwrap();
        }

        fn recv(&mut self) -> String {
            let mut prefix = [0u8; 4];
            self.stream.read_exact(&mut prefix).unwrap();
            let len = u32::from_be_bytes(prefix) as usize;
            let mut body = vec![0u8; len];
            self.stream.read_exact(&mut body).unwrap();
            String::from_utf8(body).unwrap()
        }
    }

    #[cfg(unix)]
    #[test]
    fn socket_serves_two_clients_concurrently() {
        let dir = std::env::temp_dir().join(format!("darm-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("daemon.sock");
        let _ = std::fs::remove_file(&path);
        let mut child = bin()
            .arg("serve")
            .args(["--jobs", "1", "--socket"])
            .arg(&path)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();

        // Client A connects first and *stays open*: with the old
        // one-at-a-time accept loop, B's requests below would block
        // until A disconnected.
        let mut a = SocketClient::connect(&path);
        a.send("{\"op\":\"ping\",\"id\":1}");
        assert_eq!(a.recv(), "{\"id\":1,\"status\":\"pong\"}");

        // Client B is served while A's connection is still up.
        let mut b = SocketClient::connect(&path);
        b.send("{\"op\":\"ping\",\"id\":2}");
        assert_eq!(b.recv(), "{\"id\":2,\"status\":\"pong\"}");
        b.send(&compile_request(3, KERNEL));
        let cold = b.recv();
        assert!(cold.contains("\"status\":\"ok\""), "{cold}");
        assert!(cold.contains("\"cached\":false"), "{cold}");

        // Both clients share the one engine: A's repeat of B's request
        // hits the warm cache.
        a.send(&compile_request(4, KERNEL));
        let warm = a.recv();
        assert!(warm.contains("\"cached\":true"), "{warm}");

        // Shutdown from one client takes the daemon down cleanly even
        // though the other connection is still open.
        b.send("{\"op\":\"shutdown\",\"id\":5}");
        let bye = b.recv();
        assert!(bye.contains("\"status\":\"bye\""), "{bye}");
        let status = child.wait().unwrap();
        assert!(status.success(), "daemon exited uncleanly: {status:?}");
        assert!(
            !path.exists(),
            "socket file should be removed on clean exit"
        );
        drop(a);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compile_parse_error_is_typed_and_namespaced_to_the_request() {
        let mut daemon = Daemon::spawn(&["--jobs", "1"]);
        daemon.send(&compile_request(1, "fn @broken( {"));
        let err = daemon.recv();
        assert!(err.contains("\"kind\":\"parse\""), "{err}");
        assert!(err.contains("\"id\":1"), "{err}");
        // The request after the failed one compiles normally.
        daemon.send(&compile_request(2, KERNEL));
        let ok = daemon.recv();
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
        daemon.finish();
    }
}
