//! Fault-injection properties for the `darm serve` engine (requires
//! `--features fault-injection`): with faults armed at the service-layer
//! sites — `serve::admit`, `serve::worker`, `serve::cache_lookup`,
//! `serve::cache_insert` — the daemon
//!
//! * stays **live**: every request is answered with a typed response,
//!   never a hang (all receives run under a timeout);
//! * stays **leak-free**: cache gauges respect their bounds and no
//!   engine lock is ever poisoned;
//! * stays **bit-deterministic**: responses for the same input are
//!   byte-identical whether they were computed before, between, or
//!   after contained faults (modulo the `cached` marker).
//!
//! The fault plan is process-global; tests serialize on [`PLAN_LOCK`].

#![cfg(feature = "fault-injection")]

use std::sync::mpsc;
use std::time::Duration;

use darm::ir::fault::{self, FaultKind, FaultPlan};
use darm::serve::proto::CompileRequest;
use darm::serve::{Engine, Response, ServeConfig};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that mutate the process-global fault plan.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

const SERVE_SITES: [&str; 4] = [
    "serve::admit",
    "serve::worker",
    "serve::cache_lookup",
    "serve::cache_insert",
];

const KINDS: [FaultKind; 3] = [FaultKind::Panic, FaultKind::Error, FaultKind::FuelExhaust];

const KERNEL: &str = r#"
fn @serve_fault(ptr(global) %arg0) -> void {
entry:
  %0 = tid.x
  %1 = and %0, 1
  %2 = icmp eq %1, 0
  br %2, t, e
t:
  %3 = mul %0, 3
  %4 = add %3, 10
  %5 = gep i32 %arg0, %0
  store %4, %5
  jump x
e:
  %6 = mul %0, 5
  %7 = add %6, 77
  %8 = gep i32 %arg0, %0
  store %7, %8
  jump x
x:
  ret
}
"#;

fn request(id: u64, ir: &str) -> CompileRequest {
    CompileRequest {
        id,
        ir: ir.to_string(),
        spec: None,
        timeout_ms: None,
        fuel: None,
    }
}

/// Submit and require a typed answer within the liveness deadline.
fn compile(engine: &Engine, req: CompileRequest) -> Response {
    let (tx, rx) = mpsc::channel();
    engine.submit(
        req,
        Box::new(move |resp| {
            let _ = tx.send(resp);
        }),
    );
    rx.recv_timeout(Duration::from_secs(60))
        .expect("daemon must answer every request (liveness)")
}

/// Response bytes with the cache marker normalized away — warm and cold
/// answers for the same input must agree on everything else.
fn normalized(resp: &Response) -> String {
    String::from_utf8(resp.to_bytes())
        .unwrap()
        .replace("\"cached\":true", "\"cached\":false")
}

/// Every service site × fault kind, exhaustively: the faulted request
/// gets a typed response, the next (clean) request compiles and matches
/// the fault-free reference byte for byte, and nothing is poisoned.
#[test]
fn every_service_site_contains_its_fault_and_the_daemon_recovers() {
    let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // Fault-free reference response for the clean comparison.
    fault::set_plan(None);
    let reference = {
        let engine = Engine::new(ServeConfig::default());
        normalized(&compile(&engine, request(1, KERNEL)))
    };

    for site in SERVE_SITES {
        for kind in KINDS {
            // A fresh engine per combination gives the worker thread
            // fresh per-thread hit counters; the submitting (test)
            // thread's counters are reset explicitly.
            let engine = Engine::new(ServeConfig::default());
            fault::set_plan(Some(FaultPlan {
                site: site.to_string(),
                hit: 1,
                kind,
            }));
            fault::begin_function();
            let faulted = compile(&engine, request(1, KERNEL));
            match (&faulted, kind) {
                // Fuel exhaustion at a service site is a no-op (no
                // budget is installed outside the pipeline), so the
                // request sails through.
                (Response::Ok { .. }, FaultKind::FuelExhaust) => {}
                (
                    Response::Error {
                        kind: ek, message, ..
                    },
                    _,
                ) => {
                    assert_eq!(ek.as_str(), "internal", "{site}: {message}");
                    assert!(
                        message.contains(site),
                        "{site}/{kind:?}: diagnostic should name the site: {message}"
                    );
                }
                other => panic!("{site}/{kind:?}: unexpected response {other:?}"),
            }

            fault::set_plan(None);
            let clean = compile(&engine, request(1, KERNEL));
            assert!(
                matches!(clean, Response::Ok { .. }),
                "{site}/{kind:?}: daemon must recover, got {clean:?}"
            );
            assert_eq!(
                normalized(&clean),
                reference,
                "{site}/{kind:?}: post-fault output must be bit-identical"
            );
            assert_eq!(engine.poisoned_locks(), 0, "{site}/{kind:?}");
            engine.shutdown();
            assert_eq!(engine.poisoned_locks(), 0, "{site}/{kind:?} after drain");
        }
    }
}

/// Deterministic compile faults inside the pipeline become *negative*
/// cache entries: the first request pays for the contained fault (and
/// the degrade retry), the repeat offender is served degraded from the
/// cache instantly — with the same diagnostic — and a clean plan plus
/// changed input compiles normally again.
#[test]
fn poisoned_modules_fail_fast_via_the_negative_cache() {
    let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let engine = Engine::new(ServeConfig::default());
    fault::set_plan(Some(FaultPlan {
        site: "meld::codegen".to_string(),
        hit: 1,
        kind: FaultKind::Panic,
    }));
    let first = compile(&engine, request(1, KERNEL));
    let (first_fns, first_ir) = match &first {
        Response::Ok { functions, ir, .. } => (functions, ir),
        other => panic!("degrade retry must produce ok, got {other:?}"),
    };
    assert!(!first_fns[0].optimized, "{first_fns:?}");
    assert!(!first_fns[0].cached);
    let diag = first_fns[0]
        .diagnostic
        .clone()
        .expect("degraded diagnostic");
    assert!(diag.contains("meld::codegen"), "{diag}");
    // Degraded means baseline: the output IR is the (fixed-up) input.
    assert!(
        first_ir.contains("br %2"),
        "baseline IR expected: {first_ir}"
    );

    // Repeat offender: served degraded from the negative cache without
    // re-tripping the fault (the plan is still armed — a re-compile
    // would fault again, a cache hit does not reach the pipeline).
    let second = compile(&engine, request(1, KERNEL));
    match &second {
        Response::Ok { functions, .. } => {
            assert!(functions[0].cached, "{functions:?}");
            assert!(!functions[0].optimized);
            assert_eq!(functions[0].diagnostic.as_ref(), Some(&diag));
        }
        other => panic!("expected cached degraded response, got {other:?}"),
    }
    assert_eq!(engine.cache_counters().negative_hits, 1);

    fault::set_plan(None);
    // The negative entry is keyed by content: the *same* input stays
    // pinned to its cached degraded result until it changes...
    let third = compile(&engine, request(1, KERNEL));
    match &third {
        Response::Ok { functions, .. } => assert!(!functions[0].optimized),
        other => panic!("{other:?}"),
    }
    // ...and a changed function compiles cleanly.
    let changed = KERNEL.replace(", 77", ", 78");
    let fourth = compile(&engine, request(2, &changed));
    match &fourth {
        Response::Ok { functions, .. } => {
            assert!(functions[0].optimized, "{functions:?}");
            assert!(!functions[0].cached);
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(engine.poisoned_locks(), 0);
}

/// Budget exhaustion is *not* negatively cached: a request that
/// degrades on an impossible fuel budget compiles cleanly on the next
/// attempt with a workable one.
#[test]
fn budget_exhaustion_is_not_negatively_cached() {
    let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::set_plan(None);
    let engine = Engine::new(ServeConfig::default());
    let mut starved = request(1, KERNEL);
    starved.fuel = Some(1);
    let first = compile(&engine, starved);
    match &first {
        Response::Ok { functions, .. } => {
            assert!(!functions[0].optimized, "{functions:?}");
            let diag = functions[0].diagnostic.as_ref().unwrap();
            assert!(diag.contains("fuel"), "{diag}");
        }
        other => panic!("expected degraded response, got {other:?}"),
    }
    let second = compile(&engine, request(2, KERNEL));
    match &second {
        Response::Ok { functions, .. } => {
            assert!(
                functions[0].optimized,
                "starved run must not poison: {functions:?}"
            );
            assert!(!functions[0].cached, "no negative entry may exist");
        }
        other => panic!("{other:?}"),
    }
}

/// The soak property (satellite of the serve tentpole): a long request
/// stream with ~10% injected faults and constant content churn keeps
/// the daemon live, the cache inside its bounds, the answers
/// deterministic, and every lock unpoisoned through shutdown.
#[test]
fn soak_with_ten_percent_faults_stays_live_bounded_and_unpoisoned() {
    let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::set_plan(None);
    const CACHE_ENTRIES: usize = 16;
    const CACHE_BYTES: usize = 64 * 1024;
    let engine = Engine::new(ServeConfig {
        workers: 1,
        cache_entries: CACHE_ENTRIES,
        cache_bytes: CACHE_BYTES,
        ..ServeConfig::default()
    });

    let n = 120;
    let mut answered = 0;
    for i in 0..n {
        // Churn: 24 distinct modules cycling through a 16-entry cache,
        // so hits, misses and evictions all stay exercised.
        let ir = KERNEL.replace(", 77", &format!(", {}", 100 + (i % 24)));
        let faulted = i % 10 == 0;
        if faulted {
            fault::set_plan(Some(FaultPlan {
                site: SERVE_SITES[(i / 10) % SERVE_SITES.len()].to_string(),
                hit: 1,
                kind: if i % 20 == 0 {
                    FaultKind::Panic
                } else {
                    FaultKind::Error
                },
            }));
            fault::begin_function();
        }
        let resp = compile(&engine, request(i as u64, &ir));
        if faulted {
            fault::set_plan(None);
        }
        match resp {
            Response::Ok { .. } | Response::Error { .. } => answered += 1,
            other => panic!("request {i}: unexpected {other:?}"),
        }
        // The RSS proxy: cache gauges never exceed their bounds.
        assert!(engine.cache_entries() <= CACHE_ENTRIES, "at request {i}");
        assert!(engine.cache_bytes() <= CACHE_BYTES, "at request {i}");
        assert!(engine.fast_entries() <= CACHE_ENTRIES, "at request {i}");
        assert_eq!(engine.poisoned_locks(), 0, "at request {i}");
    }
    assert_eq!(answered, n);

    // Determinism through the churn: one more warm/cold pair must agree.
    let probe = KERNEL.replace(", 77", ", 1000");
    let cold = compile(&engine, request(9001, &probe));
    let warm = compile(&engine, request(9001, &probe));
    assert!(matches!(cold, Response::Ok { .. }));
    assert_eq!(normalized(&cold), normalized(&warm));

    let stats = engine.shutdown();
    let rendered = stats.to_string();
    assert!(rendered.contains("\"contained_panics\""), "{rendered}");
    assert_eq!(engine.poisoned_locks(), 0, "poisoned lock at shutdown");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random request streams with random fault placement: liveness,
    /// typed answers, determinism of repeated inputs, bounded cache,
    /// zero poisoned locks — for every stream.
    #[test]
    fn random_fault_streams_never_wedge_the_daemon(
        stream in proptest::collection::vec(
            (0u8..24, proptest::option::of((0usize..4, 0usize..3))),
            4..20,
        ),
    ) {
        let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        fault::set_plan(None);
        let engine = Engine::new(ServeConfig {
            workers: 1,
            cache_entries: 8,
            cache_bytes: 64 * 1024,
            ..ServeConfig::default()
        });
        // Canonical bytes per distinct input, collected as the stream
        // runs; every Ok answer for the same input must agree.
        let mut canon: std::collections::HashMap<u8, String> = std::collections::HashMap::new();
        for (i, &(variant, armed)) in stream.iter().enumerate() {
            let ir = KERNEL.replace(", 77", &format!(", {}", 200 + variant as i32));
            if let Some((site_idx, kind_idx)) = armed {
                fault::set_plan(Some(FaultPlan {
                    site: SERVE_SITES[site_idx].to_string(),
                    hit: 1,
                    kind: KINDS[kind_idx],
                }));
                fault::begin_function();
            }
            let resp = compile(&engine, request(variant as u64, &ir));
            fault::set_plan(None);
            match &resp {
                Response::Ok { .. } => {
                    let bytes = normalized(&resp);
                    let prev = canon.entry(variant).or_insert_with(|| bytes.clone());
                    prop_assert_eq!(
                        prev.as_str(), bytes.as_str(),
                        "request {} (variant {}): nondeterministic answer", i, variant
                    );
                }
                Response::Error { .. } => {}
                other => prop_assert!(false, "request {}: unexpected {:?}", i, other),
            }
            prop_assert!(engine.cache_entries() <= 8);
            prop_assert_eq!(engine.poisoned_locks(), 0);
        }
        engine.shutdown();
        prop_assert_eq!(engine.poisoned_locks(), 0);
    }
}
