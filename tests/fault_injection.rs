//! Deterministic fault-injection properties for the module driver's
//! containment boundary (requires `--features fault-injection`).
//!
//! Each case arms one [`FaultPlan`] — a site × kind × per-function hit
//! count drawn from the real injection points spread across melding,
//! the cleanup transforms and the analysis manager — and melds a module
//! of generated kernels under [`OnError::Degrade`]. The invariants:
//!
//! * the run itself succeeds — no fault escapes the boundary;
//! * every degraded function's IR is bit-identical to its input;
//! * every optimized function's IR is bit-identical to the fault-free
//!   reference run;
//! * no lock is poisoned — a clean run right after a contained panic
//!   behaves as if the fault never happened.
//!
//! The fault plan is process-global, so every test serializes on
//! [`PLAN_LOCK`] and disarms the plan before releasing it.

#![cfg(feature = "fault-injection")]

use darm::ir::fault::{self, FaultKind, FaultPlan};
use darm::ir::Budget;
use darm::pipeline::{ModuleReport, OnError};
use darm::prelude::*;
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that mutate the process-global fault plan.
static PLAN_LOCK: Mutex<()> = Mutex::new(());

/// Every site a plan may arm. Sites a kernel never reaches (a
/// straight-line function has no meld region) simply never fire —
/// the function must then match the fault-free run exactly.
const SITES: [&str; 8] = [
    "meld::plan",
    "meld::score",
    "meld::codegen",
    "transforms::simplify",
    "transforms::dce",
    "transforms::instcombine",
    "transforms::ssa-repair",
    "analysis::compute",
];

const KINDS: [FaultKind; 3] = [FaultKind::Panic, FaultKind::Error, FaultKind::FuelExhaust];

/// One generated kernel: either a meldable divergent diamond (the two
/// sides disagree on their multiply/add constants) or a straight-line
/// body that never enters the melder's planning path.
#[derive(Debug, Clone, Copy)]
struct Shape {
    diamond: bool,
    mul_t: i32,
    add_t: i32,
    mul_f: i32,
    add_f: i32,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (any::<bool>(), 2i32..9, -50i32..50, 2i32..9, -50i32..50).prop_map(
        |(diamond, mul_t, add_t, mul_f, add_f)| Shape {
            diamond,
            mul_t,
            add_t,
            mul_f,
            add_f,
        },
    )
}

fn build_function(name: &str, s: Shape) -> Function {
    let mut f = Function::new(name, vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let p = b.gep(Type::I32, b.param(0), tid);
    if !s.diamond {
        let v = b.mul(tid, Value::I32(s.mul_t));
        let v = b.add(v, Value::I32(s.add_t));
        b.store(v, p);
        b.ret(None);
        return f;
    }
    let parity = b.and(tid, b.const_i32(1));
    let c = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
    let cur = b.current_block();
    let join = b.add_block("x");
    let t_blk = b.add_block("t");
    b.switch_to(t_blk);
    let v = b.mul(tid, Value::I32(s.mul_t));
    let v = b.add(v, Value::I32(s.add_t));
    b.store(v, p);
    b.jump(join);
    let f_blk = b.add_block("e");
    b.switch_to(f_blk);
    let v = b.mul(tid, Value::I32(s.mul_f));
    let v = b.add(v, Value::I32(s.add_f));
    b.store(v, p);
    b.jump(join);
    b.switch_to(cur);
    b.br(c, t_blk, f_blk);
    b.switch_to(join);
    b.ret(None);
    f
}

fn build_module(shapes: &[Shape]) -> Module {
    let mut module = Module::new("fault_prop");
    for (i, &s) in shapes.iter().enumerate() {
        module
            .add_function(build_function(&format!("f{i}"), s))
            .unwrap();
    }
    module
}

/// Melds `module` in place under `OnError::Degrade` with the CLI's
/// default spec. A limited (but effectively infinite) fuel budget is
/// installed when the armed kind needs one to trip —
/// [`FaultKind::FuelExhaust`] is a no-op against an unlimited budget.
fn meld_module(module: &mut Module, jobs: usize, with_budget: bool) -> ModuleReport {
    let registry = darm::melding::registry(&MeldConfig::default());
    let mut pipeline = PipelineOptions::default();
    if with_budget {
        pipeline.budget = Budget::new(None, Some(1 << 40));
    }
    let options = ModuleOptions {
        pipeline,
        jobs,
        on_error: OnError::Degrade,
    };
    let mpm = ModulePassManager::new(&registry, "meld", options).unwrap();
    mpm.run(module)
        .expect("degrade mode must contain the fault")
}

fn printed(module: &Module) -> Vec<String> {
    module.functions().iter().map(|f| f.to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline containment property, over random modules × plans ×
    /// worker counts.
    #[test]
    fn degraded_functions_keep_baseline_ir_and_the_rest_match_the_clean_run(
        shapes in proptest::collection::vec(shape_strategy(), 2..5),
        site_idx in 0usize..SITES.len(),
        hit in 1u64..4,
        kind_idx in 0usize..KINDS.len(),
        jobs in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let kind = KINDS[kind_idx];
        let with_budget = kind == FaultKind::FuelExhaust;
        let module = build_module(&shapes);
        let baseline = printed(&module);

        fault::set_plan(None);
        let mut reference = module.clone();
        let clean_report = meld_module(&mut reference, 1, with_budget);
        prop_assert_eq!(clean_report.degraded_count(), 0);
        let clean = printed(&reference);

        fault::set_plan(Some(FaultPlan {
            site: SITES[site_idx].to_string(),
            hit,
            kind,
        }));
        let mut faulted = module.clone();
        let report = meld_module(&mut faulted, jobs, with_budget);
        fault::set_plan(None);

        prop_assert_eq!(report.functions.len(), module.len());
        for (i, func) in faulted.functions().iter().enumerate() {
            let ir = func.to_string();
            if report.functions[i].outcome.is_degraded() {
                prop_assert_eq!(
                    &ir, &baseline[i],
                    "degraded @{} must keep its pre-pipeline IR", func.name()
                );
            } else {
                prop_assert_eq!(
                    &ir, &clean[i],
                    "optimized @{} must match the fault-free run", func.name()
                );
            }
        }
    }
}

/// Which functions fault is a per-function property (hit counters reset
/// at each function), so the degraded set and every function's IR are
/// identical between a serial and a four-worker run.
#[test]
fn unwind_faults_degrade_deterministically_across_worker_counts() {
    let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let shapes: Vec<Shape> = (0..6)
        .map(|i| Shape {
            diamond: i % 2 == 0,
            mul_t: 3 + i,
            add_t: 10 + i,
            mul_f: 5 + i,
            add_f: 77 - i,
        })
        .collect();
    let module = build_module(&shapes);
    for kind in [FaultKind::Panic, FaultKind::Error] {
        fault::set_plan(Some(FaultPlan {
            site: "meld::codegen".to_string(),
            hit: 1,
            kind,
        }));
        let mut serial = module.clone();
        let serial_report = meld_module(&mut serial, 1, false);
        let mut parallel = module.clone();
        let parallel_report = meld_module(&mut parallel, 4, false);
        fault::set_plan(None);

        // Only the diamonds reach codegen; the straight-line functions
        // must come out optimized.
        let degraded = |r: &ModuleReport| -> Vec<String> {
            r.degraded().map(|(name, _)| name.to_string()).collect()
        };
        assert_eq!(degraded(&serial_report), vec!["f0", "f2", "f4"]);
        assert_eq!(degraded(&serial_report), degraded(&parallel_report));
        assert_eq!(printed(&serial), printed(&parallel));
    }
}

/// A contained panic poisons nothing: an immediately following clean run
/// through a fresh manager optimizes every function, bit-identical to a
/// run that never saw a fault.
#[test]
fn no_state_leaks_across_a_contained_panic() {
    let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let shapes: Vec<Shape> = (0..4)
        .map(|i| Shape {
            diamond: true,
            mul_t: 3 + i,
            add_t: 10,
            mul_f: 5,
            add_f: 77 + i,
        })
        .collect();
    let module = build_module(&shapes);

    fault::set_plan(None);
    let mut reference = module.clone();
    meld_module(&mut reference, 4, false);

    fault::set_plan(Some(FaultPlan {
        site: "transforms::dce".to_string(),
        hit: 1,
        kind: FaultKind::Panic,
    }));
    let mut faulted = module.clone();
    let report = meld_module(&mut faulted, 4, false);
    assert_eq!(report.degraded_count(), 4);
    fault::set_plan(None);

    let mut after = module.clone();
    let clean_report = meld_module(&mut after, 4, false);
    assert_eq!(clean_report.degraded_count(), 0);
    assert_eq!(printed(&after), printed(&reference));
}

/// `OnError::Fail` surfaces an injected panic as a typed
/// [`PipelineError::Fault`] naming the earliest faulting function.
#[test]
fn fail_mode_reports_the_injected_fault_as_a_diagnostic() {
    use darm::pipeline::PipelineError;

    let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let shapes = [
        Shape {
            diamond: false,
            mul_t: 3,
            add_t: 1,
            mul_f: 0,
            add_f: 0,
        },
        Shape {
            diamond: true,
            mul_t: 3,
            add_t: 10,
            mul_f: 5,
            add_f: 77,
        },
    ];
    let mut module = build_module(&shapes);
    fault::set_plan(Some(FaultPlan {
        site: "meld::plan".to_string(),
        hit: 1,
        kind: FaultKind::Panic,
    }));
    let registry = darm::melding::registry(&MeldConfig::default());
    let options = ModuleOptions {
        pipeline: PipelineOptions::default(),
        jobs: 1,
        on_error: OnError::Fail,
    };
    let mpm = ModulePassManager::new(&registry, "meld", options).unwrap();
    let err = mpm.run(&mut module).unwrap_err();
    fault::set_plan(None);
    match err {
        PipelineError::Fault(diag) => {
            assert_eq!(diag.function, "f1");
            assert_eq!(diag.site.as_deref(), Some("meld::plan"));
        }
        other => panic!("expected a fault diagnostic, got: {other}"),
    }
}

/// Pinned regression for the serve-era containment contract: under an
/// injected codegen panic with exactly two workers, every degraded
/// function's output is bit-identical to its baseline (input) IR, the
/// optimized remainder matches the fault-free reference, and a DCE-site
/// panic (which every function reaches) degrades the whole module back
/// to its input, byte for byte.
#[test]
fn pinned_jobs2_degrade_output_is_bit_identical_to_baseline() {
    let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let shapes: Vec<Shape> = (0..5)
        .map(|i| Shape {
            diamond: i != 2, // one straight-line function in the middle
            mul_t: 3 + i,
            add_t: 10 + i,
            mul_f: 5 + i,
            add_f: 77 - i,
        })
        .collect();
    let module = build_module(&shapes);
    let baseline = printed(&module);

    fault::set_plan(None);
    let mut reference = module.clone();
    meld_module(&mut reference, 2, false);
    let clean = printed(&reference);

    // Codegen panics: only the diamonds reach it and degrade.
    fault::set_plan(Some(FaultPlan {
        site: "meld::codegen".to_string(),
        hit: 1,
        kind: FaultKind::Panic,
    }));
    let mut faulted = module.clone();
    let report = meld_module(&mut faulted, 2, false);
    assert_eq!(report.degraded_count(), 4);
    for (i, func) in faulted.functions().iter().enumerate() {
        let ir = func.to_string();
        if report.functions[i].outcome.is_degraded() {
            assert_eq!(ir, baseline[i], "@{} must keep its input IR", func.name());
        } else {
            assert_eq!(ir, clean[i], "@{} must match the clean run", func.name());
        }
    }

    // DCE panics: every function whose pipeline reaches cleanup (the
    // four diamonds — the straight-line body melds nothing and skips
    // it) degrades to its input, byte for byte.
    fault::set_plan(Some(FaultPlan {
        site: "transforms::dce".to_string(),
        hit: 1,
        kind: FaultKind::Panic,
    }));
    let mut dce_faulted = module.clone();
    let report = meld_module(&mut dce_faulted, 2, false);
    fault::set_plan(None);
    assert_eq!(report.degraded_count(), 4);
    for (i, func) in dce_faulted.functions().iter().enumerate() {
        let ir = func.to_string();
        if report.functions[i].outcome.is_degraded() {
            assert_eq!(ir, baseline[i], "@{} must keep its input IR", func.name());
        } else {
            assert_eq!(ir, clean[i], "@{} must match the clean run", func.name());
        }
    }
}
