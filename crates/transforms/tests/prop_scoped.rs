//! Property-based equivalence of the dirty-scoped cleanup transforms
//! against their whole-function counterparts: starting from a function
//! whose untouched remainder holds no redexes (the invariant a fixpoint
//! driver establishes with one whole-function run), a random mutation
//! window followed by a scoped run must produce exactly the IR and counts
//! a whole-function run produces on a twin.

use darm_analysis::{AnalysisManager, Cfg, DomTree};
use darm_ir::builder::FunctionBuilder;
use darm_ir::{Dim, Function, IcmpPred, InstData, Opcode, Type, Value};
use darm_transforms::{
    repair_ssa, repair_ssa_scoped, run_dce, run_dce_scoped, run_instcombine,
    run_instcombine_scoped, simplify_cfg, simplify_cfg_scoped,
};
use proptest::prelude::*;

/// Random structured CFG (same scheme as the analysis proptests): blocks in
/// arena order ending in jumps or conditional branches, block-local SSA.
fn build_cfg(script: &[u8]) -> Function {
    let n = (script.len() / 3).clamp(2, 10);
    let mut f = Function::new("prop", vec![Type::I32], Type::Void);
    let mut blocks = vec![f.entry()];
    for i in 1..n {
        blocks.push(f.add_block(&format!("b{i}")));
    }
    let mut b = FunctionBuilder::new(&mut f, blocks[0]);
    for i in 0..n {
        b.switch_to(blocks[i]);
        let byte = script[3 * i % script.len()];
        let t1 = blocks[script[(3 * i + 1) % script.len()] as usize % n];
        let t2 = blocks[script[(3 * i + 2) % script.len()] as usize % n];
        if i == n - 1 {
            b.ret(None);
        } else if byte.is_multiple_of(3) {
            b.jump(t1);
        } else {
            let tid = b.thread_idx(Dim::X);
            let cond = b.icmp(IcmpPred::Slt, tid, Value::Param(0));
            b.br(cond, t1, t2);
        }
    }
    f
}

/// Applies one cleanup-relevant mutation: dead chains, foldable arithmetic,
/// constant branch conditions, edge splits — the kinds of debris melding
/// leaves behind.
fn apply_mutation(f: &mut Function, op: u8, x: u8, y: u8) {
    let blocks = f.block_ids();
    let n = blocks.len();
    let u = blocks[x as usize % n];
    match op % 5 {
        // Dead chain before the terminator.
        0 => {
            let Some(term) = f.terminator(u) else { return };
            let a = f.insert_inst_before(
                term,
                InstData::new(Opcode::Add, Type::I32, vec![Value::Param(0), Value::I32(1)]),
            );
            f.insert_inst_before(
                term,
                InstData::new(Opcode::Mul, Type::I32, vec![Value::Inst(a), Value::Inst(a)]),
            );
        }
        // Foldable arithmetic (x + 0, then * 1).
        1 => {
            let Some(term) = f.terminator(u) else { return };
            let a = f.insert_inst_before(
                term,
                InstData::new(Opcode::Add, Type::I32, vec![Value::Param(0), Value::I32(0)]),
            );
            f.insert_inst_before(
                term,
                InstData::new(Opcode::Mul, Type::I32, vec![Value::Inst(a), Value::I32(1)]),
            );
        }
        // Constant-condition branch (a simplify redex + unreachable arm).
        2 => {
            let Some(term) = f.terminator(u) else { return };
            if f.inst(term).opcode != Opcode::Jump {
                return;
            }
            let t = f.inst(term).succs[0];
            let blocks = f.block_ids();
            let v = blocks[y as usize % blocks.len()];
            f.remove_inst(term);
            f.add_inst(
                u,
                InstData::terminator(Opcode::Br, vec![Value::I1(x.is_multiple_of(2))], vec![t, v]),
            );
        }
        // Split the first out-edge (empty forwarding block: elision redex).
        3 => {
            let succs = f.succs(u);
            let Some(&t) = succs.first() else { return };
            let mid = f.add_block("split");
            f.add_inst(mid, InstData::terminator(Opcode::Jump, vec![], vec![t]));
            f.replace_succ(u, t, mid);
            f.phi_retarget_pred(t, u, mid);
        }
        // Select with equal arms (instcombine redex feeding dce).
        _ => {
            let Some(term) = f.terminator(u) else { return };
            let tid = f.insert_inst_before(
                term,
                InstData::new(Opcode::ThreadIdx(Dim::X), Type::I32, vec![]),
            );
            let c = f.insert_inst_before(
                term,
                InstData::new(
                    Opcode::Icmp(IcmpPred::Slt),
                    Type::I1,
                    vec![Value::Inst(tid), Value::Param(0)],
                ),
            );
            f.insert_inst_before(
                term,
                InstData::new(
                    Opcode::Select,
                    Type::I32,
                    vec![Value::Inst(c), Value::Inst(tid), Value::Inst(tid)],
                ),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Scoped DCE and instcombine over a mutation window equal the
    /// whole-function runs on a twin, in printed IR and in counts.
    #[test]
    fn scoped_inst_cleanup_equals_whole(
        script in proptest::collection::vec(any::<u8>(), 6..30),
        muts in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
    ) {
        let mut f = build_cfg(&script);
        // Establish the invariant: no redexes outside future windows.
        run_instcombine(&mut f);
        run_dce(&mut f);
        let cursor = f.journal_head();
        for &(op, x, y) in &muts {
            // Instruction-level mutations only (ops 0, 1, 4).
            apply_mutation(&mut f, [0u8, 1, 4][op as usize % 3], x, y);
        }
        let mut twin = f.clone();
        let delta = f.dirty_since(cursor);
        let ic_scoped = run_instcombine_scoped(&mut f, Some(&delta));
        let ic_whole = run_instcombine(&mut twin);
        prop_assert_eq!(ic_scoped, ic_whole, "instcombine counts differ");
        prop_assert_eq!(f.to_string(), twin.to_string(), "instcombine IR differs");
        let delta = f.dirty_since(cursor);
        let dce_scoped = run_dce_scoped(&mut f, Some(&delta));
        let dce_whole = run_dce(&mut twin);
        prop_assert_eq!(dce_scoped, dce_whole, "dce counts differ");
        prop_assert_eq!(f.to_string(), twin.to_string(), "dce IR differs");
    }

    /// Scoped CFG simplification over a mutation window equals the
    /// whole-function run on a twin — including identical arena id
    /// allocation (the printed IR uses raw instruction indices).
    #[test]
    fn scoped_simplify_equals_whole(
        script in proptest::collection::vec(any::<u8>(), 6..30),
        muts in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
    ) {
        let mut f = build_cfg(&script);
        simplify_cfg(&mut f);
        let cursor = f.journal_head();
        for &(op, x, y) in &muts {
            apply_mutation(&mut f, op, x, y);
        }
        let mut twin = f.clone();
        let delta = f.dirty_since(cursor);
        let s_scoped = simplify_cfg_scoped(&mut f, &mut AnalysisManager::new(), Some(&delta));
        let s_whole = simplify_cfg(&mut twin);
        prop_assert_eq!(s_scoped, s_whole, "simplify stats differ");
        prop_assert_eq!(f.to_string(), twin.to_string(), "simplify IR differs");
    }

    /// Scoped SSA repair (window + dominance diff from a baseline at which
    /// the function was fully repaired) equals the whole-function repair on
    /// a twin after dominance-breaking surgery.
    #[test]
    fn scoped_repair_equals_whole(
        script in proptest::collection::vec(any::<u8>(), 6..30),
        picks in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..4),
    ) {
        let mut f = build_cfg(&script);
        prop_assert!(repair_ssa(&mut f) == 0); // generator builds valid SSA
        let cfg0 = Cfg::new(&f);
        let baseline = DomTree::new(&f, &cfg0);
        let cursor = f.journal_head();
        // Dominance-breaking surgery: redirect edges (changing dominance
        // under existing uses) and add cross-block uses of existing defs.
        for &(x, y) in &picks {
            let blocks = f.block_ids();
            let u = blocks[x as usize % blocks.len()];
            let v = blocks[y as usize % blocks.len()];
            // A use in v of some def in u (may not be dominated).
            let def = f
                .insts_of(u)
                .iter()
                .copied()
                .find(|&i| f.inst(i).ty == Type::I32);
            if let (Some(def), Some(term)) = (def, f.terminator(v)) {
                f.insert_inst_before(
                    term,
                    InstData::new(
                        Opcode::Add,
                        Type::I32,
                        vec![Value::Inst(def), Value::I32(1)],
                    ),
                );
            }
            if x.is_multiple_of(2) {
                let succs = f.succs(u);
                if let Some(&t) = succs.first() {
                    if t != v {
                        f.replace_succ(u, t, v);
                    }
                }
            }
        }
        let mut twin = f.clone();
        let delta = f.dirty_since(cursor);
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let dom_changed = DomTree::changed_from(&baseline, &dt, &cfg);
        let n_scoped = repair_ssa_scoped(
            &mut f,
            &mut AnalysisManager::new(),
            Some((&delta, &dom_changed)),
        );
        let n_whole = repair_ssa(&mut twin);
        prop_assert_eq!(n_scoped, n_whole, "repair counts differ");
        prop_assert_eq!(f.to_string(), twin.to_string(), "repair IR differs");
    }
}
