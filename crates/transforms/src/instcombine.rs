//! Peephole simplification (a small `instcombine`).
//!
//! Melding introduces patterns that beg for local cleanup — `select` with a
//! constant condition (from region replication's concretized branches),
//! `select c, x, x` (operands that turned out equal after resolution), and
//! algebraic identities. The driver runs this as part of Algorithm 2's
//! `RunPostOptimizations`.
//!
//! The engine is a worklist: whether an instruction reduces depends only on
//! its own opcode and operands, and operands change only through RAUW — so
//! after each rewrite the `darm-ir` journal names exactly the users whose
//! operands moved, and only those re-enter the queue. The rewrite system is
//! confluent (rewrites only remove instructions and substitute values), so
//! the fixpoint reached equals the seed implementation's repeated
//! whole-function sweeps. [`run_instcombine_scoped`] seeds the queue from a
//! mutation window's dirty region instead of every instruction.

use darm_ir::{DirtyDelta, Function, InstId, Opcode, Value};

/// Applies local rewrites to a fixpoint. Returns the number of
/// simplifications performed.
pub fn run_instcombine(func: &mut Function) -> usize {
    run_instcombine_scoped(func, None)
}

/// [`run_instcombine`] with the initial worklist restricted to `scope`'s
/// dirty region (`None`, or a saturated delta, means every instruction).
/// On a function whose untouched remainder is already at the rewrite
/// fixpoint, the result is identical to the whole-function run.
pub fn run_instcombine_scoped(func: &mut Function, scope: Option<&DirtyDelta>) -> usize {
    darm_ir::fault::point("transforms::instcombine");
    if scope.is_some_and(|d| d.is_clean()) {
        return 0; // nothing mutated since the last run: no new redexes
    }
    let mut work: Vec<InstId> = Vec::new();
    match scope {
        Some(delta) if !delta.is_saturated() => {
            let mut seen = vec![false; func.inst_capacity()];
            for b in delta.blocks.iter() {
                if !func.is_block_alive(b) {
                    continue;
                }
                for &id in func.insts_of(b) {
                    if !seen[id.index()] {
                        seen[id.index()] = true;
                        work.push(id);
                    }
                }
            }
            for id in delta.insts.iter() {
                if func.is_inst_alive(id) && !seen[id.index()] {
                    seen[id.index()] = true;
                    work.push(id);
                }
            }
        }
        _ => {
            // Sequential arena sweep: a live instruction is exactly one
            // that sits in a live block's list, and the rewrite system is
            // confluent, so seeding order only affects intermediate steps.
            let cap = func.inst_capacity();
            work.extend(
                (0..cap)
                    .map(InstId::new)
                    .filter(|&id| func.is_inst_alive(id)),
            );
        }
    }
    let mut total = 0;
    while let Some(id) = work.pop() {
        if !func.is_inst_alive(id) {
            continue;
        }
        let Some(v) = simplify_inst(func, id) else {
            continue;
        };
        // The journal window of the substitution names every rewritten
        // user — exactly the instructions whose foldability may have
        // changed.
        let cursor = func.journal_head();
        func.rauw(Value::Inst(id), v);
        func.remove_inst(id);
        total += 1;
        func.insts_touched_since(cursor, |t| {
            if t != id {
                work.push(t);
            }
        });
    }
    total
}

/// Returns the simplified replacement value, if the instruction reduces.
pub(crate) fn simplify_inst(func: &Function, id: InstId) -> Option<Value> {
    // Full constant folding first; identities afterwards.
    if let Some(v) = fold_constants(func, id) {
        return Some(v);
    }
    let inst = func.inst(id);
    let ops = &inst.operands;
    use Opcode::*;
    match inst.opcode {
        Select => {
            match ops[0] {
                Value::I1(true) => return Some(ops[1]),
                Value::I1(false) => return Some(ops[2]),
                _ => {}
            }
            if ops[1] == ops[2] {
                return Some(ops[1]);
            }
            None
        }
        Add | Or | Xor => {
            // x + 0, x | 0, x ^ 0 (and the mirrored forms)
            let zero = zero_of(func, ops[0])?;
            if ops[1] == zero {
                return Some(ops[0]);
            }
            if ops[0] == zero {
                return Some(ops[1]);
            }
            None
        }
        Sub => {
            let zero = zero_of(func, ops[0])?;
            if ops[1] == zero {
                return Some(ops[0]);
            }
            if ops[0] == ops[1] {
                return Some(zero);
            }
            None
        }
        Mul => {
            // x * 1, x * 0
            match (ops[0], ops[1]) {
                (v, Value::I32(1)) | (Value::I32(1), v) => Some(v),
                (_, Value::I32(0)) | (Value::I32(0), _) => Some(Value::I32(0)),
                _ => None,
            }
        }
        And => {
            if ops[0] == ops[1] {
                return Some(ops[0]);
            }
            match (ops[0], ops[1]) {
                (_, Value::I32(0)) | (Value::I32(0), _) => Some(Value::I32(0)),
                (v, Value::I1(true)) | (Value::I1(true), v) => Some(v),
                (_, Value::I1(false)) | (Value::I1(false), _) => Some(Value::I1(false)),
                _ => None,
            }
        }
        Shl | LShr | AShr => {
            if matches!(ops[1], Value::I32(0) | Value::I64(0)) {
                return Some(ops[0]);
            }
            None
        }
        _ => None,
    }
}

fn zero_of(func: &Function, v: Value) -> Option<Value> {
    match func.value_ty(v) {
        darm_ir::Type::I32 => Some(Value::I32(0)),
        darm_ir::Type::I64 => Some(Value::I64(0)),
        darm_ir::Type::I1 => Some(Value::I1(false)),
        _ => None,
    }
}

/// Folds integer binops/compares whose operands are both constants.
fn fold_constants(func: &Function, id: InstId) -> Option<Value> {
    let inst = func.inst(id);
    if inst.operands.len() != 2 {
        return None;
    }
    let (a, b) = match (inst.operands[0], inst.operands[1]) {
        (Value::I32(a), Value::I32(b)) => (a as i64, b as i64),
        (Value::I64(a), Value::I64(b)) => (a, b),
        _ => return None,
    };
    use Opcode::*;
    let int = |x: i64| -> Option<Value> {
        Some(match func.inst(id).ty {
            darm_ir::Type::I32 => Value::I32(x as i32),
            darm_ir::Type::I64 => Value::I64(x),
            _ => return None,
        })
    };
    match inst.opcode {
        Add => int(a.wrapping_add(b)),
        Sub => int(a.wrapping_sub(b)),
        Mul => int(a.wrapping_mul(b)),
        And => int(a & b),
        Or => int(a | b),
        Xor => int(a ^ b),
        SDiv if b != 0 => int(a.wrapping_div(b)),
        SRem if b != 0 => int(a.wrapping_rem(b)),
        Shl => int(a.wrapping_shl(b as u32 & 63)),
        AShr => int(a.wrapping_shr(b as u32 & 63)),
        Icmp(pred) => {
            use darm_ir::IcmpPred::*;
            let (ua, ub) = (a as u64, b as u64);
            Some(Value::I1(match pred {
                Eq => a == b,
                Ne => a != b,
                Slt => a < b,
                Sle => a <= b,
                Sgt => a > b,
                Sge => a >= b,
                Ult => ua < ub,
                Ule => ua <= ub,
                Ugt => ua > ub,
                Uge => ua >= ub,
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, IcmpPred, Type};

    fn simplified(build: impl FnOnce(&mut FunctionBuilder<'_>) -> Value) -> Function {
        let mut f = Function::new("ic", vec![], Type::I32);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let v = build(&mut b);
        b.ret(Some(v));
        run_instcombine(&mut f);
        crate::run_dce(&mut f);
        f
    }

    fn returned(f: &Function) -> Value {
        let t = f.terminator(f.entry()).unwrap();
        f.inst(t).operands[0]
    }

    #[test]
    fn folds_constant_selects() {
        let f = simplified(|b| {
            let tid = b.thread_idx(Dim::X);
            b.select(Value::I1(true), tid, Value::I32(9))
        });
        verify_ssa(&f).unwrap();
        assert_eq!(f.insts_of(f.entry()).len(), 2); // tid + ret
    }

    #[test]
    fn folds_equal_arm_select() {
        let f = simplified(|b| {
            let tid = b.thread_idx(Dim::X);
            let c = b.icmp(IcmpPred::Slt, tid, Value::I32(5));
            b.select(c, tid, tid)
        });
        assert_eq!(returned(&f), {
            let first = f.insts_of(f.entry())[0];
            Value::Inst(first)
        });
    }

    #[test]
    fn algebraic_identities() {
        let f = simplified(|b| {
            let tid = b.thread_idx(Dim::X);
            let a = b.add(tid, Value::I32(0));
            let m = b.mul(a, Value::I32(1));
            let s = b.sub(m, Value::I32(0));
            b.xor(s, Value::I32(0))
        });
        // everything collapses to tid
        assert_eq!(f.insts_of(f.entry()).len(), 2);
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn constant_folding_chains() {
        let f = simplified(|b| {
            let x = b.add(Value::I32(2), Value::I32(3));
            let y = b.mul(x, Value::I32(4));
            b.sub(y, Value::I32(20))
        });
        assert_eq!(returned(&f), Value::I32(0));
    }

    #[test]
    fn folds_constant_compares() {
        let f = simplified(|b| {
            let c = b.icmp(IcmpPred::Slt, Value::I32(1), Value::I32(2));
            b.select(c, Value::I32(10), Value::I32(20))
        });
        assert_eq!(returned(&f), Value::I32(10));
    }

    #[test]
    fn mul_by_zero() {
        let f = simplified(|b| {
            let tid = b.thread_idx(Dim::X);
            b.mul(tid, Value::I32(0))
        });
        assert_eq!(returned(&f), Value::I32(0));
    }

    #[test]
    fn x_minus_x_is_zero() {
        let f = simplified(|b| {
            let tid = b.thread_idx(Dim::X);
            b.sub(tid, tid)
        });
        assert_eq!(returned(&f), Value::I32(0));
    }
}
