//! CFG simplification, the analogue of LLVM's `simplifycfg`.
//!
//! [`simplify_cfg_scoped`] restricts every sub-transform's scan to a
//! mutation window's dirty blocks plus their one-hop CFG neighborhood
//! (every rewrite's enabling condition reads at most a block and its
//! direct neighbors, and any edge change dirties both endpoints), skipping
//! the whole-function rescan the seed implementation performed per meld
//! iteration. Iteration order over the filtered blocks is unchanged, so on
//! a function whose untouched remainder holds no simplification redexes —
//! the invariant a fixpoint driver maintains by running whole-function
//! once up front — the rewrite *sequence*, and therefore every allocated
//! block/instruction id and the printed IR, is identical to the
//! whole-function run.

use darm_analysis::{AnalysisManager, Cfg};
use darm_ir::{BlockId, DirtyDelta, Function, InstData, JournalCursor, Opcode, Value};

/// Statistics of one [`simplify_cfg`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Constant conditional branches rewritten to jumps.
    pub folded_const_branches: usize,
    /// `br c, X, X` rewritten to `jump X`.
    pub folded_same_target_branches: usize,
    /// Blocks merged into their unique predecessor.
    pub merged_blocks: usize,
    /// Empty forwarding blocks removed.
    pub elided_empty_blocks: usize,
    /// Unreachable blocks removed.
    pub removed_unreachable: usize,
    /// Trivial (single-value) φ-nodes replaced.
    pub removed_trivial_phis: usize,
    /// Duplicate φ-nodes deduplicated.
    pub removed_duplicate_phis: usize,
}

impl SimplifyStats {
    /// Total number of simplifications applied.
    pub fn total(&self) -> usize {
        self.folded_const_branches
            + self.folded_same_target_branches
            + self.merged_blocks
            + self.elided_empty_blocks
            + self.removed_unreachable
            + self.removed_trivial_phis
            + self.removed_duplicate_phis
    }
}

/// Simplifies the CFG to a fixpoint and returns what was done.
///
/// Mirrors the subset of LLVM `simplifycfg` that Algorithm 1 relies on
/// between melding iterations. The function is left structurally valid;
/// callers that care about SSA dominance should run the verifier in tests.
pub fn simplify_cfg(func: &mut Function) -> SimplifyStats {
    simplify_cfg_with(func, &mut AnalysisManager::new())
}

/// [`simplify_cfg`] against a shared [`AnalysisManager`]: CFG snapshots are
/// pulled from the cache instead of recomputed per sub-transform, and every
/// mutation invalidates exactly the analyses it breaks (block/edge edits
/// drop everything; φ-only rewrites keep the shape analyses). The rewrite
/// sequence — and therefore the resulting IR — is identical to the uncached
/// version.
pub fn simplify_cfg_with(func: &mut Function, am: &mut AnalysisManager) -> SimplifyStats {
    simplify_cfg_scoped(func, am, None)
}

/// The live rewrite window of a scoped run: the accumulated dirty region
/// (initial window plus everything this run has mutated so far) and the
/// candidate blocks derived from it. Whole-function runs carry no window
/// and allow everything.
///
/// Every sub-transform [`refresh`](ScopeState::refresh)es the state at the
/// top of each of its sweeps, so a rewrite performed by an earlier
/// sub-transform (or an earlier sweep) immediately extends the candidate
/// set — this is what keeps the scoped rewrite *sequence*, not just the
/// fixpoint, identical to the whole-function run.
struct ScopeState {
    /// False after saturation: every query answers "whole-function".
    alive: bool,
    /// While set, every block is allowed regardless of the window — the
    /// *warmup round*. A run that starts without a caller window sweeps
    /// its first round whole-function; every redex a later round could
    /// see either lies in the warmup round's own mutation closure (the
    /// window accumulates it) or would already have been consumed when
    /// its sub-transform swept the whole function. Rounds after warmup
    /// therefore scope exactly, with no assumptions about the input.
    warmup: bool,
    /// Journal position up to which the window has been drained.
    cursor: JournalCursor,
    /// Whether the accumulated window touched the block graph — gates
    /// unreachable-code removal, whose enabling condition is global.
    shape_seen: bool,
    /// Dirty blocks drained from the journal but not yet folded into the
    /// candidate set.
    pending: Vec<BlockId>,
    /// Dirty blocks plus one-hop neighborhood. Grows monotonically: a
    /// neighborhood is expanded against the CFG at marking time, and any
    /// later edge change re-marks both endpoints itself, so the union
    /// over time covers the current neighborhood of every dirty block.
    candidates: Vec<bool>,
}

impl ScopeState {
    /// Whole-function first round, exact self-scoping afterwards.
    fn warmup(func: &Function) -> ScopeState {
        ScopeState {
            alive: true,
            warmup: true,
            cursor: func.journal_head(),
            shape_seen: false,
            pending: Vec::new(),
            candidates: Vec::new(),
        }
    }

    fn scoped(func: &Function, delta: &DirtyDelta) -> ScopeState {
        ScopeState {
            alive: true,
            warmup: false,
            cursor: func.journal_head(),
            shape_seen: delta.shape_changed(),
            pending: delta.blocks.iter().collect(),
            candidates: Vec::new(),
        }
    }

    /// Ends the warmup round (no-op afterwards).
    fn end_warmup(&mut self) {
        self.warmup = false;
    }

    fn allows(&self, b: BlockId) -> bool {
        if self.warmup || !self.alive {
            return true;
        }
        self.candidates.get(b.index()).copied().unwrap_or(true)
    }

    fn shape_changed(&self) -> bool {
        self.warmup || !self.alive || self.shape_seen
    }

    /// Drains the journal into the window and folds newly dirty blocks
    /// (plus their one-hop neighborhood under the current CFG) into the
    /// candidate set. Degrades to whole-function on saturation. O(new
    /// events), not O(window).
    fn refresh(&mut self, func: &Function, am: &mut AnalysisManager) {
        if !self.alive {
            return;
        }
        let fresh = func.dirty_since(self.cursor);
        self.cursor = func.journal_head();
        if fresh.is_saturated() {
            self.alive = false;
            return;
        }
        self.shape_seen |= fresh.shape_changed();
        self.pending.extend(fresh.blocks.iter());
        if self.warmup || self.pending.is_empty() {
            return; // candidates unused until the warmup round ends
        }
        let cfg = am.get::<Cfg>(func);
        if self.candidates.len() < func.block_capacity() {
            self.candidates.resize(func.block_capacity(), false);
        }
        for b in std::mem::take(&mut self.pending) {
            if b.index() >= self.candidates.len() {
                continue;
            }
            self.candidates[b.index()] = true;
            if !func.is_block_alive(b) {
                continue;
            }
            for &s in func.succs(b).iter() {
                self.candidates[s.index()] = true;
            }
            if cfg.is_reachable(b) {
                for &p in cfg.preds(b) {
                    self.candidates[p.index()] = true;
                }
            }
        }
    }
}

/// [`simplify_cfg_with`] restricted to a mutation window (see the module
/// docs for the equivalence argument). `None` — and any saturated window —
/// falls back to the whole-function scan. Mutations performed by the run
/// itself extend the window as it goes.
pub fn simplify_cfg_scoped(
    func: &mut Function,
    am: &mut AnalysisManager,
    scope: Option<&DirtyDelta>,
) -> SimplifyStats {
    let mut stats = SimplifyStats::default();
    if scope.is_some_and(|d| d.is_clean()) {
        return stats; // nothing mutated since the last run: no new redexes
    }
    let mut scope = match scope {
        Some(delta) if !delta.is_saturated() => ScopeState::scoped(func, delta),
        _ => ScopeState::warmup(func),
    };
    loop {
        darm_ir::budget::poll("transforms::simplify");
        darm_ir::fault::point("transforms::simplify");
        let mut changed = false;
        scope.refresh(func, am);
        if scope.shape_changed() {
            changed |= remove_unreachable(func, am, &mut stats);
        }
        changed |= fold_branches(func, am, &mut stats, &mut scope);
        changed |= remove_trivial_phis(func, am, &mut stats, &mut scope);
        changed |= dedup_phis(func, am, &mut stats, &mut scope);
        changed |= merge_straightline(func, am, &mut stats, &mut scope);
        changed |= elide_empty_blocks(func, am, &mut stats, &mut scope);
        scope.end_warmup();
        if !changed {
            break;
        }
    }
    stats
}

fn remove_unreachable(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
) -> bool {
    let cfg = am.get::<Cfg>(func);
    let mut changed = false;
    let dead: Vec<BlockId> = func
        .block_ids()
        .into_iter()
        .filter(|&b| !cfg.is_reachable(b))
        .collect();
    if dead.is_empty() {
        return false;
    }
    for &b in &dead {
        // Remove φ entries in reachable successors that name this block.
        for s in func.succs(b) {
            if cfg.is_reachable(s) {
                func.phi_remove_incoming(s, b);
            }
        }
    }
    for b in dead {
        func.remove_block(b);
        stats.removed_unreachable += 1;
        changed = true;
    }
    // No explicit invalidation: every mutation above is journaled, and the
    // manager reconciles each cached entry with its own window at the next
    // query (keeping or updating the dominator trees in place).
    changed
}

fn fold_branches(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
    scope: &mut ScopeState,
) -> bool {
    scope.refresh(func, am);
    let mut changed = false;
    for b in func.block_ids() {
        if !scope.allows(b) {
            continue;
        }
        let Some(t) = func.terminator(b) else {
            continue;
        };
        if func.inst(t).opcode != Opcode::Br {
            continue;
        }
        let succs = func.inst(t).succs.clone();
        let cond = func.inst(t).operands[0];
        if succs[0] == succs[1] {
            func.remove_inst(t);
            func.add_inst(
                b,
                InstData::terminator(Opcode::Jump, vec![], vec![succs[0]]),
            );
            stats.folded_same_target_branches += 1;
            changed = true;
        } else if let Value::I1(c) = cond {
            let (taken, dead) = if c {
                (succs[0], succs[1])
            } else {
                (succs[1], succs[0])
            };
            func.remove_inst(t);
            func.add_inst(b, InstData::terminator(Opcode::Jump, vec![], vec![taken]));
            func.phi_remove_incoming(dead, b);
            stats.folded_const_branches += 1;
            changed = true;
        }
    }
    // No explicit invalidation: every mutation above is journaled, and the
    // manager reconciles each cached entry with its own window at the next
    // query (keeping or updating the dominator trees in place).
    changed
}

fn remove_trivial_phis(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
    scope: &mut ScopeState,
) -> bool {
    let mut changed = false;
    loop {
        scope.refresh(func, am);
        let mut local = false;
        for b in func.block_ids() {
            if !scope.allows(b) {
                continue;
            }
            for phi in func.phis_of(b) {
                let inst = func.inst(phi);
                // A φ is trivial if all incomings are the same value or the φ
                // itself (self-reference through a loop).
                let mut unique: Option<Value> = None;
                let mut trivial = true;
                for &v in &inst.operands {
                    if v == Value::Inst(phi) {
                        continue;
                    }
                    match unique {
                        None => unique = Some(v),
                        Some(u) if u == v => {}
                        Some(_) => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if trivial {
                    let replacement = unique.unwrap_or(Value::Undef(inst.ty));
                    func.rauw(Value::Inst(phi), replacement);
                    func.remove_inst(phi);
                    stats.removed_trivial_phis += 1;
                    local = true;
                    changed = true;
                }
            }
        }
        if !local {
            break;
        }
    }
    if changed {
        am.invalidate_values();
    }
    changed
}

fn dedup_phis(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
    scope: &mut ScopeState,
) -> bool {
    scope.refresh(func, am);
    let mut changed = false;
    for b in func.block_ids() {
        if !scope.allows(b) {
            continue;
        }
        let phis = func.phis_of(b);
        for i in 0..phis.len() {
            if !func.is_inst_alive(phis[i]) {
                continue;
            }
            for j in (i + 1)..phis.len() {
                if !func.is_inst_alive(phis[j]) {
                    continue;
                }
                let a = func.inst(phis[i]);
                let c = func.inst(phis[j]);
                if a.ty == c.ty && a.operands == c.operands && a.phi_blocks == c.phi_blocks {
                    func.rauw(Value::Inst(phis[j]), Value::Inst(phis[i]));
                    func.remove_inst(phis[j]);
                    stats.removed_duplicate_phis += 1;
                    changed = true;
                }
            }
        }
    }
    if changed {
        am.invalidate_values();
    }
    changed
}

/// Merges `B` into its unique predecessor `P` when `P` unconditionally jumps
/// to `B` and `B` has no other predecessors.
fn merge_straightline(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
    scope: &mut ScopeState,
) -> bool {
    let mut changed = false;
    // Reachable-predecessor lists (one entry per edge), maintained locally
    // across merges: merging preserves reachability and only moves a
    // block's out-edges to its predecessor, so updating the two affected
    // rows keeps this exactly equal to a freshly recomputed `Cfg`'s view —
    // without the per-merge invalidate + whole-CFG recompute. The table is
    // materialized lazily from the cached CFG snapshot at the *first*
    // merge; sweeps that merge nothing (the common confirming case) just
    // borrow the snapshot.
    let cfg = am.get::<Cfg>(func);
    let mut local: Option<Vec<Vec<BlockId>>> = None;
    loop {
        scope.refresh(func, am);
        let mut merged = false;
        for b in func.block_ids() {
            if b == func.entry() {
                continue;
            }
            let row: &[BlockId] = match &local {
                Some(t) => &t[b.index()],
                None => cfg.preds(b),
            };
            if row.len() != 1 {
                continue;
            }
            let p = row[0];
            // The enabling condition reads only `b` and its unique
            // predecessor — a change at either makes both candidates.
            if !scope.allows(b) && !scope.allows(p) {
                continue;
            }
            if !func.is_block_alive(p) || func.succs(p).len() != 1 {
                continue;
            }
            let Some(pt) = func.terminator(p) else {
                continue;
            };
            if func.inst(pt).opcode != Opcode::Jump {
                continue;
            }
            // The snapshot goes stale at the first mutation: materialize
            // the local table from it before rewriting.
            let preds = local.get_or_insert_with(|| {
                (0..func.block_capacity())
                    .map(|i| cfg.preds(BlockId::new(i)).to_vec())
                    .collect()
            });
            // Single-incoming φs in `b` fold to their value.
            for phi in func.phis_of(b) {
                let v = func.inst(phi).operands[0];
                func.rauw(Value::Inst(phi), v);
                func.remove_inst(phi);
            }
            // Move b's instructions into p.
            func.remove_inst(pt);
            let insts = func.insts_of(b).to_vec();
            for id in insts {
                let data = func.inst(id).clone();
                func.remove_inst(id);
                let new_id = func.add_inst(p, data);
                func.rauw(Value::Inst(id), Value::Inst(new_id));
            }
            for s in func.succs(p) {
                func.phi_retarget_pred(s, b, p);
                for e in &mut preds[s.index()] {
                    if *e == b {
                        *e = p;
                    }
                }
            }
            func.remove_block(b);
            preds[b.index()].clear();
            stats.merged_blocks += 1;
            merged = true;
            changed = true;
            break; // rescan from the top with the updated rows
        }
        if !merged {
            break;
        }
    }
    // No explicit invalidation: every mutation above is journaled, and the
    // manager reconciles each cached entry with its own window at the next
    // query (keeping or updating the dominator trees in place).
    changed
}

/// Removes blocks that contain only an unconditional jump, redirecting their
/// predecessors straight to the target (LLVM's
/// `TryToSimplifyUncondBranchFromEmptyBlock`).
fn elide_empty_blocks(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
    scope: &mut ScopeState,
) -> bool {
    let mut changed = false;
    // Reachable-predecessor lists maintained locally across elisions, the
    // same way `merge_straightline` does: rerouting `preds(b) → b → target`
    // to direct edges preserves reachability, so updating the two affected
    // rows keeps this equal to a fresh `Cfg`'s view without per-elision
    // recomputes. Materialized lazily at the first elision; no-op sweeps
    // borrow the cached snapshot.
    let cfg = am.get::<Cfg>(func);
    let mut local: Option<Vec<Vec<BlockId>>> = None;
    loop {
        scope.refresh(func, am);
        let mut elided = false;
        'outer: for b in func.block_ids() {
            if b == func.entry() {
                continue;
            }
            let insts = func.insts_of(b);
            if insts.len() != 1 {
                continue;
            }
            let t = insts[0];
            if func.inst(t).opcode != Opcode::Jump {
                continue;
            }
            let target = func.inst(t).succs[0];
            if target == b {
                continue; // self-loop
            }
            // Feasibility reads `b`, its predecessors' edges and the φs of
            // `target`; any enabling change dirties `b` or `target`.
            if !scope.allows(b) && !scope.allows(target) {
                continue;
            }
            let preds: Vec<BlockId> = match &local {
                Some(t) => t[b.index()].clone(),
                None => cfg.preds(b).to_vec(),
            };
            if preds.is_empty() {
                continue;
            }
            // Feasibility: for each φ in target, rerouting must not create
            // conflicting incoming values for any predecessor.
            let mut unique_preds = preds.clone();
            unique_preds.sort();
            unique_preds.dedup();
            for phi in func.phis_of(target) {
                let inst = func.inst(phi);
                let Some(v_b) = inst.phi_value_for(b) else {
                    continue 'outer;
                };
                for &p in &unique_preds {
                    if let Some(v_p) = inst.phi_value_for(p) {
                        if v_p != v_b {
                            continue 'outer; // would need a merge; skip
                        }
                    }
                }
            }
            // Also: a predecessor that already branches to `target` directly
            // *and* through `b` would leave φs unable to distinguish edges;
            // allowed only because values were checked equal above.
            for phi in func.phis_of(target) {
                let v_b = func.inst(phi).phi_value_for(b).unwrap();
                let inst = func.inst_mut(phi);
                // drop entry for b
                let mut k = 0;
                while k < inst.phi_blocks.len() {
                    if inst.phi_blocks[k] == b {
                        inst.phi_blocks.remove(k);
                        inst.operands.remove(k);
                    } else {
                        k += 1;
                    }
                }
                for &p in &unique_preds {
                    let inst = func.inst_mut(phi);
                    if !inst.phi_blocks.contains(&p) {
                        inst.phi_blocks.push(p);
                        inst.operands.push(v_b);
                    }
                }
            }
            let pred_rows = local.get_or_insert_with(|| {
                (0..func.block_capacity())
                    .map(|i| cfg.preds(BlockId::new(i)).to_vec())
                    .collect()
            });
            for &p in &unique_preds {
                func.replace_succ(p, b, target);
            }
            func.remove_block(b);
            // Local row maintenance: every edge `p → b` is now `p → target`.
            let moved = std::mem::take(&mut pred_rows[b.index()]);
            pred_rows[target.index()].retain(|&e| e != b);
            pred_rows[target.index()].extend(moved);
            stats.elided_empty_blocks += 1;
            elided = true;
            changed = true;
            break;
        }
        if !elided {
            break;
        }
    }
    // No explicit invalidation: every mutation above is journaled, and the
    // manager reconciles each cached entry with its own window at the next
    // query (keeping or updating the dominator trees in place).
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{IcmpPred, Type};

    #[test]
    fn folds_constant_branch_and_removes_unreachable() {
        let mut f = Function::new("cb", vec![], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        b.br(Value::I1(true), t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, Value::I32(1)), (e, Value::I32(2))]);
        b.ret(Some(p));

        let stats = simplify_cfg(&mut f);
        assert!(stats.folded_const_branches >= 1);
        assert!(stats.removed_unreachable >= 1);
        verify_ssa(&f).unwrap();
        // Everything should have collapsed into one block returning 1.
        assert_eq!(f.block_ids().len(), 1);
        let term = f.terminator(f.entry()).unwrap();
        assert_eq!(f.inst(term).operands[0], Value::I32(1));
    }

    #[test]
    fn folds_same_target_branch() {
        let mut f = Function::new("st", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, x, x);
        b.switch_to(x);
        b.ret(None);
        let stats = simplify_cfg(&mut f);
        assert_eq!(stats.folded_same_target_branches, 1);
        verify_ssa(&f).unwrap();
        assert_eq!(f.block_ids().len(), 1);
    }

    #[test]
    fn merges_straightline_chain() {
        let mut f = Function::new("ml", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let m = f.add_block("m");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let a = b.add(b.param(0), b.const_i32(1));
        b.jump(m);
        b.switch_to(m);
        let c = b.mul(a, a);
        b.jump(x);
        b.switch_to(x);
        b.ret(Some(c));
        let stats = simplify_cfg(&mut f);
        assert!(stats.merged_blocks >= 2);
        assert_eq!(f.block_ids().len(), 1);
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn elides_empty_forwarding_block() {
        // entry -> {fwd, e}; fwd -> x; e -> x
        let mut f = Function::new("fw", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let fwd = f.add_block("fwd");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, fwd, e);
        b.switch_to(fwd);
        b.jump(x);
        b.switch_to(e);
        let v = b.add(b.param(0), b.const_i32(5));
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(fwd, Value::I32(1)), (e, v)]);
        b.ret(Some(p));
        let before = f.block_ids().len();
        let stats = simplify_cfg(&mut f);
        assert!(stats.elided_empty_blocks >= 1);
        assert!(f.block_ids().len() < before);
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn removes_trivial_and_duplicate_phis() {
        let mut f = Function::new("ph", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let v = b.add(b.param(0), b.const_i32(1));
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p1 = b.phi(Type::I32, &[(t, v), (e, v)]); // trivial
        let p2 = b.phi(Type::I32, &[(t, v), (e, Value::I32(0))]);
        let p3 = b.phi(Type::I32, &[(t, v), (e, Value::I32(0))]); // dup of p2
        let s = b.add(p1, p2);
        let s2 = b.add(s, p3);
        b.ret(Some(s2));
        let stats = simplify_cfg(&mut f);
        assert!(stats.removed_trivial_phis >= 1);
        assert!(stats.removed_duplicate_phis >= 1);
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn simplify_is_idempotent() {
        let mut f = Function::new("idem", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        let v = b.add(b.param(0), b.const_i32(1));
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, v), (e, Value::I32(0))]);
        b.ret(Some(p));
        simplify_cfg(&mut f);
        let snapshot = f.to_string();
        let stats2 = simplify_cfg(&mut f);
        assert_eq!(stats2.total(), 0);
        assert_eq!(f.to_string(), snapshot);
    }
}
