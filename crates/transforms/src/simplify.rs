//! CFG simplification, the analogue of LLVM's `simplifycfg`.

use darm_analysis::{AnalysisManager, Cfg};
use darm_ir::{BlockId, Function, InstData, Opcode, Value};

/// Statistics of one [`simplify_cfg`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Constant conditional branches rewritten to jumps.
    pub folded_const_branches: usize,
    /// `br c, X, X` rewritten to `jump X`.
    pub folded_same_target_branches: usize,
    /// Blocks merged into their unique predecessor.
    pub merged_blocks: usize,
    /// Empty forwarding blocks removed.
    pub elided_empty_blocks: usize,
    /// Unreachable blocks removed.
    pub removed_unreachable: usize,
    /// Trivial (single-value) φ-nodes replaced.
    pub removed_trivial_phis: usize,
    /// Duplicate φ-nodes deduplicated.
    pub removed_duplicate_phis: usize,
}

impl SimplifyStats {
    /// Total number of simplifications applied.
    pub fn total(&self) -> usize {
        self.folded_const_branches
            + self.folded_same_target_branches
            + self.merged_blocks
            + self.elided_empty_blocks
            + self.removed_unreachable
            + self.removed_trivial_phis
            + self.removed_duplicate_phis
    }
}

/// Simplifies the CFG to a fixpoint and returns what was done.
///
/// Mirrors the subset of LLVM `simplifycfg` that Algorithm 1 relies on
/// between melding iterations. The function is left structurally valid;
/// callers that care about SSA dominance should run the verifier in tests.
pub fn simplify_cfg(func: &mut Function) -> SimplifyStats {
    simplify_cfg_with(func, &mut AnalysisManager::new())
}

/// [`simplify_cfg`] against a shared [`AnalysisManager`]: CFG snapshots are
/// pulled from the cache instead of recomputed per sub-transform, and every
/// mutation invalidates exactly the analyses it breaks (block/edge edits
/// drop everything; φ-only rewrites keep the shape analyses). The rewrite
/// sequence — and therefore the resulting IR — is identical to the uncached
/// version.
pub fn simplify_cfg_with(func: &mut Function, am: &mut AnalysisManager) -> SimplifyStats {
    let mut stats = SimplifyStats::default();
    loop {
        let mut changed = false;
        changed |= remove_unreachable(func, am, &mut stats);
        changed |= fold_branches(func, am, &mut stats);
        changed |= remove_trivial_phis(func, am, &mut stats);
        changed |= dedup_phis(func, am, &mut stats);
        changed |= merge_straightline(func, am, &mut stats);
        changed |= elide_empty_blocks(func, am, &mut stats);
        if !changed {
            break;
        }
    }
    stats
}

fn remove_unreachable(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
) -> bool {
    let cfg = am.get::<Cfg>(func);
    let mut changed = false;
    let dead: Vec<BlockId> = func
        .block_ids()
        .into_iter()
        .filter(|&b| !cfg.is_reachable(b))
        .collect();
    if dead.is_empty() {
        return false;
    }
    for &b in &dead {
        // Remove φ entries in reachable successors that name this block.
        for s in func.succs(b) {
            if cfg.is_reachable(s) {
                func.phi_remove_incoming(s, b);
            }
        }
    }
    for b in dead {
        func.remove_block(b);
        stats.removed_unreachable += 1;
        changed = true;
    }
    if changed {
        am.invalidate_all();
    }
    changed
}

fn fold_branches(func: &mut Function, am: &mut AnalysisManager, stats: &mut SimplifyStats) -> bool {
    let mut changed = false;
    for b in func.block_ids() {
        let Some(t) = func.terminator(b) else {
            continue;
        };
        if func.inst(t).opcode != Opcode::Br {
            continue;
        }
        let succs = func.inst(t).succs.clone();
        let cond = func.inst(t).operands[0];
        if succs[0] == succs[1] {
            func.remove_inst(t);
            func.add_inst(
                b,
                InstData::terminator(Opcode::Jump, vec![], vec![succs[0]]),
            );
            stats.folded_same_target_branches += 1;
            changed = true;
        } else if let Value::I1(c) = cond {
            let (taken, dead) = if c {
                (succs[0], succs[1])
            } else {
                (succs[1], succs[0])
            };
            func.remove_inst(t);
            func.add_inst(b, InstData::terminator(Opcode::Jump, vec![], vec![taken]));
            func.phi_remove_incoming(dead, b);
            stats.folded_const_branches += 1;
            changed = true;
        }
    }
    if changed {
        am.invalidate_all();
    }
    changed
}

fn remove_trivial_phis(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
) -> bool {
    let mut changed = false;
    loop {
        let mut local = false;
        for b in func.block_ids() {
            for phi in func.phis_of(b) {
                let inst = func.inst(phi);
                // A φ is trivial if all incomings are the same value or the φ
                // itself (self-reference through a loop).
                let mut unique: Option<Value> = None;
                let mut trivial = true;
                for &v in &inst.operands {
                    if v == Value::Inst(phi) {
                        continue;
                    }
                    match unique {
                        None => unique = Some(v),
                        Some(u) if u == v => {}
                        Some(_) => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if trivial {
                    let replacement = unique.unwrap_or(Value::Undef(inst.ty));
                    func.rauw(Value::Inst(phi), replacement);
                    func.remove_inst(phi);
                    stats.removed_trivial_phis += 1;
                    local = true;
                    changed = true;
                }
            }
        }
        if !local {
            break;
        }
    }
    if changed {
        am.invalidate_values();
    }
    changed
}

fn dedup_phis(func: &mut Function, am: &mut AnalysisManager, stats: &mut SimplifyStats) -> bool {
    let mut changed = false;
    for b in func.block_ids() {
        let phis = func.phis_of(b);
        for i in 0..phis.len() {
            if !func.is_inst_alive(phis[i]) {
                continue;
            }
            for j in (i + 1)..phis.len() {
                if !func.is_inst_alive(phis[j]) {
                    continue;
                }
                let a = func.inst(phis[i]);
                let c = func.inst(phis[j]);
                if a.ty == c.ty && a.operands == c.operands && a.phi_blocks == c.phi_blocks {
                    func.rauw(Value::Inst(phis[j]), Value::Inst(phis[i]));
                    func.remove_inst(phis[j]);
                    stats.removed_duplicate_phis += 1;
                    changed = true;
                }
            }
        }
    }
    if changed {
        am.invalidate_values();
    }
    changed
}

/// Merges `B` into its unique predecessor `P` when `P` unconditionally jumps
/// to `B` and `B` has no other predecessors.
fn merge_straightline(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
) -> bool {
    let mut changed = false;
    loop {
        let cfg = am.get::<Cfg>(func);
        let mut merged = false;
        for b in func.block_ids() {
            if b == func.entry() {
                continue;
            }
            let preds = cfg.preds(b);
            if preds.len() != 1 {
                continue;
            }
            let p = preds[0];
            if !func.is_block_alive(p) || func.succs(p).len() != 1 {
                continue;
            }
            let Some(pt) = func.terminator(p) else {
                continue;
            };
            if func.inst(pt).opcode != Opcode::Jump {
                continue;
            }
            // Single-incoming φs in `b` fold to their value.
            for phi in func.phis_of(b) {
                let v = func.inst(phi).operands[0];
                func.rauw(Value::Inst(phi), v);
                func.remove_inst(phi);
            }
            // Move b's instructions into p.
            func.remove_inst(pt);
            let insts = func.insts_of(b).to_vec();
            for id in insts {
                let data = func.inst(id).clone();
                func.remove_inst(id);
                let new_id = func.add_inst(p, data);
                func.rauw(Value::Inst(id), Value::Inst(new_id));
            }
            for s in func.succs(p) {
                func.phi_retarget_pred(s, b, p);
            }
            func.remove_block(b);
            stats.merged_blocks += 1;
            am.invalidate_all();
            merged = true;
            changed = true;
            break; // CFG changed; recompute
        }
        if !merged {
            break;
        }
    }
    changed
}

/// Removes blocks that contain only an unconditional jump, redirecting their
/// predecessors straight to the target (LLVM's
/// `TryToSimplifyUncondBranchFromEmptyBlock`).
fn elide_empty_blocks(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
) -> bool {
    let mut changed = false;
    loop {
        let cfg = am.get::<Cfg>(func);
        let mut elided = false;
        'outer: for b in func.block_ids() {
            if b == func.entry() {
                continue;
            }
            let insts = func.insts_of(b);
            if insts.len() != 1 {
                continue;
            }
            let t = insts[0];
            if func.inst(t).opcode != Opcode::Jump {
                continue;
            }
            let target = func.inst(t).succs[0];
            if target == b {
                continue; // self-loop
            }
            let preds: Vec<BlockId> = cfg.preds(b).to_vec();
            if preds.is_empty() {
                continue;
            }
            // Feasibility: for each φ in target, rerouting must not create
            // conflicting incoming values for any predecessor.
            let mut unique_preds = preds.clone();
            unique_preds.sort();
            unique_preds.dedup();
            for phi in func.phis_of(target) {
                let inst = func.inst(phi);
                let Some(v_b) = inst.phi_value_for(b) else {
                    continue 'outer;
                };
                for &p in &unique_preds {
                    if let Some(v_p) = inst.phi_value_for(p) {
                        if v_p != v_b {
                            continue 'outer; // would need a merge; skip
                        }
                    }
                }
            }
            // Also: a predecessor that already branches to `target` directly
            // *and* through `b` would leave φs unable to distinguish edges;
            // allowed only because values were checked equal above.
            for phi in func.phis_of(target) {
                let v_b = func.inst(phi).phi_value_for(b).unwrap();
                let inst = func.inst_mut(phi);
                // drop entry for b
                let mut k = 0;
                while k < inst.phi_blocks.len() {
                    if inst.phi_blocks[k] == b {
                        inst.phi_blocks.remove(k);
                        inst.operands.remove(k);
                    } else {
                        k += 1;
                    }
                }
                for &p in &unique_preds {
                    let inst = func.inst_mut(phi);
                    if !inst.phi_blocks.contains(&p) {
                        inst.phi_blocks.push(p);
                        inst.operands.push(v_b);
                    }
                }
            }
            for &p in &unique_preds {
                func.replace_succ(p, b, target);
            }
            func.remove_block(b);
            stats.elided_empty_blocks += 1;
            am.invalidate_all();
            elided = true;
            changed = true;
            break;
        }
        if !elided {
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{IcmpPred, Type};

    #[test]
    fn folds_constant_branch_and_removes_unreachable() {
        let mut f = Function::new("cb", vec![], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        b.br(Value::I1(true), t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, Value::I32(1)), (e, Value::I32(2))]);
        b.ret(Some(p));

        let stats = simplify_cfg(&mut f);
        assert!(stats.folded_const_branches >= 1);
        assert!(stats.removed_unreachable >= 1);
        verify_ssa(&f).unwrap();
        // Everything should have collapsed into one block returning 1.
        assert_eq!(f.block_ids().len(), 1);
        let term = f.terminator(f.entry()).unwrap();
        assert_eq!(f.inst(term).operands[0], Value::I32(1));
    }

    #[test]
    fn folds_same_target_branch() {
        let mut f = Function::new("st", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, x, x);
        b.switch_to(x);
        b.ret(None);
        let stats = simplify_cfg(&mut f);
        assert_eq!(stats.folded_same_target_branches, 1);
        verify_ssa(&f).unwrap();
        assert_eq!(f.block_ids().len(), 1);
    }

    #[test]
    fn merges_straightline_chain() {
        let mut f = Function::new("ml", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let m = f.add_block("m");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let a = b.add(b.param(0), b.const_i32(1));
        b.jump(m);
        b.switch_to(m);
        let c = b.mul(a, a);
        b.jump(x);
        b.switch_to(x);
        b.ret(Some(c));
        let stats = simplify_cfg(&mut f);
        assert!(stats.merged_blocks >= 2);
        assert_eq!(f.block_ids().len(), 1);
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn elides_empty_forwarding_block() {
        // entry -> {fwd, e}; fwd -> x; e -> x
        let mut f = Function::new("fw", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let fwd = f.add_block("fwd");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, fwd, e);
        b.switch_to(fwd);
        b.jump(x);
        b.switch_to(e);
        let v = b.add(b.param(0), b.const_i32(5));
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(fwd, Value::I32(1)), (e, v)]);
        b.ret(Some(p));
        let before = f.block_ids().len();
        let stats = simplify_cfg(&mut f);
        assert!(stats.elided_empty_blocks >= 1);
        assert!(f.block_ids().len() < before);
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn removes_trivial_and_duplicate_phis() {
        let mut f = Function::new("ph", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let v = b.add(b.param(0), b.const_i32(1));
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p1 = b.phi(Type::I32, &[(t, v), (e, v)]); // trivial
        let p2 = b.phi(Type::I32, &[(t, v), (e, Value::I32(0))]);
        let p3 = b.phi(Type::I32, &[(t, v), (e, Value::I32(0))]); // dup of p2
        let s = b.add(p1, p2);
        let s2 = b.add(s, p3);
        b.ret(Some(s2));
        let stats = simplify_cfg(&mut f);
        assert!(stats.removed_trivial_phis >= 1);
        assert!(stats.removed_duplicate_phis >= 1);
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn simplify_is_idempotent() {
        let mut f = Function::new("idem", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        let v = b.add(b.param(0), b.const_i32(1));
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, v), (e, Value::I32(0))]);
        b.ret(Some(p));
        simplify_cfg(&mut f);
        let snapshot = f.to_string();
        let stats2 = simplify_cfg(&mut f);
        assert_eq!(stats2.total(), 0);
        assert_eq!(f.to_string(), snapshot);
    }
}
