//! Edge surgery helpers.

use darm_ir::{BlockId, Function, InstData, Opcode};

/// Splits the edge `from → to` by inserting a fresh block containing a
/// single jump. All edges from `from` to `to` are redirected through the new
/// block (a conditional branch with both targets equal contributes one
/// split block). φ-nodes in `to` are retargeted accordingly.
///
/// Returns the inserted block. This is the primitive behind the paper's
/// *region simplification* (Definition 3: turning regions into simple
/// regions by introducing dedicated entry/exit blocks).
pub fn split_edge(func: &mut Function, from: BlockId, to: BlockId, name: &str) -> BlockId {
    let mid = func.add_block(name);
    func.add_inst(mid, InstData::terminator(Opcode::Jump, vec![], vec![to]));
    func.replace_succ(from, to, mid);
    func.phi_retarget_pred(to, from, mid);
    mid
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{IcmpPred, Type, Value};

    #[test]
    fn splits_critical_edge_and_fixes_phis() {
        // entry -> {x, e}; e -> x. Edge entry->x is critical.
        let mut f = Function::new("ce", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, x, e);
        b.switch_to(e);
        let v = b.add(b.param(0), b.const_i32(1));
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(entry, Value::I32(0)), (e, v)]);
        b.ret(Some(p));
        verify_ssa(&f).unwrap();

        let mid = split_edge(&mut f, entry, x, "entry.x");
        verify_ssa(&f).unwrap();
        assert_eq!(f.succs(entry), vec![mid, e]);
        assert_eq!(f.succs(mid), vec![x]);
    }

    #[test]
    fn split_handles_duplicate_edges() {
        let mut f = Function::new("dup", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, x, x);
        b.switch_to(x);
        b.ret(None);
        let mid = split_edge(&mut f, entry, x, "m");
        // both branch targets now go through mid
        assert_eq!(f.succs(entry), vec![mid, mid]);
        verify_ssa(&f).unwrap();
    }
}
