//! SSA reconstruction after dominance-breaking CFG edits.
//!
//! Melding moves instructions between blocks and re-links control flow; a
//! definition that used to dominate its uses may no longer do so (the
//! situation of the paper's Fig. 5, which DARM's pre-processing handles by
//! inserting a φ with an `undef` arm). This module implements the general
//! fix: for each broken definition, place φ-nodes at its iterated dominance
//! frontier and rewrite uses to the nearest reaching definition, with
//! `undef` on paths that never execute the definition.

use darm_analysis::{AnalysisManager, Cfg, DomTree};
use darm_ir::{BlockId, DirtyDelta, Function, InstData, InstId, Opcode, Value};
use std::collections::HashMap;

/// Repairs every definition whose uses are no longer dominated. Returns the
/// number of definitions repaired.
pub fn repair_ssa(func: &mut Function) -> usize {
    repair_ssa_with(func, &mut AnalysisManager::new())
}

/// [`repair_ssa`] against a shared [`AnalysisManager`]. Reconstruction only
/// inserts φs and rewrites operands — the block graph is untouched — so one
/// CFG + dominator-tree computation serves every repaired definition (the
/// uncached version recomputes both per definition), and both stay valid in
/// the cache for the caller. Instruction-sensitive analyses are dropped.
pub fn repair_ssa_with(func: &mut Function, am: &mut AnalysisManager) -> usize {
    repair_ssa_scoped(func, am, None)
}

/// [`repair_ssa_with`] with the broken-definition scan restricted to where
/// SSA can actually have broken since the last repair: instructions in the
/// window's dirty blocks, touched instructions, and — because dominance is
/// a global property — every block whose dominator chain changed between
/// the caller-provided `dom_changed` baseline diff (see
/// [`DomTree::changed_from`]) and now. On a function that was fully
/// repaired at the baseline, the scan finds exactly the defects the
/// whole-function scan finds, in the same order.
pub fn repair_ssa_scoped(
    func: &mut Function,
    am: &mut AnalysisManager,
    scope: Option<(&DirtyDelta, &[bool])>,
) -> usize {
    darm_ir::fault::point("transforms::ssa-repair");
    if scope.is_some_and(|(d, _)| d.is_clean()) {
        return 0; // nothing mutated since the last repair: SSA still valid
    }
    let mut repaired = 0;
    // The accumulated window: the caller's delta plus the repairs' own
    // mutations, drained incrementally (each journal event replays once).
    let mut acc = scope.map(|(delta, _)| (delta.clone(), func.journal_head()));
    // Reconstruction leaves the block graph intact, so the dominance
    // frontiers feeding φ placement are computed at most once per repair
    // run and shared across every reconstructed definition.
    let mut frontiers: Option<Vec<Vec<BlockId>>> = None;
    // Each reconstruction inserts φs, which can themselves need inspection;
    // loop until clean.
    loop {
        let cfg = am.get::<Cfg>(func);
        let dt = am.get::<DomTree>(func);
        if let Some((delta, cursor)) = &mut acc {
            delta.merge(&func.dirty_since(*cursor));
            *cursor = func.journal_head();
            if delta.is_saturated() {
                acc = None;
            }
        }
        let found = match (&acc, scope) {
            (Some((delta, _)), Some((_, dom_changed))) => {
                find_broken_def(func, &cfg, &dt, Some((delta, dom_changed)))
            }
            _ => find_broken_def(func, &cfg, &dt, None),
        };
        let Some(def) = found else {
            break;
        };
        let df = frontiers.get_or_insert_with(|| dt.dominance_frontiers(&cfg));
        reconstruct(func, &cfg, &dt, df, def);
        am.invalidate_values();
        repaired += 1;
    }
    repaired
}

/// Finds one definition with a non-dominated use, if any. With a scope,
/// only *candidate* uses are checked — uses that are dirty themselves, sit
/// in a dirty block, or sit where dominance moved (`dom_changed`); every
/// other def-use pair was valid at the baseline and nothing that decides
/// its validity has changed.
fn find_broken_def(
    func: &Function,
    cfg: &Cfg,
    dt: &DomTree,
    scope: Option<(&DirtyDelta, &[bool])>,
) -> Option<InstId> {
    let dom_moved = |b: BlockId| match scope {
        None => true,
        Some((_, dom_changed)) => dom_changed.get(b.index()).copied().unwrap_or(true),
    };
    let block_dirty = |b: BlockId| match scope {
        None => true,
        Some((delta, _)) => delta.blocks.contains(b),
    };
    let inst_dirty = |id: InstId| match scope {
        None => true,
        Some((delta, _)) => delta.insts.contains(id),
    };
    // Block-local instruction positions, built lazily per block the scan
    // actually needs ordering for (the whole-function path prebuilds all).
    let mut pos = vec![usize::MAX; func.inst_capacity()];
    let mut pos_built = vec![scope.is_none(); func.block_capacity()];
    if scope.is_none() {
        for &b in cfg.rpo() {
            for (k, &id) in func.insts_of(b).iter().enumerate() {
                pos[id.index()] = k;
            }
        }
    }
    for &b in cfg.rpo() {
        let b_interesting = block_dirty(b) || dom_moved(b);
        for &id in func.insts_of(b) {
            let inst = func.inst(id);
            if inst.opcode == Opcode::Phi {
                let phi_dirty = b_interesting || inst_dirty(id);
                for (pred, val) in inst.phi_incoming() {
                    let Value::Inst(def) = val else { continue };
                    // A (pred, def) arm can newly break only if the φ or
                    // the def moved, or dominance moved at the pred.
                    if !phi_dirty && !inst_dirty(def) && !dom_moved(pred) {
                        continue;
                    }
                    if !cfg.is_reachable(pred) {
                        continue;
                    }
                    if !dt.dominates(func.inst(def).block, pred) {
                        return Some(def);
                    }
                }
            } else {
                let use_dirty = b_interesting || inst_dirty(id);
                for &op in &inst.operands {
                    let Value::Inst(def) = op else { continue };
                    if !use_dirty && !inst_dirty(def) {
                        continue;
                    }
                    let db = func.inst(def).block;
                    let ok = if db == b {
                        if !pos_built[b.index()] {
                            pos_built[b.index()] = true;
                            for (k, &i) in func.insts_of(b).iter().enumerate() {
                                pos[i.index()] = k;
                            }
                        }
                        pos[def.index()] < pos[id.index()]
                    } else {
                        dt.dominates(db, b)
                    };
                    if !ok {
                        return Some(def);
                    }
                }
            }
        }
    }
    None
}

/// Rebuilds SSA form for one definition by φ placement at the IDF of its
/// defining block (`df` = shared precomputed dominance frontiers).
fn reconstruct(func: &mut Function, cfg: &Cfg, dt: &DomTree, df: &[Vec<BlockId>], def: InstId) {
    let def_block = func.inst(def).block;
    let ty = func.inst(def).ty;
    let users = func.users_of(Value::Inst(def));

    let idf = DomTree::iterated_frontier_from(df, &[def_block]);
    let mut phi_at: HashMap<BlockId, InstId> = HashMap::new();
    for &b in &idf {
        if b == def_block {
            continue;
        }
        // φ operands are filled below once all φ sites exist.
        let phi = func.insert_inst_at(b, 0, InstData::new(Opcode::Phi, ty, vec![]));
        phi_at.insert(b, phi);
    }

    // The reaching definition at the *end* of `block`.
    let value_at = |_func: &Function, mut block: BlockId| -> Value {
        loop {
            if block == def_block {
                return Value::Inst(def);
            }
            if let Some(&phi) = phi_at.get(&block) {
                return Value::Inst(phi);
            }
            match dt.idom(block) {
                Some(up) => block = up,
                None => return Value::Undef(ty),
            }
        }
    };

    // Fill in φ operands.
    for (&b, &phi) in &phi_at {
        let mut preds: Vec<BlockId> = cfg.preds(b).to_vec();
        preds.sort();
        preds.dedup();
        let mut blocks = Vec::new();
        let mut vals = Vec::new();
        for p in preds {
            if !cfg.is_reachable(p) {
                continue;
            }
            blocks.push(p);
            vals.push(value_at(func, p));
        }
        let inst = func.inst_mut(phi);
        inst.phi_blocks = blocks;
        inst.operands = vals;
    }

    // Rewire the original uses.
    for u in users {
        if phi_at.values().any(|&p| p == u) {
            continue; // operands of the new φs are already correct
        }
        let ublock = func.inst(u).block;
        if func.inst(u).opcode == Opcode::Phi {
            let incoming: Vec<(usize, BlockId)> = func
                .inst(u)
                .phi_blocks
                .iter()
                .copied()
                .enumerate()
                .collect();
            for (k, pred) in incoming {
                if func.inst(u).operands[k] == Value::Inst(def) && !dt.dominates(def_block, pred) {
                    let v = value_at(func, pred);
                    func.inst_mut(u).operands[k] = v;
                }
            }
        } else {
            // A use in the defining block itself (after the def) stays.
            if ublock == def_block {
                continue;
            }
            if dt.dominates(def_block, ublock)
                && !dominated_through_phi(dt, &phi_at, def_block, ublock)
            {
                continue;
            }
            // Reaching definition at the start of the use's block: value at
            // the block itself if it hosts a φ, else at its idom.
            let v = if let Some(&phi) = phi_at.get(&ublock) {
                Value::Inst(phi)
            } else {
                match dt.idom(ublock) {
                    Some(up) => value_at(func, up),
                    None => Value::Undef(ty),
                }
            };
            let inst = func.inst_mut(u);
            for op in &mut inst.operands {
                if *op == Value::Inst(def) {
                    *op = v;
                }
            }
        }
    }
}

/// Whether a φ site sits strictly between `def_block` and `use_block` on the
/// dominator chain — in that case the use must read the φ, not the raw def.
fn dominated_through_phi(
    dt: &DomTree,
    phi_at: &HashMap<BlockId, InstId>,
    def_block: BlockId,
    use_block: BlockId,
) -> bool {
    let mut b = use_block;
    loop {
        if b == def_block {
            return false;
        }
        if phi_at.contains_key(&b) {
            return true;
        }
        match dt.idom(b) {
            Some(up) => b = up,
            None => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{IcmpPred, Type};

    /// Builds the Fig. 5 situation: a definition on one side of a diamond
    /// used below the join — invalid SSA that repair must fix with a φ
    /// carrying `undef` on the other arm.
    #[test]
    fn repairs_fig5_pattern() {
        let mut f = Function::new("fig5", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        let a = b.add(b.param(0), b.const_i32(1)); // %a defined in t
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let u = b.add(a, b.const_i32(2)); // use below the join: broken
        b.ret(Some(u));

        assert!(verify_ssa(&f).is_err());
        let n = repair_ssa(&mut f);
        assert_eq!(n, 1);
        verify_ssa(&f).unwrap();
        // x must now begin with a φ merging %a and undef.
        let phis = f.phis_of(x);
        assert_eq!(phis.len(), 1);
        let phi = f.inst(phis[0]);
        assert!(phi.operands.contains(&a));
        assert!(phi.operands.iter().any(|v| v.is_undef()));
    }

    #[test]
    fn no_op_on_valid_ssa() {
        let mut f = Function::new("ok", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f, entry);
        let v = b.add(b.param(0), b.const_i32(1));
        b.ret(Some(v));
        assert_eq!(repair_ssa(&mut f), 0);
    }

    #[test]
    fn repairs_use_in_loop_body() {
        // def in pre-loop branch arm, use inside a later loop.
        let mut f = Function::new("lp", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let h = f.add_block("h");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        let a = b.mul(b.param(0), b.const_i32(3));
        b.jump(h);
        b.switch_to(e);
        b.jump(h);
        b.switch_to(h);
        let c2 = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(10));
        b.br(c2, body, exit);
        b.switch_to(body);
        let _u = b.add(a, b.const_i32(1)); // broken use
        b.jump(h);
        b.switch_to(exit);
        b.ret(Some(b.param(0)));

        assert!(verify_ssa(&f).is_err());
        repair_ssa(&mut f);
        verify_ssa(&f).unwrap();
    }

    #[test]
    fn repairs_phi_incoming_violation() {
        // φ at x receives %a from pred e, but %a is defined in t.
        let mut f = Function::new("pi", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        let a = b.add(b.param(0), b.const_i32(1));
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, Value::I32(0)), (e, a)]);
        b.ret(Some(p));
        use darm_ir::Value;

        assert!(verify_ssa(&f).is_err());
        repair_ssa(&mut f);
        verify_ssa(&f).unwrap();
    }
}
