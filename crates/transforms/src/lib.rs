#![warn(missing_docs)]

//! # darm-transforms
//!
//! Generic CFG/SSA cleanup transformations over [`darm_ir`] functions — the
//! in-house `simplifycfg` + DCE that DARM's Algorithm 1 interleaves with
//! melding iterations, plus the SSA-repair machinery that generalizes the
//! paper's pre-processing step (Fig. 5).
//!
//! * [`simplify`] — CFG simplification to fixpoint: constant-branch folding,
//!   folding of branches with identical successors, straight-line block
//!   merging, empty-block elision, unreachable-code removal, trivial and
//!   duplicate φ elimination.
//! * [`dce`] — dead code elimination.
//! * [`instcombine`] — peephole simplification (constant selects from
//!   region replication, algebraic identities, constant folding).
//! * [`ssa_repair`] — IDF-based SSA reconstruction for definitions whose
//!   dominance was broken by a CFG transformation.
//! * [`edges`] — critical-edge splitting and related edge surgery.

pub mod dce;
pub mod edges;
pub mod instcombine;
pub mod pr2;
pub mod simplify;
pub mod ssa_repair;

pub use dce::{run_dce, run_dce_scoped};
pub use edges::split_edge;
pub use instcombine::{run_instcombine, run_instcombine_scoped};
pub use pr2::{
    repair_ssa_pr2, repair_ssa_with_pr2, run_dce_pr2, run_instcombine_pr2, simplify_cfg_pr2,
    simplify_cfg_with_pr2,
};
pub use simplify::{simplify_cfg, simplify_cfg_scoped, simplify_cfg_with};
pub use ssa_repair::{repair_ssa, repair_ssa_scoped, repair_ssa_with};
