//! The pass-manager-refactor-era ("PR 2") cleanup implementations, kept
//! verbatim as the differential baseline for compile-time benchmarks.
//!
//! These are the whole-function, round-based scans that the incremental
//! rework replaced with worklists seeded from the mutation journal. Each
//! produces results identical to its modern counterpart (`run_dce`,
//! `run_instcombine`) — the `meld_pipeline` bench cross-checks that — so
//! the only difference a benchmark observes is cost.

use crate::instcombine::simplify_inst;
use crate::simplify::SimplifyStats;
use darm_analysis::{AnalysisManager, Cfg, DomTree};
use darm_ir::{BlockId, Function, InstData, InstId, Opcode, Value};
use std::collections::HashMap;

/// Round-based whole-function dead-code elimination: recompute use flags,
/// sweep, repeat until no instruction dies. Identical removals to
/// [`run_dce`](crate::run_dce).
pub fn run_dce_pr2(func: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        // Recompute use counts each round; φ self-references do not keep a
        // value alive on their own, but we treat them conservatively.
        let mut used = vec![false; func.inst_capacity()];
        for b in func.block_ids() {
            for &id in func.insts_of(b) {
                for &op in &func.inst(id).operands {
                    if let Value::Inst(dep) = op {
                        if dep != id {
                            used[dep.index()] = true;
                        }
                    }
                }
            }
        }
        let mut dead: Vec<InstId> = Vec::new();
        for b in func.block_ids() {
            for &id in func.insts_of(b) {
                let inst = func.inst(id);
                if !inst.opcode.has_side_effects() && !used[id.index()] {
                    dead.push(id);
                }
            }
        }
        if dead.is_empty() {
            return removed;
        }
        for id in dead {
            func.remove_inst(id);
            removed += 1;
        }
    }
}

/// Round-based whole-function peephole simplification: full sweeps until a
/// sweep changes nothing. Identical rewrites to
/// [`run_instcombine`](crate::run_instcombine).
pub fn run_instcombine_pr2(func: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let mut changed = 0;
        for b in func.block_ids() {
            for id in func.insts_of(b).to_vec() {
                if !func.is_inst_alive(id) {
                    continue;
                }
                if let Some(v) = simplify_inst(func, id) {
                    func.rauw(Value::Inst(id), v);
                    func.remove_inst(id);
                    changed += 1;
                }
            }
        }
        if changed == 0 {
            return total;
        }
        total += changed;
    }
}

// ---- frozen `simplifycfg` (whole-function, CFG recomputed per merge) ----

/// The pass-manager-refactor-era CFG simplification: whole-function sweeps
/// with the CFG snapshot invalidated and recomputed after every merge or
/// elision. Identical rewrites to [`simplify_cfg`](crate::simplify_cfg).
pub fn simplify_cfg_pr2(func: &mut Function) -> SimplifyStats {
    simplify_cfg_with_pr2(func, &mut AnalysisManager::new())
}

/// [`simplify_cfg_pr2`] against a shared analysis manager, as the era's
/// pipeline adapter ran it.
pub fn simplify_cfg_with_pr2(func: &mut Function, am: &mut AnalysisManager) -> SimplifyStats {
    let mut stats = SimplifyStats::default();
    loop {
        let mut changed = false;
        changed |= remove_unreachable_pr2(func, am, &mut stats);
        changed |= fold_branches_pr2(func, am, &mut stats);
        changed |= remove_trivial_phis_pr2(func, am, &mut stats);
        changed |= dedup_phis_pr2(func, am, &mut stats);
        changed |= merge_straightline_pr2(func, am, &mut stats);
        changed |= elide_empty_blocks_pr2(func, am, &mut stats);
        if !changed {
            break;
        }
    }
    stats
}

fn remove_unreachable_pr2(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
) -> bool {
    let cfg = am.get::<Cfg>(func);
    let mut changed = false;
    let dead: Vec<BlockId> = func
        .block_ids()
        .into_iter()
        .filter(|&b| !cfg.is_reachable(b))
        .collect();
    if dead.is_empty() {
        return false;
    }
    for &b in &dead {
        // Remove φ entries in reachable successors that name this block.
        for s in func.succs(b) {
            if cfg.is_reachable(s) {
                func.phi_remove_incoming(s, b);
            }
        }
    }
    for b in dead {
        func.remove_block(b);
        stats.removed_unreachable += 1;
        changed = true;
    }
    if changed {
        am.invalidate_all();
    }
    changed
}

fn fold_branches_pr2(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
) -> bool {
    let mut changed = false;
    for b in func.block_ids() {
        let Some(t) = func.terminator(b) else {
            continue;
        };
        if func.inst(t).opcode != Opcode::Br {
            continue;
        }
        let succs = func.inst(t).succs.clone();
        let cond = func.inst(t).operands[0];
        if succs[0] == succs[1] {
            func.remove_inst(t);
            func.add_inst(
                b,
                InstData::terminator(Opcode::Jump, vec![], vec![succs[0]]),
            );
            stats.folded_same_target_branches += 1;
            changed = true;
        } else if let Value::I1(c) = cond {
            let (taken, dead) = if c {
                (succs[0], succs[1])
            } else {
                (succs[1], succs[0])
            };
            func.remove_inst(t);
            func.add_inst(b, InstData::terminator(Opcode::Jump, vec![], vec![taken]));
            func.phi_remove_incoming(dead, b);
            stats.folded_const_branches += 1;
            changed = true;
        }
    }
    if changed {
        am.invalidate_all();
    }
    changed
}

fn remove_trivial_phis_pr2(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
) -> bool {
    let mut changed = false;
    loop {
        let mut local = false;
        for b in func.block_ids() {
            for phi in func.phis_of(b) {
                let inst = func.inst(phi);
                // A φ is trivial if all incomings are the same value or the φ
                // itself (self-reference through a loop).
                let mut unique: Option<Value> = None;
                let mut trivial = true;
                for &v in &inst.operands {
                    if v == Value::Inst(phi) {
                        continue;
                    }
                    match unique {
                        None => unique = Some(v),
                        Some(u) if u == v => {}
                        Some(_) => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if trivial {
                    let replacement = unique.unwrap_or(Value::Undef(inst.ty));
                    func.rauw(Value::Inst(phi), replacement);
                    func.remove_inst(phi);
                    stats.removed_trivial_phis += 1;
                    local = true;
                    changed = true;
                }
            }
        }
        if !local {
            break;
        }
    }
    if changed {
        am.invalidate_values();
    }
    changed
}

fn dedup_phis_pr2(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
) -> bool {
    let mut changed = false;
    for b in func.block_ids() {
        let phis = func.phis_of(b);
        for i in 0..phis.len() {
            if !func.is_inst_alive(phis[i]) {
                continue;
            }
            for j in (i + 1)..phis.len() {
                if !func.is_inst_alive(phis[j]) {
                    continue;
                }
                let a = func.inst(phis[i]);
                let c = func.inst(phis[j]);
                if a.ty == c.ty && a.operands == c.operands && a.phi_blocks == c.phi_blocks {
                    func.rauw(Value::Inst(phis[j]), Value::Inst(phis[i]));
                    func.remove_inst(phis[j]);
                    stats.removed_duplicate_phis += 1;
                    changed = true;
                }
            }
        }
    }
    if changed {
        am.invalidate_values();
    }
    changed
}

/// Merges `B` into its unique predecessor `P` when `P` unconditionally jumps
/// to `B` and `B` has no other predecessors.
fn merge_straightline_pr2(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
) -> bool {
    let mut changed = false;
    loop {
        let cfg = am.get::<Cfg>(func);
        let mut merged = false;
        for b in func.block_ids() {
            if b == func.entry() {
                continue;
            }
            let preds = cfg.preds(b);
            if preds.len() != 1 {
                continue;
            }
            let p = preds[0];
            if !func.is_block_alive(p) || func.succs(p).len() != 1 {
                continue;
            }
            let Some(pt) = func.terminator(p) else {
                continue;
            };
            if func.inst(pt).opcode != Opcode::Jump {
                continue;
            }
            // Single-incoming φs in `b` fold to their value.
            for phi in func.phis_of(b) {
                let v = func.inst(phi).operands[0];
                func.rauw(Value::Inst(phi), v);
                func.remove_inst(phi);
            }
            // Move b's instructions into p.
            func.remove_inst(pt);
            let insts = func.insts_of(b).to_vec();
            for id in insts {
                let data = func.inst(id).clone();
                func.remove_inst(id);
                let new_id = func.add_inst(p, data);
                func.rauw(Value::Inst(id), Value::Inst(new_id));
            }
            for s in func.succs(p) {
                func.phi_retarget_pred(s, b, p);
            }
            func.remove_block(b);
            stats.merged_blocks += 1;
            am.invalidate_all();
            merged = true;
            changed = true;
            break; // CFG changed; recompute
        }
        if !merged {
            break;
        }
    }
    changed
}

/// Removes blocks that contain only an unconditional jump, redirecting their
/// predecessors straight to the target (LLVM's
/// `TryToSimplifyUncondBranchFromEmptyBlock`).
fn elide_empty_blocks_pr2(
    func: &mut Function,
    am: &mut AnalysisManager,
    stats: &mut SimplifyStats,
) -> bool {
    let mut changed = false;
    loop {
        let cfg = am.get::<Cfg>(func);
        let mut elided = false;
        'outer: for b in func.block_ids() {
            if b == func.entry() {
                continue;
            }
            let insts = func.insts_of(b);
            if insts.len() != 1 {
                continue;
            }
            let t = insts[0];
            if func.inst(t).opcode != Opcode::Jump {
                continue;
            }
            let target = func.inst(t).succs[0];
            if target == b {
                continue; // self-loop
            }
            let preds: Vec<BlockId> = cfg.preds(b).to_vec();
            if preds.is_empty() {
                continue;
            }
            // Feasibility: for each φ in target, rerouting must not create
            // conflicting incoming values for any predecessor.
            let mut unique_preds = preds.clone();
            unique_preds.sort();
            unique_preds.dedup();
            for phi in func.phis_of(target) {
                let inst = func.inst(phi);
                let Some(v_b) = inst.phi_value_for(b) else {
                    continue 'outer;
                };
                for &p in &unique_preds {
                    if let Some(v_p) = inst.phi_value_for(p) {
                        if v_p != v_b {
                            continue 'outer; // would need a merge; skip
                        }
                    }
                }
            }
            // Also: a predecessor that already branches to `target` directly
            // *and* through `b` would leave φs unable to distinguish edges;
            // allowed only because values were checked equal above.
            for phi in func.phis_of(target) {
                let v_b = func.inst(phi).phi_value_for(b).unwrap();
                let inst = func.inst_mut(phi);
                // drop entry for b
                let mut k = 0;
                while k < inst.phi_blocks.len() {
                    if inst.phi_blocks[k] == b {
                        inst.phi_blocks.remove(k);
                        inst.operands.remove(k);
                    } else {
                        k += 1;
                    }
                }
                for &p in &unique_preds {
                    let inst = func.inst_mut(phi);
                    if !inst.phi_blocks.contains(&p) {
                        inst.phi_blocks.push(p);
                        inst.operands.push(v_b);
                    }
                }
            }
            for &p in &unique_preds {
                func.replace_succ(p, b, target);
            }
            func.remove_block(b);
            stats.elided_empty_blocks += 1;
            am.invalidate_all();
            elided = true;
            changed = true;
            break;
        }
        if !elided {
            break;
        }
    }
    changed
}

// ---- frozen SSA repair (whole-function scan, frontiers per definition) ----

/// The pass-manager-refactor-era SSA repair: whole-function broken-
/// definition scans (positions prebuilt per scan) and dominance frontiers
/// recomputed per reconstructed definition. Identical repairs to
/// [`repair_ssa`](crate::repair_ssa).
pub fn repair_ssa_pr2(func: &mut Function) -> usize {
    repair_ssa_with_pr2(func, &mut AnalysisManager::new())
}

/// [`repair_ssa_pr2`] against a shared [`AnalysisManager`]. Reconstruction only
/// inserts φs and rewrites operands — the block graph is untouched — so one
/// CFG + dominator-tree computation serves every repaired definition (the
/// uncached version recomputes both per definition), and both stay valid in
/// the cache for the caller. Instruction-sensitive analyses are dropped.
pub fn repair_ssa_with_pr2(func: &mut Function, am: &mut AnalysisManager) -> usize {
    let mut repaired = 0;
    // Each reconstruction inserts φs, which can themselves need inspection;
    // loop until clean.
    loop {
        let cfg = am.get::<Cfg>(func);
        let dt = am.get::<DomTree>(func);
        let Some(def) = find_broken_def_pr2(func, &cfg, &dt) else {
            break;
        };
        reconstruct_pr2(func, &cfg, &dt, def);
        am.invalidate_values();
        repaired += 1;
    }
    repaired
}

/// Finds one definition with a non-dominated use, if any.
fn find_broken_def_pr2(func: &Function, cfg: &Cfg, dt: &DomTree) -> Option<InstId> {
    let mut pos = vec![usize::MAX; func.inst_capacity()];
    for &b in cfg.rpo() {
        for (k, &id) in func.insts_of(b).iter().enumerate() {
            pos[id.index()] = k;
        }
    }
    for &b in cfg.rpo() {
        for &id in func.insts_of(b) {
            let inst = func.inst(id);
            if inst.opcode == Opcode::Phi {
                for (pred, val) in inst.phi_incoming() {
                    let Value::Inst(def) = val else { continue };
                    if !cfg.is_reachable(pred) {
                        continue;
                    }
                    if !dt.dominates(func.inst(def).block, pred) {
                        return Some(def);
                    }
                }
            } else {
                for &op in &inst.operands {
                    let Value::Inst(def) = op else { continue };
                    let db = func.inst(def).block;
                    let ok = if db == b {
                        pos[def.index()] < pos[id.index()]
                    } else {
                        dt.dominates(db, b)
                    };
                    if !ok {
                        return Some(def);
                    }
                }
            }
        }
    }
    None
}

/// Rebuilds SSA form for one definition by φ placement at the IDF of its
/// defining block.
fn reconstruct_pr2(func: &mut Function, cfg: &Cfg, dt: &DomTree, def: InstId) {
    let def_block = func.inst(def).block;
    let ty = func.inst(def).ty;
    let users = func.users_of(Value::Inst(def));

    let idf = dt.iterated_dominance_frontier(cfg, &[def_block]);
    let mut phi_at: HashMap<BlockId, InstId> = HashMap::new();
    for &b in &idf {
        if b == def_block {
            continue;
        }
        // φ operands are filled below once all φ sites exist.
        let phi = func.insert_inst_at(b, 0, InstData::new(Opcode::Phi, ty, vec![]));
        phi_at.insert(b, phi);
    }

    // The reaching definition at the *end* of `block`.
    let value_at = |_func: &Function, mut block: BlockId| -> Value {
        loop {
            if block == def_block {
                return Value::Inst(def);
            }
            if let Some(&phi) = phi_at.get(&block) {
                return Value::Inst(phi);
            }
            match dt.idom(block) {
                Some(up) => block = up,
                None => return Value::Undef(ty),
            }
        }
    };

    // Fill in φ operands.
    for (&b, &phi) in &phi_at {
        let mut preds: Vec<BlockId> = cfg.preds(b).to_vec();
        preds.sort();
        preds.dedup();
        let mut blocks = Vec::new();
        let mut vals = Vec::new();
        for p in preds {
            if !cfg.is_reachable(p) {
                continue;
            }
            blocks.push(p);
            vals.push(value_at(func, p));
        }
        let inst = func.inst_mut(phi);
        inst.phi_blocks = blocks;
        inst.operands = vals;
    }

    // Rewire the original uses.
    for u in users {
        if phi_at.values().any(|&p| p == u) {
            continue; // operands of the new φs are already correct
        }
        let ublock = func.inst(u).block;
        if func.inst(u).opcode == Opcode::Phi {
            let incoming: Vec<(usize, BlockId)> = func
                .inst(u)
                .phi_blocks
                .iter()
                .copied()
                .enumerate()
                .collect();
            for (k, pred) in incoming {
                if func.inst(u).operands[k] == Value::Inst(def) && !dt.dominates(def_block, pred) {
                    let v = value_at(func, pred);
                    func.inst_mut(u).operands[k] = v;
                }
            }
        } else {
            // A use in the defining block itself (after the def) stays.
            if ublock == def_block {
                continue;
            }
            if dt.dominates(def_block, ublock)
                && !dominated_through_phi_pr2(dt, &phi_at, def_block, ublock)
            {
                continue;
            }
            // Reaching definition at the start of the use's block: value at
            // the block itself if it hosts a φ, else at its idom.
            let v = if let Some(&phi) = phi_at.get(&ublock) {
                Value::Inst(phi)
            } else {
                match dt.idom(ublock) {
                    Some(up) => value_at(func, up),
                    None => Value::Undef(ty),
                }
            };
            let inst = func.inst_mut(u);
            for op in &mut inst.operands {
                if *op == Value::Inst(def) {
                    *op = v;
                }
            }
        }
    }
}

/// Whether a φ site sits strictly between `def_block` and `use_block` on the
/// dominator chain — in that case the use must read the φ, not the raw def.
fn dominated_through_phi_pr2(
    dt: &DomTree,
    phi_at: &HashMap<BlockId, InstId>,
    def_block: BlockId,
    use_block: BlockId,
) -> bool {
    let mut b = use_block;
    loop {
        if b == def_block {
            return false;
        }
        if phi_at.contains_key(&b) {
            return true;
        }
        match dt.idom(b) {
            Some(up) => b = up,
            None => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Dim, Type};

    #[test]
    fn pr2_baselines_match_modern_results() {
        let build = || {
            let mut f = Function::new("p", vec![], Type::I32);
            let e = f.entry();
            let mut b = FunctionBuilder::new(&mut f, e);
            let tid = b.thread_idx(Dim::X);
            let x = b.add(tid, b.const_i32(0)); // folds to tid
            let y = b.mul(x, b.const_i32(1)); // folds to tid
            let dead = b.sub(y, y); // folds to 0, then dead
            let _ = b.add(dead, b.const_i32(1)); // dead
            b.ret(Some(y));
            f
        };
        let mut old = build();
        let mut new = build();
        let ic_old = run_instcombine_pr2(&mut old);
        let ic_new = crate::run_instcombine(&mut new);
        assert_eq!(ic_old, ic_new);
        let dce_old = run_dce_pr2(&mut old);
        let dce_new = crate::run_dce(&mut new);
        assert_eq!(dce_old, dce_new);
        assert_eq!(old.to_string(), new.to_string());
    }
}
