//! Dead code elimination.
//!
//! One global use-count pass feeds a worklist: removing an instruction
//! decrements its operands' counts and re-enqueues definitions that hit
//! zero, so transitively dead chains fall without the round-based
//! whole-function rescans the seed implementation performed. The removed
//! *set* — the unique maximal set of side-effect-free unused instructions —
//! is identical either way.
//!
//! [`run_dce_scoped`] additionally restricts the *candidate* seeds to a
//! mutation window's dirty region (instructions in touched blocks, plus
//! touched definitions — which the `darm-ir` journal extends to
//! RAUW-reached users and the operand definitions of removed
//! instructions). On a function whose untouched remainder holds no dead
//! code — the invariant a fixpoint driver maintains by running the
//! whole-function pass once up front — the scoped result is identical to
//! the whole-function result.

use darm_ir::{DirtyDelta, Function, InstId, Value};

/// Removes instructions whose results are unused and that have no side
/// effects (stores, barriers, warp intrinsics and terminators are kept).
/// Returns the number of removed instructions.
pub fn run_dce(func: &mut Function) -> usize {
    run_dce_scoped(func, None)
}

/// [`run_dce`] with the candidate seeds restricted to `scope`'s dirty
/// region (`None`, or a saturated delta, means whole-function).
pub fn run_dce_scoped(func: &mut Function, scope: Option<&DirtyDelta>) -> usize {
    darm_ir::fault::point("transforms::dce");
    if scope.is_some_and(|d| d.is_clean()) {
        return 0; // nothing mutated since the last run: no new dead code
    }
    // Global use counts (multiset: an instruction using a value twice
    // contributes two), in one sequential sweep of the instruction arena —
    // a live instruction is exactly one that sits in a live block's list.
    // φ self-references do not keep a value alive.
    let cap = func.inst_capacity();
    let mut uses = vec![0u32; cap];
    for idx in 0..cap {
        let id = InstId::new(idx);
        if !func.is_inst_alive(id) {
            continue;
        }
        for &op in &func.inst(id).operands {
            if let Value::Inst(dep) = op {
                if dep != id {
                    uses[dep.index()] += 1;
                }
            }
        }
    }
    let mut work: Vec<InstId> = Vec::new();
    match scope {
        Some(delta) if !delta.is_saturated() => {
            let mut seen = vec![false; cap];
            for b in delta.blocks.iter() {
                if !func.is_block_alive(b) {
                    continue;
                }
                for &id in func.insts_of(b) {
                    if !seen[id.index()] {
                        seen[id.index()] = true;
                        work.push(id);
                    }
                }
            }
            for id in delta.insts.iter() {
                if func.is_inst_alive(id) && !seen[id.index()] {
                    seen[id.index()] = true;
                    work.push(id);
                }
            }
        }
        _ => {
            work.extend(
                (0..cap)
                    .map(InstId::new)
                    .filter(|&id| func.is_inst_alive(id)),
            );
        }
    }
    let mut removed = 0;
    while let Some(id) = work.pop() {
        if !func.is_inst_alive(id) {
            continue;
        }
        let inst = func.inst(id);
        if inst.opcode.has_side_effects() || uses[id.index()] > 0 {
            continue;
        }
        let ops = inst.operands.clone();
        func.remove_inst(id);
        removed += 1;
        for op in ops {
            if let Value::Inst(dep) = op {
                if dep != id {
                    uses[dep.index()] -= 1;
                    if uses[dep.index()] == 0 {
                        work.push(dep);
                    }
                }
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{AddrSpace, Dim, Type};

    #[test]
    fn removes_dead_chain_keeps_stores() {
        let mut f = Function::new("d", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let tid = b.thread_idx(Dim::X);
        let dead1 = b.add(tid, tid);
        let _dead2 = b.mul(dead1, dead1); // transitively dead
        let p = b.gep(Type::I32, b.param(0), tid);
        b.store(tid, p);
        b.ret(None);
        let n = run_dce(&mut f);
        assert_eq!(n, 2);
        verify_ssa(&f).unwrap();
        // tid, gep, store, ret survive
        assert_eq!(f.insts_of(e).len(), 4);
    }

    #[test]
    fn keeps_live_values() {
        let mut f = Function::new("l", vec![], Type::I32);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let x = b.add(b.const_i32(1), b.const_i32(2));
        b.ret(Some(x));
        assert_eq!(run_dce(&mut f), 0);
    }

    #[test]
    fn keeps_barriers_and_ballots() {
        let mut f = Function::new("sb", vec![], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        b.syncthreads();
        let _mask = b.ballot(Value::I1(true)); // result unused but side-effecting
        b.ret(None);
        use darm_ir::Value;
        assert_eq!(run_dce(&mut f), 0);
        assert_eq!(f.insts_of(e).len(), 3);
    }

    #[test]
    fn scoped_matches_whole_function_after_clean_baseline() {
        // Build, clean whole-function, mutate one block, then compare the
        // scoped run against a whole-function run on a twin.
        let build = || {
            let mut f = Function::new("s", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
            let e = f.entry();
            let mut b = FunctionBuilder::new(&mut f, e);
            let tid = b.thread_idx(Dim::X);
            let p = b.gep(Type::I32, b.param(0), tid);
            b.store(tid, p);
            b.ret(None);
            (f, tid)
        };
        let (mut f, tid) = build();
        run_dce(&mut f); // establish the no-dead-code invariant
        let cursor = f.journal_head();
        // Mutation: a dead chain in the entry block.
        let e = f.entry();
        let term = f.terminator(e).unwrap();
        let d1 = f.insert_inst_before(
            term,
            darm_ir::InstData::new(darm_ir::Opcode::Add, Type::I32, vec![tid, tid]),
        );
        f.insert_inst_before(
            term,
            darm_ir::InstData::new(
                darm_ir::Opcode::Mul,
                Type::I32,
                vec![Value::Inst(d1), Value::Inst(d1)],
            ),
        );
        let mut twin = f.clone();
        let delta = f.dirty_since(cursor);
        let n_scoped = run_dce_scoped(&mut f, Some(&delta));
        let n_whole = run_dce(&mut twin);
        assert_eq!(n_scoped, n_whole);
        assert_eq!(f.to_string(), twin.to_string());
    }
}
