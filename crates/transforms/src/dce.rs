//! Dead code elimination.

use darm_ir::{Function, InstId, Value};

/// Removes instructions whose results are unused and that have no side
/// effects (stores, barriers, warp intrinsics and terminators are kept).
/// Returns the number of removed instructions.
pub fn run_dce(func: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        // Recompute use counts each round; φ self-references do not keep a
        // value alive on their own, but we treat them conservatively.
        let mut used = vec![false; func.inst_capacity()];
        for b in func.block_ids() {
            for &id in func.insts_of(b) {
                for &op in &func.inst(id).operands {
                    if let Value::Inst(dep) = op {
                        if dep != id {
                            used[dep.index()] = true;
                        }
                    }
                }
            }
        }
        let mut dead: Vec<InstId> = Vec::new();
        for b in func.block_ids() {
            for &id in func.insts_of(b) {
                let inst = func.inst(id);
                if !inst.opcode.has_side_effects() && !used[id.index()] {
                    dead.push(id);
                }
            }
        }
        if dead.is_empty() {
            return removed;
        }
        for id in dead {
            func.remove_inst(id);
            removed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{AddrSpace, Dim, Type};

    #[test]
    fn removes_dead_chain_keeps_stores() {
        let mut f = Function::new("d", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let tid = b.thread_idx(Dim::X);
        let dead1 = b.add(tid, tid);
        let _dead2 = b.mul(dead1, dead1); // transitively dead
        let p = b.gep(Type::I32, b.param(0), tid);
        b.store(tid, p);
        b.ret(None);
        let n = run_dce(&mut f);
        assert_eq!(n, 2);
        verify_ssa(&f).unwrap();
        // tid, gep, store, ret survive
        assert_eq!(f.insts_of(e).len(), 4);
    }

    #[test]
    fn keeps_live_values() {
        let mut f = Function::new("l", vec![], Type::I32);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        let x = b.add(b.const_i32(1), b.const_i32(2));
        b.ret(Some(x));
        assert_eq!(run_dce(&mut f), 0);
    }

    #[test]
    fn keeps_barriers_and_ballots() {
        let mut f = Function::new("sb", vec![], Type::Void);
        let e = f.entry();
        let mut b = FunctionBuilder::new(&mut f, e);
        b.syncthreads();
        let _mask = b.ballot(Value::I1(true)); // result unused but side-effecting
        b.ret(None);
        use darm_ir::Value;
        assert_eq!(run_dce(&mut f), 0);
        assert_eq!(f.insts_of(e).len(), 3);
    }
}
