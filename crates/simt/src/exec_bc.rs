//! Execute loop for the flat register bytecode ([`crate::BytecodeKernel`]).
//!
//! Same machine as [`crate::exec`] — lockstep warps, per-warp IPDOM
//! reconvergence stack, one shared instruction budget — but the inner loop
//! is a single `match` on a dense [`Op`](crate::bytecode::Op) discriminant
//! per *warp* instruction:
//!
//! * operands are plain register-file indices (constants and parameters
//!   were materialized into dedicated slots at launch, so there is no
//!   operand-kind dispatch and no argument-array indirection);
//! * the register file is **slot-major** (`regs[slot * threads + thread]`),
//!   unlike the decoded engine's lane-major file: one warp op then streams
//!   through contiguous lanes of each operand, so the hot loop is
//!   sequential loads/stores instead of `n_slots`-strided ones;
//! * control transfers use the pre-patched resume pc on each op, so a
//!   taken `jump`/`br` continues straight in the dispatch loop; the stack
//!   is written only on divergence, reconvergence pops, and barriers —
//!   never per instruction;
//! * φ batches resolve through per-predecessor move tables: active lanes
//!   are bucketed by provenance once, then each bucket applies a flat
//!   `dst ← src` list;
//! * a fused [`Op::CmpBr`](crate::bytecode::Op::CmpBr) evaluates, charges,
//!   and branches in one dispatch, replicating the unfused pair's exact
//!   stats/budget/error ordering; the fused gep+memory ops
//!   ([`Op::GepLoad`](crate::bytecode::Op::GepLoad) /
//!   [`Op::GepStore`](crate::bytecode::Op::GepStore)) do the same in two
//!   phases, so a budget exhaustion still lands between the address
//!   computation and the access.
//!
//! Value semantics are the `*_eval` helpers shared with the decoded engine
//! (see [`crate::exec`]), so the tiers cannot drift apart; the
//! differential tests hold buffers, stats, and errors bit-identical.

use crate::bytecode::{BytecodeKernel, Op};
use crate::decoded::{BLOCK_ENTRY, NO_BLOCK, NO_DST};
use crate::exec::{ashr_eval, zext_sext_eval};
use crate::exec::{
    bin_f, bin_i, div_eval, fcmp_eval, fptosi_eval, gep_eval, icmp_eval, lshr_eval, mem_read_at,
    mem_write_at, select_eval, shl_eval, sitofp_eval, trunc_eval, un_f, validate_args, KernelArg,
    SimError, StackEntry, WarpState, WarpStatus,
};
use crate::mem::{encode_shared, ByteStore, RawVal};
use crate::stats::KernelStats;
use crate::timing::{bc_deps, TimingState};
use crate::{GpuConfig, LaunchConfig};
use darm_ir::{cost, Dim};

/// Runs a bytecode kernel over the launch geometry. Entry point for
/// [`crate::Gpu::launch_bytecode`].
pub(crate) fn launch(
    buffers: &mut Vec<ByteStore>,
    config: &GpuConfig,
    bk: &BytecodeKernel,
    cfg: &LaunchConfig,
    args: &[KernelArg],
) -> Result<KernelStats, SimError> {
    let arg_vals = validate_args(&bk.name, &bk.params, args, buffers.len())?;
    let mut stats = KernelStats {
        warp_size: config.warp_size,
        ..Default::default()
    };
    let mut budget = config.max_warp_instructions;
    let threads = cfg.threads_per_block() as usize;
    // Timing observer, allocated only when enabled — mirrors the decoded
    // engine so the `sim_*` fields stay bit-identical across tiers.
    let mut timing = config.timing.enabled.then(|| {
        let n_warps = cfg.threads_per_block().div_ceil(config.warp_size) as usize;
        TimingState::new(config.timing, n_warps, bk.n_slots as usize)
    });
    let n = bk.n_slots as usize;
    let prog = bk.program_slots as usize;
    // One flat slot-major register file (`regs[slot * threads + thread]`),
    // reused per block. The constant and parameter slots sit above the
    // program-writable prefix and no op ever writes them, so they are
    // materialized once here and only the prefix — which is exactly
    // `regs[..prog * threads]` — is re-initialized between blocks; from
    // then on every operand read is a plain register load.
    let mut regs = vec![RawVal::Undef; threads * n];
    for &(s, v) in &bk.consts {
        let base = s as usize * threads;
        regs[base..base + threads].fill(v);
    }
    for &(s, pi) in &bk.param_slots {
        let base = s as usize * threads;
        regs[base..base + threads].fill(arg_vals[pi as usize]);
    }
    let mut first_block = true;
    for by in 0..cfg.grid.1 {
        for bx in 0..cfg.grid.0 {
            if !first_block {
                regs[..threads * prog].fill(RawVal::Undef);
            }
            first_block = false;
            let mut engine = BcEngine {
                buffers,
                warp_size: config.warp_size,
                bk,
                launch: cfg,
                block_idx: (bx, by),
                shared: ByteStore::with_len(bk.shared_size as usize),
                stats: KernelStats {
                    warp_size: config.warp_size,
                    ..Default::default()
                },
                budget: &mut budget,
                threads,
                lane_addrs: Vec::new(),
                gep_vals: Vec::new(),
                scratch: Vec::new(),
                buckets: Vec::new(),
                stage: Vec::new(),
                timing: timing.as_mut(),
            };
            engine.run(&mut regs)?;
            let mut s = engine.stats;
            if let Some(t) = timing.as_mut() {
                t.flush_block(&mut s);
            }
            stats.merge(&s);
        }
    }
    Ok(stats)
}

/// Per-thread-block execution state for the bytecode engine.
struct BcEngine<'a> {
    buffers: &'a mut Vec<ByteStore>,
    warp_size: u32,
    bk: &'a BytecodeKernel,
    launch: &'a LaunchConfig,
    block_idx: (u32, u32),
    shared: ByteStore,
    stats: KernelStats,
    budget: &'a mut u64,
    /// Threads per block — the slot-major register-file stride.
    threads: usize,
    /// Scratch for per-lane memory addresses of the current instruction.
    lane_addrs: Vec<u64>,
    /// Scratch for per-lane gep results of a fused gep+mem op whose
    /// address register write was elided.
    gep_vals: Vec<RawVal>,
    /// Scratch for the coalescing / bank-conflict model.
    scratch: Vec<u64>,
    /// Scratch for φ resolution: `(pred block, lane mask)` buckets.
    buckets: Vec<(u32, u64)>,
    /// Scratch for the staged (overlapping) φ move path.
    stage: Vec<RawVal>,
    /// Cycle-level timing observer ([`crate::timing`]); `None` unless
    /// [`crate::TimingConfig::enabled`] — pure observation either way.
    timing: Option<&'a mut TimingState>,
}

impl<'a> BcEngine<'a> {
    #[allow(clippy::needless_range_loop)] // indexing sidesteps a double &mut borrow
    fn run(&mut self, regs: &mut [RawVal]) -> Result<(), SimError> {
        let threads = self.launch.threads_per_block();
        let ws = self.warp_size;
        let n_warps = threads.div_ceil(ws);
        let entry_pc = self.bk.blocks[self.bk.entry as usize].entry_pc;

        let mut warps: Vec<WarpState> = (0..n_warps)
            .map(|w| {
                let base = w * ws;
                let lanes = ws.min(threads - base);
                let mask = if lanes == 64 {
                    u64::MAX
                } else {
                    (1u64 << lanes) - 1
                };
                WarpState {
                    stack: vec![StackEntry {
                        block: self.bk.entry,
                        inst_idx: entry_pc,
                        rpc: NO_BLOCK,
                        mask,
                    }],
                    prev: vec![NO_BLOCK; ws as usize],
                    status: WarpStatus::Running,
                    base_thread: base,
                }
            })
            .collect();

        loop {
            let mut any_running = false;
            for w in 0..warps.len() {
                if warps[w].status == WarpStatus::Running {
                    any_running = true;
                    self.run_warp(&mut warps[w], regs)?;
                }
            }
            let done = warps
                .iter()
                .filter(|w| w.status == WarpStatus::Done)
                .count();
            let waiting = warps
                .iter()
                .filter(|w| w.status == WarpStatus::AtBarrier)
                .count();
            if done == warps.len() {
                return Ok(());
            }
            if waiting > 0 && done + waiting == warps.len() {
                if done > 0 {
                    return Err(SimError::BarrierDeadlock(format!(
                        "{done} warps finished while {waiting} wait at a barrier"
                    )));
                }
                for w in &mut warps {
                    w.status = WarpStatus::Running;
                }
                if let Some(t) = self.timing.as_deref_mut() {
                    t.barrier_release();
                }
            } else if !any_running {
                return Err(SimError::BarrierDeadlock("no runnable warps".to_string()));
            }
        }
    }

    /// Runs one warp until it finishes, reaches a barrier, or diverges into
    /// a state handled on the next scheduler pass.
    #[allow(clippy::too_many_lines)]
    #[allow(unused_assignments)] // flush! resets are dead at return sites
    fn run_warp(&mut self, warp: &mut WarpState, regs: &mut [RawVal]) -> Result<(), SimError> {
        let bk = self.bk;
        // Slot-major stride: operand `s` of thread `t` lives at
        // `regs[s * nt + t]`, so a warp op walks `wb + lane` contiguously.
        let nt = self.threads;
        let wb = warp.base_thread as usize;
        // Warp index within the block, for the timing observer.
        let w_idx = (warp.base_thread / self.warp_size) as usize;
        // Hot counters accumulate in locals and flush to `self` only at
        // suspension points (`flush!`). Error returns skip the flush on
        // purpose: stats are discarded on `Err` and the launch aborts, so
        // neither the counters nor the budget remain observable.
        let mut l_warp_insts = 0u64;
        let mut l_thread_insts = 0u64;
        let mut l_cycles = 0u64;
        let mut l_alu_issues = 0u64;
        let mut l_alu_active = 0u64;
        let mut l_budget = *self.budget;
        macro_rules! flush {
            () => {{
                self.stats.warp_instructions += l_warp_insts;
                self.stats.thread_instructions += l_thread_insts;
                self.stats.cycles += l_cycles;
                self.stats.alu_issues += l_alu_issues;
                self.stats.alu_active_lanes += l_alu_active;
                l_warp_insts = 0;
                l_thread_insts = 0;
                l_cycles = 0;
                l_alu_issues = 0;
                l_alu_active = 0;
                *self.budget = l_budget;
            }};
        }
        'outer: loop {
            // Pop entries that already sit at their reconvergence point.
            while let Some(top) = warp.stack.last() {
                if top.block == top.rpc {
                    warp.stack.pop();
                    if let Some(t) = self.timing.as_deref_mut() {
                        t.frame_pop(w_idx);
                    }
                } else {
                    break;
                }
            }
            let Some(&top) = warp.stack.last() else {
                warp.status = WarpStatus::Done;
                flush!();
                return Ok(());
            };
            let mask = top.mask;
            let active = mask.count_ones() as u64;
            // `cur_block`/`pc` live in locals; the stack entry is written
            // back only at suspension points (divergence, pop, barrier).
            let mut cur_block = top.block;
            let mut pc = top.inst_idx;
            if pc == BLOCK_ENTRY {
                self.run_phis(warp, cur_block, mask, regs)?;
                pc = bk.blocks[cur_block as usize].first;
            }

            // A dense mask (every active lane a contiguous prefix — full
            // warps, partial tail warps, uniform control flow) iterates as
            // a plain counted loop, which the optimizer strength-reduces
            // and unrolls; sparse masks walk the set bits.
            let dense_lanes = if mask & mask.wrapping_add(1) == 0 {
                mask.count_ones()
            } else {
                0
            };
            // Iterates the active lanes, binding the lane index (the
            // offset to add to a slot's `base + wb`).
            macro_rules! lanes {
                (|$i:ident| $body:expr) => {{
                    if dense_lanes != 0 {
                        for lane in 0..dense_lanes as usize {
                            let $i = lane;
                            $body
                        }
                    } else {
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros();
                            m &= m - 1;
                            let $i = lane as usize;
                            $body
                        }
                    }
                }};
            }
            macro_rules! map2 {
                ($d:expr, $a:expr, $b:expr, $f:expr) => {{
                    let db = $d as usize * nt + wb;
                    let ab = $a as usize * nt + wb;
                    let bb = $b as usize * nt + wb;
                    lanes!(|i| regs[db + i] = ($f)(regs[ab + i], regs[bb + i]));
                }};
            }
            macro_rules! map1 {
                ($d:expr, $a:expr, $f:expr) => {{
                    let db = $d as usize * nt + wb;
                    let ab = $a as usize * nt + wb;
                    lanes!(|i| regs[db + i] = ($f)(regs[ab + i]));
                }};
            }
            // Charge + budget + advance for a plain ALU-class op (mirrors
            // the decoded engine's charge() default arm + budget sequence).
            // `$op` feeds the timing observer's scoreboard deps.
            macro_rules! charge_alu {
                ($op:expr) => {{
                    l_warp_insts += 1;
                    l_thread_insts += active;
                    l_cycles += bk.lats[pc as usize];
                    l_alu_issues += 1;
                    l_alu_active += active;
                    if let Some(t) = self.timing.as_deref_mut() {
                        let (dst, srcs) = bc_deps(&$op);
                        t.issue(w_idx, active as u32, bk.lats[pc as usize], dst, srcs);
                    }
                    if l_budget == 0 {
                        return Err(SimError::StepLimit);
                    }
                    l_budget -= 1;
                    pc += 1;
                }};
            }
            // Same for a memory op: the cost model reads `lane_addrs` and
            // charges `self.stats` directly, so the locals flush first.
            // `$d`/`$srcs` are the scoreboard dst/src slots; `$hint` is an
            // explicit readiness floor (the gep half of a fused op, whose
            // address register may be elided).
            macro_rules! charge_mem {
                ($d:expr, $srcs:expr, $hint:expr) => {{
                    l_warp_insts += 1;
                    l_thread_insts += active;
                    flush!();
                    self.stats
                        .charge_mem_access(&self.lane_addrs, &mut self.scratch);
                    if let Some(t) = self.timing.as_deref_mut() {
                        t.mem_issue(
                            w_idx,
                            active as u32,
                            $d,
                            $srcs,
                            $hint,
                            &self.lane_addrs,
                            &mut self.scratch,
                        );
                    }
                    if l_budget == 0 {
                        return Err(SimError::StepLimit);
                    }
                    l_budget -= 1;
                    pc += 1;
                }};
            }
            // One control-flow warp instruction (`br`/`jump`/`ret`) — the
            // decoded engine's charge() control arm.
            macro_rules! charge_ctl {
                ($op:expr) => {{
                    l_warp_insts += 1;
                    l_thread_insts += active;
                    l_cycles += bk.lats[pc as usize];
                    if let Some(t) = self.timing.as_deref_mut() {
                        let (dst, srcs) = bc_deps(&$op);
                        t.issue(w_idx, active as u32, bk.lats[pc as usize], dst, srcs);
                    }
                }};
            }
            // Record per-lane provenance before leaving a block (skipped
            // entirely for φ-free kernels — nothing ever reads it).
            macro_rules! record_prev {
                () => {{
                    if bk.track_prev {
                        let mut m = mask;
                        while m != 0 {
                            let lane = m.trailing_zeros();
                            m &= m - 1;
                            warp.prev[lane as usize] = cur_block;
                        }
                    }
                }};
            }

            loop {
                let op = bk.code[pc as usize];
                match op {
                    // ---- control ----
                    Op::Ret => {
                        charge_ctl!(op);
                        record_prev!();
                        warp.stack.pop();
                        if let Some(t) = self.timing.as_deref_mut() {
                            t.frame_pop(w_idx);
                        }
                        continue 'outer;
                    }
                    Op::Jump { t_block, t_pc } => {
                        charge_ctl!(op);
                        record_prev!();
                        if t_block == top.rpc {
                            warp.stack.pop();
                            if let Some(t) = self.timing.as_deref_mut() {
                                t.frame_pop(w_idx);
                            }
                            continue 'outer;
                        }
                        cur_block = t_block;
                        if t_pc == BLOCK_ENTRY {
                            self.run_phis(warp, cur_block, mask, regs)?;
                            pc = bk.blocks[cur_block as usize].first;
                        } else {
                            pc = t_pc;
                        }
                    }
                    Op::Br {
                        c,
                        t_block,
                        t_pc,
                        e_block,
                        e_pc,
                    } => {
                        charge_ctl!(op);
                        record_prev!();
                        let cb = c as usize * nt + wb;
                        let mut m_true = 0u64;
                        let mut m_false = 0u64;
                        lanes!(|i| {
                            match regs[cb + i] {
                                RawVal::I1(true) => m_true |= 1u64 << i,
                                RawVal::I1(false) => m_false |= 1u64 << i,
                                _ => {
                                    return Err(SimError::UndefValue(format!(
                                        "branch condition in block {}",
                                        bk.block_name(cur_block)
                                    )))
                                }
                            }
                        });
                        if m_false == 0 || m_true == 0 {
                            let (tb, tp) = if m_false == 0 {
                                (t_block, t_pc)
                            } else {
                                (e_block, e_pc)
                            };
                            if tb == top.rpc {
                                warp.stack.pop();
                                if let Some(t) = self.timing.as_deref_mut() {
                                    t.frame_pop(w_idx);
                                }
                                continue 'outer;
                            }
                            cur_block = tb;
                            if tp == BLOCK_ENTRY {
                                self.run_phis(warp, cur_block, mask, regs)?;
                                pc = bk.blocks[cur_block as usize].first;
                            } else {
                                pc = tp;
                            }
                        } else {
                            self.diverge(warp, cur_block, t_block, e_block, m_true, m_false)?;
                            continue 'outer;
                        }
                    }
                    Op::CmpBr {
                        p,
                        d,
                        a,
                        b,
                        t_block,
                        t_pc,
                        e_block,
                        e_pc,
                    } => {
                        let ab = a as usize * nt + wb;
                        let bb = b as usize * nt + wb;
                        let db = d as usize * nt + wb;
                        let mut m_true = 0u64;
                        let mut m_false = 0u64;
                        let mut m_undef = 0u64;
                        lanes!(|i| {
                            let v = icmp_eval(p, regs[ab + i], regs[bb + i]);
                            if d != NO_DST {
                                regs[db + i] = v;
                            }
                            match v {
                                RawVal::I1(true) => m_true |= 1u64 << i,
                                RawVal::I1(false) => m_false |= 1u64 << i,
                                _ => m_undef |= 1u64 << i,
                            }
                        });
                        // Exactly the unfused pair's accounting: one ALU
                        // issue + one budget unit for the compare, one
                        // control issue for the branch, with the budget
                        // check between the two (StepLimit outranks the
                        // undefined-condition error, as in the decoded
                        // engine).
                        l_warp_insts += 2;
                        l_thread_insts += 2 * active;
                        l_cycles += bk.lats[pc as usize];
                        l_alu_issues += 1;
                        l_alu_active += active;
                        if let Some(t) = self.timing.as_deref_mut() {
                            // bk.lats folds both halves' latency into one
                            // entry; the observer needs the unfused pair —
                            // the compare produces `d`, the branch waits on
                            // it — so each half is issued at its own cost.
                            let rdy =
                                t.issue(w_idx, active as u32, cost::ALU_LATENCY, d, [a, b, NO_DST]);
                            t.issue_dep(w_idx, active as u32, cost::BRANCH_LATENCY, NO_DST, rdy);
                        }
                        if l_budget == 0 {
                            return Err(SimError::StepLimit);
                        }
                        l_budget -= 1;
                        record_prev!();
                        if m_undef != 0 {
                            return Err(SimError::UndefValue(format!(
                                "branch condition in block {}",
                                bk.block_name(cur_block)
                            )));
                        }
                        if m_false == 0 || m_true == 0 {
                            let (tb, tp) = if m_false == 0 {
                                (t_block, t_pc)
                            } else {
                                (e_block, e_pc)
                            };
                            if tb == top.rpc {
                                warp.stack.pop();
                                if let Some(t) = self.timing.as_deref_mut() {
                                    t.frame_pop(w_idx);
                                }
                                continue 'outer;
                            }
                            cur_block = tb;
                            if tp == BLOCK_ENTRY {
                                self.run_phis(warp, cur_block, mask, regs)?;
                                pc = bk.blocks[cur_block as usize].first;
                            } else {
                                pc = tp;
                            }
                        } else {
                            self.diverge(warp, cur_block, t_block, e_block, m_true, m_false)?;
                            continue 'outer;
                        }
                    }
                    Op::Sync => {
                        self.stats.barriers += 1;
                        l_cycles += 1;
                        if let Some(t) = self.timing.as_deref_mut() {
                            t.barrier_issue(w_idx);
                        }
                        flush!();
                        let cur = warp.stack.last_mut().expect("entry exists");
                        cur.block = cur_block;
                        cur.inst_idx = pc + 1;
                        warp.status = WarpStatus::AtBarrier;
                        return Ok(());
                    }
                    // ---- plain ops ----
                    Op::Add { d, a, b } => {
                        map2!(d, a, b, |x, y| bin_i(x, y, |x, y| x.wrapping_add(y)));
                        charge_alu!(op);
                    }
                    Op::Sub { d, a, b } => {
                        map2!(d, a, b, |x, y| bin_i(x, y, |x, y| x.wrapping_sub(y)));
                        charge_alu!(op);
                    }
                    Op::Mul { d, a, b } => {
                        map2!(d, a, b, |x, y| bin_i(x, y, |x, y| x.wrapping_mul(y)));
                        charge_alu!(op);
                    }
                    Op::And { d, a, b } => {
                        map2!(d, a, b, |x, y| bin_i(x, y, |x, y| x & y));
                        charge_alu!(op);
                    }
                    Op::Or { d, a, b } => {
                        map2!(d, a, b, |x, y| bin_i(x, y, |x, y| x | y));
                        charge_alu!(op);
                    }
                    Op::Xor { d, a, b } => {
                        map2!(d, a, b, |x, y| bin_i(x, y, |x, y| x ^ y));
                        charge_alu!(op);
                    }
                    Op::Shl { d, a, b } => {
                        map2!(d, a, b, shl_eval);
                        charge_alu!(op);
                    }
                    Op::LShr { d, a, b } => {
                        map2!(d, a, b, lshr_eval);
                        charge_alu!(op);
                    }
                    Op::AShr { d, a, b } => {
                        map2!(d, a, b, ashr_eval);
                        charge_alu!(op);
                    }
                    Op::Div {
                        op: opc,
                        ty,
                        d,
                        a,
                        b,
                    } => {
                        let db = d as usize * nt + wb;
                        let ab = a as usize * nt + wb;
                        let bb = b as usize * nt + wb;
                        lanes!(|i| {
                            regs[db + i] = div_eval(opc, ty, regs[ab + i], regs[bb + i])?;
                        });
                        charge_alu!(op);
                    }
                    Op::FAdd { d, a, b } => {
                        map2!(d, a, b, |x, y| bin_f(x, y, |x, y| x + y));
                        charge_alu!(op);
                    }
                    Op::FSub { d, a, b } => {
                        map2!(d, a, b, |x, y| bin_f(x, y, |x, y| x - y));
                        charge_alu!(op);
                    }
                    Op::FMul { d, a, b } => {
                        map2!(d, a, b, |x, y| bin_f(x, y, |x, y| x * y));
                        charge_alu!(op);
                    }
                    Op::FDiv { d, a, b } => {
                        map2!(d, a, b, |x, y| bin_f(x, y, |x, y| x / y));
                        charge_alu!(op);
                    }
                    Op::FSqrt { d, a } => {
                        map1!(d, a, |x| un_f(x, f32::sqrt));
                        charge_alu!(op);
                    }
                    Op::FAbs { d, a } => {
                        map1!(d, a, |x| un_f(x, f32::abs));
                        charge_alu!(op);
                    }
                    Op::FNeg { d, a } => {
                        map1!(d, a, |x| un_f(x, |v| -v));
                        charge_alu!(op);
                    }
                    Op::FExp { d, a } => {
                        map1!(d, a, |x| un_f(x, f32::exp));
                        charge_alu!(op);
                    }
                    Op::Icmp { p, d, a, b } => {
                        map2!(d, a, b, |x, y| icmp_eval(p, x, y));
                        charge_alu!(op);
                    }
                    Op::Fcmp { p, d, a, b } => {
                        map2!(d, a, b, |x, y| fcmp_eval(p, x, y));
                        charge_alu!(op);
                    }
                    Op::Select { d, c, a, b } => {
                        let db = d as usize * nt + wb;
                        let cb = c as usize * nt + wb;
                        let ab = a as usize * nt + wb;
                        let bb = b as usize * nt + wb;
                        lanes!(|i| {
                            regs[db + i] = select_eval(regs[cb + i], regs[ab + i], regs[bb + i]);
                        });
                        charge_alu!(op);
                    }
                    Op::ZextSext { zext, ty, d, a } => {
                        map1!(d, a, |x| zext_sext_eval(zext, ty, x));
                        charge_alu!(op);
                    }
                    Op::Trunc { ty, d, a } => {
                        map1!(d, a, |x| trunc_eval(ty, x));
                        charge_alu!(op);
                    }
                    Op::SiToFp { d, a } => {
                        map1!(d, a, sitofp_eval);
                        charge_alu!(op);
                    }
                    Op::FpToSi { ty, d, a } => {
                        map1!(d, a, |x| fptosi_eval(ty, x));
                        charge_alu!(op);
                    }
                    Op::Gep { elem, d, a, b } => {
                        map2!(d, a, b, |x, y| gep_eval(elem, x, y));
                        charge_alu!(op);
                    }
                    Op::Load { ty, d, a } => {
                        self.lane_addrs.clear();
                        let db = d as usize * nt + wb;
                        let ab = a as usize * nt + wb;
                        lanes!(|i| {
                            let RawVal::Ptr(addr) = regs[ab + i] else {
                                return Err(SimError::UndefValue("load address".into()));
                            };
                            self.lane_addrs.push(addr);
                            regs[db + i] = mem_read_at(self.buffers, &self.shared, ty, addr)?;
                        });
                        charge_mem!(d, [a, NO_DST, NO_DST], 0);
                    }
                    Op::Store { v, a } => {
                        self.lane_addrs.clear();
                        let vb = v as usize * nt + wb;
                        let ab = a as usize * nt + wb;
                        lanes!(|i| {
                            let val = regs[vb + i];
                            let RawVal::Ptr(addr) = regs[ab + i] else {
                                return Err(SimError::UndefValue("store address".into()));
                            };
                            if matches!(val, RawVal::Undef) {
                                return Err(SimError::UndefValue("stored value".into()));
                            }
                            self.lane_addrs.push(addr);
                            mem_write_at(self.buffers, &mut self.shared, addr, val)?;
                        });
                        charge_mem!(NO_DST, [v, a, NO_DST], 0);
                    }
                    Op::GepLoad {
                        elem,
                        gd,
                        ga,
                        gb,
                        ty,
                        d,
                    } => {
                        // Phase 1 — the gep half: compute every lane's
                        // address (writing the register only when something
                        // else reads it) and charge exactly as the unfused
                        // `Gep`, so a StepLimit fires before any memory
                        // traffic, as it would unfused.
                        let gab = ga as usize * nt + wb;
                        let gbb = gb as usize * nt + wb;
                        let gdb = gd as usize * nt + wb;
                        self.gep_vals.clear();
                        lanes!(|i| {
                            let p = gep_eval(elem, regs[gab + i], regs[gbb + i]);
                            if gd != NO_DST {
                                regs[gdb + i] = p;
                            }
                            self.gep_vals.push(p);
                        });
                        l_warp_insts += 1;
                        l_thread_insts += active;
                        l_cycles += bk.lats[pc as usize];
                        l_alu_issues += 1;
                        l_alu_active += active;
                        // The fused op's latency table entry covers only the
                        // gep half; the address register may be elided, so
                        // its readiness travels by hint to the load half.
                        let mut gep_ready = 0u64;
                        if let Some(t) = self.timing.as_deref_mut() {
                            gep_ready = t.issue(
                                w_idx,
                                active as u32,
                                bk.lats[pc as usize],
                                gd,
                                [ga, gb, NO_DST],
                            );
                        }
                        if l_budget == 0 {
                            return Err(SimError::StepLimit);
                        }
                        l_budget -= 1;
                        // Phase 2 — the load half, addresses from the
                        // staged per-lane values.
                        self.lane_addrs.clear();
                        let db = d as usize * nt + wb;
                        let mut k = 0;
                        lanes!(|i| {
                            let RawVal::Ptr(addr) = self.gep_vals[k] else {
                                return Err(SimError::UndefValue("load address".into()));
                            };
                            k += 1;
                            self.lane_addrs.push(addr);
                            regs[db + i] = mem_read_at(self.buffers, &self.shared, ty, addr)?;
                        });
                        charge_mem!(d, [NO_DST, NO_DST, NO_DST], gep_ready);
                    }
                    Op::GepStore {
                        elem,
                        gd,
                        ga,
                        gb,
                        v,
                    } => {
                        let gab = ga as usize * nt + wb;
                        let gbb = gb as usize * nt + wb;
                        let gdb = gd as usize * nt + wb;
                        self.gep_vals.clear();
                        lanes!(|i| {
                            let p = gep_eval(elem, regs[gab + i], regs[gbb + i]);
                            if gd != NO_DST {
                                regs[gdb + i] = p;
                            }
                            self.gep_vals.push(p);
                        });
                        l_warp_insts += 1;
                        l_thread_insts += active;
                        l_cycles += bk.lats[pc as usize];
                        l_alu_issues += 1;
                        l_alu_active += active;
                        let mut gep_ready = 0u64;
                        if let Some(t) = self.timing.as_deref_mut() {
                            gep_ready = t.issue(
                                w_idx,
                                active as u32,
                                bk.lats[pc as usize],
                                gd,
                                [ga, gb, NO_DST],
                            );
                        }
                        if l_budget == 0 {
                            return Err(SimError::StepLimit);
                        }
                        l_budget -= 1;
                        self.lane_addrs.clear();
                        let vb = v as usize * nt + wb;
                        let mut k = 0;
                        lanes!(|i| {
                            let val = regs[vb + i];
                            let RawVal::Ptr(addr) = self.gep_vals[k] else {
                                return Err(SimError::UndefValue("store address".into()));
                            };
                            k += 1;
                            if matches!(val, RawVal::Undef) {
                                return Err(SimError::UndefValue("stored value".into()));
                            }
                            self.lane_addrs.push(addr);
                            mem_write_at(self.buffers, &mut self.shared, addr, val)?;
                        });
                        charge_mem!(NO_DST, [v, NO_DST, NO_DST], gep_ready);
                    }
                    Op::ThreadIdx { dim, d } => {
                        let db = d as usize * nt + wb;
                        let bx = self.launch.block.0;
                        lanes!(|i| {
                            let t = (wb + i) as u32;
                            let (tx, ty) = (t % bx, t / bx);
                            regs[db + i] = RawVal::I32(if dim == Dim::X { tx } else { ty } as i32);
                        });
                        charge_alu!(op);
                    }
                    Op::BlockIdx { dim, d } => {
                        let db = d as usize * nt + wb;
                        let v = RawVal::I32(if dim == Dim::X {
                            self.block_idx.0
                        } else {
                            self.block_idx.1
                        } as i32);
                        lanes!(|i| regs[db + i] = v);
                        charge_alu!(op);
                    }
                    Op::BlockDim { dim, d } => {
                        let db = d as usize * nt + wb;
                        let v = RawVal::I32(if dim == Dim::X {
                            self.launch.block.0
                        } else {
                            self.launch.block.1
                        } as i32);
                        lanes!(|i| regs[db + i] = v);
                        charge_alu!(op);
                    }
                    Op::GridDim { dim, d } => {
                        let db = d as usize * nt + wb;
                        let v = RawVal::I32(if dim == Dim::X {
                            self.launch.grid.0
                        } else {
                            self.launch.grid.1
                        } as i32);
                        lanes!(|i| regs[db + i] = v);
                        charge_alu!(op);
                    }
                    Op::SharedBase { off, d } => {
                        let db = d as usize * nt + wb;
                        let v = RawVal::Ptr(encode_shared(off));
                        lanes!(|i| regs[db + i] = v);
                        charge_alu!(op);
                    }
                    Op::Ballot { d, a } => {
                        // The one warp-wide operation: all active lanes
                        // receive the mask of lanes whose predicate holds.
                        let db = d as usize * nt + wb;
                        let ab = a as usize * nt + wb;
                        let mut ballot = 0u64;
                        lanes!(|i| {
                            if let RawVal::I1(true) = regs[ab + i] {
                                ballot |= 1u64 << i;
                            }
                        });
                        let v = RawVal::I64(ballot as i64);
                        lanes!(|i| regs[db + i] = v);
                        charge_alu!(op);
                    }
                }
            }
        }
    }

    /// Pushes the divergent-branch stack frame: the current entry becomes
    /// the reconvergence continuation, then the else and then arms (then
    /// on top, so it executes first) — identical to the decoded engine.
    fn diverge(
        &mut self,
        warp: &mut WarpState,
        cur_block: u32,
        t_block: u32,
        e_block: u32,
        m_true: u64,
        m_false: u64,
    ) -> Result<(), SimError> {
        let bk = self.bk;
        let rpc = bk.blocks[cur_block as usize].ipdom;
        if rpc == NO_BLOCK {
            return Err(SimError::MissingIpdom(bk.block_name(cur_block).to_string()));
        }
        let cur = warp.stack.last_mut().expect("entry exists");
        cur.block = rpc;
        cur.inst_idx = bk.blocks[rpc as usize].entry_pc;
        warp.stack.push(StackEntry {
            block: e_block,
            inst_idx: bk.blocks[e_block as usize].entry_pc,
            rpc,
            mask: m_false,
        });
        warp.stack.push(StackEntry {
            block: t_block,
            inst_idx: bk.blocks[t_block as usize].entry_pc,
            rpc,
            mask: m_true,
        });
        if let Some(t) = self.timing.as_deref_mut() {
            let w = (warp.base_thread / self.warp_size) as usize;
            t.diverge(w, rpc);
        }
        Ok(())
    }

    /// Resolves a block's φ batch for the active lanes: bucket lanes by
    /// predecessor, then apply each bucket's flat move list. Falls back to
    /// [`BcEngine::phi_error`] on any defect so the raised error matches
    /// the decoded engine exactly.
    fn run_phis(
        &mut self,
        warp: &mut WarpState,
        block: u32,
        mask: u64,
        regs: &mut [RawVal],
    ) -> Result<(), SimError> {
        let bk = self.bk;
        let nt = self.threads;
        let blk = bk.blocks[block as usize];
        if blk.phi_start == blk.phi_end {
            return Ok(());
        }
        let edges = &bk.phi_edges[blk.phi_start as usize..blk.phi_end as usize];

        // Bucket active lanes by provenance, lane-ascending.
        let mut buckets = std::mem::take(&mut self.buckets);
        buckets.clear();
        let mut bad = false;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros();
            m &= m - 1;
            let pred = warp.prev[lane as usize];
            bad |= pred == NO_BLOCK;
            match buckets.iter_mut().find(|(p, _)| *p == pred) {
                Some((_, bm)) => *bm |= 1 << lane,
                None => buckets.push((pred, 1 << lane)),
            }
        }
        if !bad {
            for &(pred, _) in &buckets {
                match edges.iter().find(|e| e.pred == pred) {
                    Some(e) if e.complete => {}
                    _ => {
                        bad = true;
                        break;
                    }
                }
            }
        }
        if bad {
            return Err(self.phi_error(warp, block, mask));
        }

        // All edges validated: apply the moves. φ writes of one lane are
        // never read by another (each lane reads its own column), so
        // bucket order does not matter; within a lane, the staged path
        // preserves read-before-write when a φ feeds another φ.
        for &(pred, bmask) in &buckets {
            let e = edges.iter().find(|e| e.pred == pred).expect("validated");
            let moves = &bk.phi_moves[e.m_start as usize..e.m_end as usize];
            if blk.phi_overlap {
                let mut m = bmask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    let t = (warp.base_thread + lane) as usize;
                    self.stage.clear();
                    self.stage
                        .extend(moves.iter().map(|&(_, s)| regs[s as usize * nt + t]));
                    for (&(d, _), &v) in moves.iter().zip(self.stage.iter()) {
                        regs[d as usize * nt + t] = v;
                    }
                }
            } else {
                // Move-major: each move streams contiguous lanes of its
                // source column into its destination column.
                for &(d, s) in moves {
                    let db = d as usize * nt;
                    let sb = s as usize * nt;
                    let mut m = bmask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let t = (warp.base_thread + lane) as usize;
                        regs[db + t] = regs[sb + t];
                    }
                }
            }
        }
        // Timing: φs cost nothing but propagate scoreboard readiness. A
        // complete edge lists one move per φ in φ order, so `moves[k]` is φ
        // `k` on every bucket; each φ's readiness is the max over the
        // taken incomings, staged so that a φ sourcing another φ of the
        // same batch reads the pre-batch scoreboard (matching the staged
        // value semantics above).
        if let Some(t) = self.timing.as_deref_mut() {
            let w = (warp.base_thread / self.warp_size) as usize;
            t.phi_begin();
            let first = edges
                .iter()
                .find(|e| e.pred == buckets[0].0)
                .expect("validated");
            let n_phis = (first.m_end - first.m_start) as usize;
            for k in 0..n_phis {
                let mut ready = 0u64;
                let mut dst = 0u32;
                for &(pred, _) in &buckets {
                    let e = edges.iter().find(|e| e.pred == pred).expect("validated");
                    let (d, s) = bk.phi_moves[e.m_start as usize + k];
                    dst = d;
                    ready = ready.max(t.reg_ready(w, s));
                }
                t.phi_stage(dst, ready);
            }
            t.phi_commit(w);
        }
        self.buckets = buckets;
        Ok(())
    }

    /// Reconstructs the exact error the decoded engine raises for a
    /// defective φ batch, replicating its φ-major, lane-minor scan order
    /// (error path only — never taken by valid kernels).
    fn phi_error(&self, warp: &WarpState, block: u32, mask: u64) -> SimError {
        let bk = self.bk;
        let blk = bk.blocks[block as usize];
        let edges = &bk.phi_edges[blk.phi_start as usize..blk.phi_end as usize];
        let max_k = bk
            .phi_missing
            .iter()
            .filter(|&&(b, _, _)| b == block)
            .map(|&(_, k, _)| k)
            .max()
            .unwrap_or(0);
        for k in 0..=max_k {
            let mut m = mask;
            while m != 0 {
                let lane = m.trailing_zeros();
                m &= m - 1;
                let pred = warp.prev[lane as usize];
                if pred == NO_BLOCK {
                    return SimError::UndefValue(format!(
                        "phi in block {} executed with no predecessor",
                        bk.block_name(block)
                    ));
                }
                let lacks = !edges.iter().any(|e| e.pred == pred)
                    || bk
                        .phi_missing
                        .iter()
                        .any(|&(b, k2, p)| b == block && k2 == k && p == pred);
                if lacks {
                    return SimError::UndefValue(format!(
                        "phi in {} has no incoming for predecessor {}",
                        bk.block_name(block),
                        bk.block_name(pred)
                    ));
                }
            }
        }
        unreachable!("phi_error called without a defective edge")
    }
}

#[cfg(test)]
mod tests {
    use crate::{BytecodeKernel, Gpu, GpuConfig, KernelArg, LaunchConfig, PreparedKernel};
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{AddrSpace, Dim, Function, IcmpPred, Type};

    fn diamond() -> Function {
        let mut f = Function::new("d", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c = b.icmp(IcmpPred::Slt, tid, b.const_i32(4));
        b.br(c, t, e);
        b.switch_to(t);
        let v1 = b.mul(tid, b.const_i32(2));
        b.jump(x);
        b.switch_to(e);
        let v2 = b.add(tid, b.const_i32(5));
        b.jump(x);
        b.switch_to(x);
        let v = b.phi(Type::I32, &[(t, v1), (e, v2)]);
        let p = b.gep(Type::I32, b.param(0), tid);
        b.store(v, p);
        b.ret(None);
        f
    }

    #[test]
    fn bytecode_matches_decoded_on_divergent_diamond() {
        let f = diamond();
        let mut gpu_a = Gpu::new(GpuConfig::default());
        let mut gpu_b = Gpu::new(GpuConfig::default());
        let out_a = gpu_a.alloc_i32(&[0; 8]);
        let out_b = gpu_b.alloc_i32(&[0; 8]);
        let cfg = LaunchConfig::linear(1, 8);
        let pk = PreparedKernel::new(&f);
        let bk = BytecodeKernel::from_prepared(&pk);
        let sa = gpu_a.launch_prepared(&pk, &cfg, &[KernelArg::Buffer(out_a)]);
        let sb = gpu_b.launch_bytecode(&bk, &cfg, &[KernelArg::Buffer(out_b)]);
        assert_eq!(sa, sb);
        assert_eq!(gpu_a.read_i32(out_a), gpu_b.read_i32(out_b));
        assert_eq!(gpu_a.read_i32(out_a), vec![0, 2, 4, 6, 9, 10, 11, 12]);
    }

    #[test]
    fn empty_launch_is_ok() {
        let f = diamond();
        let bk = BytecodeKernel::new(&f);
        let mut gpu = Gpu::new(GpuConfig::default());
        let out = gpu.alloc_i32(&[0; 8]);
        let cfg = LaunchConfig {
            grid: (0, 1),
            block: (8, 1),
        };
        let stats = gpu
            .launch_bytecode(&bk, &cfg, &[KernelArg::Buffer(out)])
            .unwrap();
        assert_eq!(stats.warp_instructions, 0);
    }
}
