//! Pre-decoded kernel representation: [`PreparedKernel`].
//!
//! [`crate::Gpu::launch`] re-derived everything it needed from the
//! [`Function`] arena on every launch — and the hot loop paid for it on
//! every *instruction*: an `insts_of(..).to_vec()` per block execution, an
//! `InstData::clone()` (three heap allocations) per executed instruction,
//! an operand `Vec` collect per lane, and a linear `phi_value_for` scan per
//! φ per lane. `PreparedKernel` performs all of that work once, ahead of
//! time, and lowers the function into flat arrays the interpreter can walk
//! with nothing but integer indexing:
//!
//! * one dense `DInst` record per live instruction, grouped by block,
//!   with operands pre-resolved to register slots / immediates / parameter
//!   indices (no `Value` matching at runtime);
//! * per-block instruction ranges plus a φ table keyed by predecessor, so
//!   block entry is a table walk instead of a `take_while` + linear scan;
//! * result slots renumbered densely, so the per-thread register file is
//!   exactly as large as the number of live results (tombstoned arena
//!   entries cost nothing);
//! * the control-flow facts a launch needs — the [`Cfg`], the
//!   [`PostDomTree`] and the IPDOM of every block — collapsed into one
//!   `Option<u32>` per block;
//! * the shared-memory arena layout.
//!
//! A `PreparedKernel` borrows nothing: prepare once, launch any number of
//! times (also across different launch geometries) via
//! [`crate::Gpu::launch_prepared`].

use crate::mem::RawVal;
use darm_analysis::{Cfg, PostDomTree};
use darm_ir::{cost, Function, Opcode, Type, Value};

/// Sentinel for "no destination register" (void results).
pub(crate) const NO_DST: u32 = u32::MAX;
/// Sentinel for "no block" (used for reconvergence targets and φ provenance).
pub(crate) const NO_BLOCK: u32 = u32::MAX;
/// Sentinel instruction index marking "at block entry, φs not yet run".
pub(crate) const BLOCK_ENTRY: u32 = u32::MAX;

/// An operand with its [`Value`] resolution done at decode time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DOperand {
    /// Result of another instruction, by dense register slot.
    Reg(u32),
    /// The n-th kernel parameter (resolved per launch).
    Param(u32),
    /// A constant (or `undef`), already converted to a runtime value.
    Imm(RawVal),
}

/// One decoded instruction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DInst {
    /// Opcode (dispatched on once per *warp* instruction, not per lane).
    pub opcode: Opcode,
    /// Result type.
    pub ty: Type,
    /// Destination register slot, or [`NO_DST`].
    pub dst: u32,
    /// Up to three pre-resolved operands (`select` is the widest).
    pub ops: [DOperand; 3],
    /// Successor blocks of a terminator, as dense block indices.
    pub succs: [u32; 2],
    /// Pre-computed `cost::latency(opcode, None)` for the charge model.
    pub latency: u64,
    /// Opcode-specific immediate: GEP element size in bytes, or the shared
    /// arena byte offset for `SharedBase`.
    pub aux: u64,
    /// For `Br` whose condition is a register: the condition's slot,
    /// pre-resolved at decode time so the execute loops read it directly
    /// instead of re-matching `ops[0]` per lane. [`NO_DST`] for every other
    /// opcode and for lane-invariant (constant/parameter) conditions.
    pub cond_slot: u32,
}

/// One φ definition: destination slot plus a range into
/// [`PreparedKernel::phi_incomings`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PhiDef {
    pub dst: u32,
    pub inc_start: u32,
    pub inc_end: u32,
}

/// One decoded basic block: instruction and φ ranges into the flat arrays.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DBlock {
    /// First non-φ instruction (index into [`PreparedKernel::insts`]).
    pub first: u32,
    /// One past the terminator.
    pub end: u32,
    /// φ definitions of this block (range into [`PreparedKernel::phis`]).
    pub phi_start: u32,
    pub phi_end: u32,
    /// Immediate post-dominator (dense), or [`NO_BLOCK`].
    pub ipdom: u32,
}

/// A kernel lowered once into the interpreter's flat execution format.
///
/// Build with [`PreparedKernel::new`] and run
/// with [`crate::Gpu::launch_prepared`]; the decode cost and the control
/// flow analyses (CFG + post-dominator tree) are paid once and reused
/// across launches. [`crate::Gpu::launch`] is a convenience wrapper that
/// prepares on every call.
#[derive(Debug, Clone)]
pub struct PreparedKernel {
    pub(crate) name: String,
    pub(crate) params: Vec<Type>,
    /// Dense register file size per thread.
    pub(crate) n_slots: u32,
    pub(crate) blocks: Vec<DBlock>,
    pub(crate) insts: Vec<DInst>,
    pub(crate) phis: Vec<PhiDef>,
    /// `(pred dense block, value)` pairs, grouped per φ.
    pub(crate) phi_incomings: Vec<(u32, DOperand)>,
    /// Block labels, for diagnostics only.
    pub(crate) block_names: Vec<String>,
    pub(crate) entry: u32,
    pub(crate) shared_offsets: Vec<u64>,
    pub(crate) shared_size: u64,
}

impl PreparedKernel {
    /// Decodes `func` into the flat execution format.
    ///
    /// The function must be structurally valid (see
    /// [`Function::verify_structure`]); decoding panics on dangling
    /// references, like the arena accessors themselves do.
    pub fn new(func: &Function) -> PreparedKernel {
        let cfg = Cfg::new(func);
        let pdt = PostDomTree::new(func, &cfg);

        // Dense block numbering, in creation order (entry first).
        let block_ids = func.block_ids();
        let mut dense_of = vec![NO_BLOCK; func.block_capacity()];
        for (k, &b) in block_ids.iter().enumerate() {
            dense_of[b.index()] = k as u32;
        }

        // Dense register-slot numbering for every live value-producing
        // instruction (φs included).
        let mut slot_of = vec![NO_DST; func.inst_capacity()];
        let mut n_slots = 0u32;
        for &b in &block_ids {
            for &id in func.insts_of(b) {
                if func.inst(id).ty != Type::Void {
                    slot_of[id.index()] = n_slots;
                    n_slots += 1;
                }
            }
        }

        let operand = |v: Value| -> DOperand {
            match v {
                Value::Inst(id) => DOperand::Reg(slot_of[id.index()]),
                Value::Param(i) => DOperand::Param(i),
                Value::I1(b) => DOperand::Imm(RawVal::I1(b)),
                Value::I32(x) => DOperand::Imm(RawVal::I32(x)),
                Value::I64(x) => DOperand::Imm(RawVal::I64(x)),
                Value::F32Bits(bits) => DOperand::Imm(RawVal::F32(f32::from_bits(bits))),
                Value::Undef(_) => DOperand::Imm(RawVal::Undef),
            }
        };

        // Shared arena layout (same 8-byte alignment rule the launches used).
        let mut shared_offsets = Vec::with_capacity(func.shared_arrays().len());
        let mut shared_size = 0u64;
        for arr in func.shared_arrays() {
            shared_offsets.push(shared_size);
            shared_size += arr.size_bytes();
            shared_size = (shared_size + 7) & !7;
        }

        let mut pk = PreparedKernel {
            name: func.name().to_string(),
            params: func.params().to_vec(),
            n_slots,
            blocks: Vec::with_capacity(block_ids.len()),
            insts: Vec::new(),
            phis: Vec::new(),
            phi_incomings: Vec::new(),
            block_names: Vec::with_capacity(block_ids.len()),
            entry: dense_of[func.entry().index()],
            shared_offsets,
            shared_size,
        };

        for &b in &block_ids {
            pk.block_names.push(func.block_name(b).to_string());
            let phi_start = pk.phis.len() as u32;
            let mut iter = func.insts_of(b).iter().copied().peekable();
            // φ prefix → φ table.
            while let Some(&id) = iter.peek() {
                let data = func.inst(id);
                if !data.opcode.is_phi() {
                    break;
                }
                iter.next();
                let inc_start = pk.phi_incomings.len() as u32;
                for (pred, v) in data.phi_incoming() {
                    pk.phi_incomings.push((dense_of[pred.index()], operand(v)));
                }
                pk.phis.push(PhiDef {
                    dst: slot_of[id.index()],
                    inc_start,
                    inc_end: pk.phi_incomings.len() as u32,
                });
            }
            let phi_end = pk.phis.len() as u32;
            // Straight-line body + terminator → dense records.
            let first = pk.insts.len() as u32;
            for id in iter {
                let data = func.inst(id);
                let mut ops = [DOperand::Imm(RawVal::Undef); 3];
                for (k, &v) in data.operands.iter().take(3).enumerate() {
                    ops[k] = operand(v);
                }
                let mut succs = [NO_BLOCK; 2];
                for (k, &s) in data.succs.iter().take(2).enumerate() {
                    succs[k] = dense_of[s.index()];
                }
                let aux = match data.opcode {
                    Opcode::Gep { elem } => elem.size_bytes(),
                    Opcode::SharedBase(k) => pk.shared_offsets[k as usize],
                    _ => 0,
                };
                let cond_slot = match (data.opcode, ops[0]) {
                    (Opcode::Br, DOperand::Reg(s)) => s,
                    _ => NO_DST,
                };
                pk.insts.push(DInst {
                    opcode: data.opcode,
                    ty: data.ty,
                    dst: slot_of[id.index()],
                    ops,
                    succs,
                    latency: cost::latency(data.opcode, None),
                    aux,
                    cond_slot,
                });
            }
            let end = pk.insts.len() as u32;
            let ipdom = pdt
                .ipdom(b)
                .map(|p| dense_of[p.index()])
                .unwrap_or(NO_BLOCK);
            pk.blocks.push(DBlock {
                first,
                end,
                phi_start,
                phi_end,
                ipdom,
            });
        }
        pk
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter types of the kernel signature.
    pub fn params(&self) -> &[Type] {
        &self.params
    }

    /// Number of decoded (live, non-φ) instructions plus φ definitions —
    /// a code-size metric for reporting.
    pub fn decoded_inst_count(&self) -> usize {
        self.insts.len() + self.phis.len()
    }

    /// Per-thread register file size in slots.
    pub fn register_slots(&self) -> usize {
        self.n_slots as usize
    }

    pub(crate) fn block_name(&self, dense: u32) -> &str {
        if dense == NO_BLOCK {
            "<none>"
        } else {
            &self.block_names[dense as usize]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{AddrSpace, Dim, IcmpPred};

    fn diamond() -> Function {
        let mut f = Function::new("d", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c = b.icmp(IcmpPred::Slt, tid, b.const_i32(4));
        b.br(c, t, e);
        b.switch_to(t);
        let v1 = b.mul(tid, b.const_i32(2));
        b.jump(x);
        b.switch_to(e);
        let v2 = b.add(tid, b.const_i32(5));
        b.jump(x);
        b.switch_to(x);
        let v = b.phi(Type::I32, &[(t, v1), (e, v2)]);
        let p = b.gep(Type::I32, b.param(0), tid);
        b.store(v, p);
        b.ret(None);
        f
    }

    #[test]
    fn decode_shapes_match_function() {
        let f = diamond();
        let pk = PreparedKernel::new(&f);
        assert_eq!(pk.blocks.len(), 4);
        assert_eq!(pk.name(), "d");
        // entry: tid, icmp, br → 3 records, 2 slots
        let entry = pk.blocks[pk.entry as usize];
        assert_eq!(entry.end - entry.first, 3);
        assert_eq!(entry.phi_start, entry.phi_end);
        // join block: one φ with two incomings, then gep/store/ret
        let join = pk.blocks[3];
        assert_eq!(join.phi_end - join.phi_start, 1);
        let phi = pk.phis[join.phi_start as usize];
        assert_eq!(phi.inc_end - phi.inc_start, 2);
        assert_eq!(join.end - join.first, 3);
        // diamond arms reconverge at the join
        assert_eq!(pk.blocks[1].ipdom, 3);
        assert_eq!(pk.blocks[2].ipdom, 3);
        assert_eq!(join.ipdom, NO_BLOCK);
    }

    #[test]
    fn slots_are_dense_over_live_results() {
        let f = diamond();
        let pk = PreparedKernel::new(&f);
        // tid, icmp, mul, add, φ, gep → 6 value-producing instructions.
        assert_eq!(pk.register_slots(), 6);
        assert!(pk.register_slots() < f.inst_capacity() + 1);
    }

    #[test]
    fn gep_aux_holds_element_size() {
        let f = diamond();
        let pk = PreparedKernel::new(&f);
        let gep = pk
            .insts
            .iter()
            .find(|i| matches!(i.opcode, Opcode::Gep { .. }))
            .expect("diamond has a gep");
        assert_eq!(gep.aux, 4);
    }
}
