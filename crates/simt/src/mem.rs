//! Simulated device memory: global buffers and per-block shared arenas.

use darm_ir::Type;

/// Handle to a global-memory buffer allocated on a [`crate::Gpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) u32);

/// Pointers are 64-bit: buffer id (1-based) in the high 16 bits, byte offset
/// in the low 48. Shared-memory pointers use buffer id 0 with the offset
/// addressing the block's shared arena.
pub(crate) fn encode_global(buf: BufferId, offset: u64) -> u64 {
    ((buf.0 as u64 + 1) << 48) | (offset & 0xFFFF_FFFF_FFFF)
}

pub(crate) fn encode_shared(offset: u64) -> u64 {
    offset & 0xFFFF_FFFF_FFFF
}

pub(crate) fn decode(addr: u64) -> (Option<BufferId>, u64) {
    let hi = addr >> 48;
    let off = addr & 0xFFFF_FFFF_FFFF;
    if hi == 0 {
        (None, off)
    } else {
        (Some(BufferId((hi - 1) as u32)), off)
    }
}

/// A raw byte store with typed accessors.
#[derive(Debug, Clone, Default)]
pub struct ByteStore {
    bytes: Vec<u8>,
}

impl ByteStore {
    pub(crate) fn with_len(len: usize) -> ByteStore {
        ByteStore {
            bytes: vec![0; len],
        }
    }

    pub(crate) fn from_bytes(bytes: Vec<u8>) -> ByteStore {
        ByteStore { bytes }
    }

    pub(crate) fn len(&self) -> usize {
        self.bytes.len()
    }

    pub(crate) fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    pub(crate) fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    pub(crate) fn read(&self, ty: Type, off: u64) -> Option<RawVal> {
        let size = ty.size_bytes() as usize;
        let off = off as usize;
        let slice = self.bytes.get(off..off + size)?;
        Some(match ty {
            Type::I1 => RawVal::I1(slice[0] != 0),
            Type::I32 => RawVal::I32(i32::from_le_bytes(slice.try_into().unwrap())),
            Type::F32 => RawVal::F32(f32::from_le_bytes(slice.try_into().unwrap())),
            Type::I64 => RawVal::I64(i64::from_le_bytes(slice.try_into().unwrap())),
            Type::Ptr(_) => RawVal::Ptr(u64::from_le_bytes(slice.try_into().unwrap())),
            Type::Void => return None,
        })
    }

    pub(crate) fn write(&mut self, off: u64, v: RawVal) -> Option<()> {
        let off = off as usize;
        match v {
            RawVal::I1(x) => *self.bytes.get_mut(off)? = x as u8,
            RawVal::I32(x) => self
                .bytes
                .get_mut(off..off + 4)?
                .copy_from_slice(&x.to_le_bytes()),
            RawVal::F32(x) => self
                .bytes
                .get_mut(off..off + 4)?
                .copy_from_slice(&x.to_le_bytes()),
            RawVal::I64(x) => self
                .bytes
                .get_mut(off..off + 8)?
                .copy_from_slice(&x.to_le_bytes()),
            RawVal::Ptr(x) => self
                .bytes
                .get_mut(off..off + 8)?
                .copy_from_slice(&x.to_le_bytes()),
            RawVal::Undef => return None,
        }
        Some(())
    }
}

/// A runtime lane value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RawVal {
    /// Boolean.
    I1(bool),
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// Pointer (encoded address).
    Ptr(u64),
    /// Undefined (reading it through memory or branching on it is an error).
    Undef,
}

impl RawVal {
    pub(crate) fn as_i64_index(self) -> Option<i64> {
        match self {
            RawVal::I32(x) => Some(x as i64),
            RawVal::I64(x) => Some(x),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let addr = encode_global(BufferId(7), 1234);
        assert_eq!(decode(addr), (Some(BufferId(7)), 1234));
        let saddr = encode_shared(64);
        assert_eq!(decode(saddr), (None, 64));
    }

    #[test]
    fn typed_read_write() {
        let mut s = ByteStore::with_len(64);
        s.write(0, RawVal::I32(-5)).unwrap();
        s.write(8, RawVal::F32(2.5)).unwrap();
        s.write(16, RawVal::I64(1 << 40)).unwrap();
        assert_eq!(s.read(Type::I32, 0), Some(RawVal::I32(-5)));
        assert_eq!(s.read(Type::F32, 8), Some(RawVal::F32(2.5)));
        assert_eq!(s.read(Type::I64, 16), Some(RawVal::I64(1 << 40)));
    }

    #[test]
    fn out_of_bounds_read_is_none() {
        let s = ByteStore::with_len(4);
        assert!(s.read(Type::I64, 0).is_none());
        assert!(s.read(Type::I32, 2).is_none());
    }
}
