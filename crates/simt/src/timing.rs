//! Cycle-level SIMT timing model: a pure observer over the execution tiers.
//!
//! The interpreter's base counters ([`crate::KernelStats::cycles`] and
//! friends) are an *instruction-charge* model: every warp instruction adds
//! its opcode latency, unconditionally. That over-counts pipelined ALU work
//! and under-counts divergence — the paper's claims are about cycles saved
//! by *reconvergence*, which only a timeline can show. This module adds
//! that timeline. It is a passive observer: enabling it changes **no**
//! buffers, **no** base counters, and **no** errors (held by the
//! `cycles_vs_insts` differential suite); it only fills in the `sim_*`
//! fields of [`crate::KernelStats`].
//!
//! # The model
//!
//! Each warp gets an independent `WarpTimer` holding a current cycle, a
//! register scoreboard, and a mirror of the engine's IPDOM reconvergence
//! stack. Four sub-models compose:
//!
//! * **Issue** — a masked warp instruction with `active` live lanes
//!   occupies the warp's issue port for `ceil(active / issue_width)`
//!   cycles ([`TimingConfig::issue_width`], default 16: a 32-lane warp
//!   issues over two cycles, a half-warp in one). This is the
//!   Białas & Strzelecki cost intuition: a divergent branch serializes
//!   lane *subsets* across issue slots, so its cost is the **sum of both
//!   arms'** slots rather than the maximum.
//! * **Latency / scoreboard** — each issue marks its destination register
//!   ready at `issue end + FU latency` (the per-opcode latencies of
//!   [`darm_ir::cost`]: 4 for ALU, 8 for MUL, 40 for DIV, 300 for global
//!   loads…). An instruction *stalls* until its source registers are
//!   ready; independent instructions behind it do not exist (in-order,
//!   single-issue per warp), so the stall is charged to the warp timeline
//!   as [`crate::KernelStats::sim_stall_cycles`]. Latency is otherwise
//!   hidden — a store never waits for DRAM, only a dependent read does.
//! * **IPDOM reconvergence stack** — when a branch diverges, the engines
//!   push *(else, then)* continuation entries whose reconvergence point is
//!   the branch block's immediate post-dominator (cached at decode time in
//!   `DBlock::ipdom`). The timer mirrors those pushes (`TimingState::diverge`)
//!   and charges one cycle per pop (`TimingState::frame_pop`) for the
//!   SIMT-stack update and mask swap — the hardware mechanism described in
//!   "Control Flow Management in Modern GPUs". The mirror also counts
//!   `sim_divergent_branches` and `sim_reconvergences`.
//! * **Memory (optional, [`TimingConfig::memory_model`])** — reuses the
//!   same coalescing / bank-conflict analysis as the base counters
//!   ([`crate::stats`]): an uncoalesced global access occupies the LSU for
//!   `(segments − 1) ·` [`cost::GLOBAL_TRANSACTION_LATENCY`] extra cycles,
//!   a shared access for `(conflict degree − 1) ·`
//!   [`cost::SHARED_BANK_CONFLICT_PENALTY`]. Occupancy delays the warp
//!   itself (it cannot issue past a busy LSU); the *base* DRAM/shared
//!   latency lands on the loaded register's scoreboard entry and is paid
//!   only by dependents, with or without the memory model.
//!
//! Barriers synchronize the timelines: `__syncthreads` stalls every warp
//! to the maximum cycle across the block (`TimingState::barrier_release`).
//!
//! A block's simulated cost is the **maximum** warp timeline (warps are
//! independent; the model assumes enough scheduler bandwidth to overlap
//! them — an infinitely-wide SM). Blocks then **sum** into
//! [`crate::KernelStats::sim_cycles`] (a sequential, single-SM launch
//! model), which keeps [`crate::KernelStats::merge`] additive. Everything
//! is integer arithmetic over a fixed warp iteration order, so two runs of
//! the same kernel produce identical cycle counts.
//!
//! # Worked example: the fig. 8 if/else diamond
//!
//! Take a one-warp, 8-lane launch of the paper's running diamond
//! (`tid < 4` picks the arm) with `issue_width = 8`:
//!
//! ```text
//! entry:  %t = tid.x        ; 8 lanes, 1 slot
//!         %c = icmp slt %t, 4
//!         br %c, then, else ; diverges: push (else,¬m) then (then,m); rpc = join
//! then:   %a = mul ...      ; 4 lanes — still 1 slot (4 ≤ issue_width)
//!         jump join         ; join == rpc → pop, +1 reconvergence cycle
//! else:   %b = add ...      ; the *other* 4 lanes, serialized after then
//!         jump join         ; pop again, +1
//! join:   %v = phi ...      ; φs are free (latency 0, no issue slot)
//!         %p = gep ...      ; 8 lanes again — reconverged
//!         store ...
//!         ret
//! ```
//!
//! The divergent region costs the **sum** of both arms (2 + 2 issue slots)
//! plus two reconvergence pops, where a melded kernel would execute one
//! 2-slot merged arm under the full mask and pop nothing — exactly the
//! effect DARM trades on, and what `sim_cycles` now surfaces next to the
//! instruction counts. The unit tests below pin these numbers.
//!
//! # Wiring
//!
//! Both the decoded (`exec.rs`) and bytecode (`exec_bc.rs`) engines thread
//! an `Option<&mut TimingState>` through their hot loops and fire the same
//! hook sequence for the same kernel, so the `sim_*` fields are
//! bit-identical across tiers (the differential suites assert full
//! [`crate::KernelStats`] equality). With timing off the option is `None`
//! and the only overhead is one predictable branch per charge — the
//! `interp_throughput` perf floors guard that this stays unmeasurable.

use crate::bytecode::Op;
use crate::decoded::{DInst, DOperand, NO_DST};
use crate::stats::{self, KernelStats};
use darm_ir::cost;

/// Configuration of the cycle-level timing model. Off by default.
///
/// ```
/// use darm_simt::{Gpu, GpuConfig, TimingConfig};
/// let mut gpu = Gpu::new(GpuConfig {
///     timing: TimingConfig::on(),
///     ..GpuConfig::default()
/// });
/// # let _ = &mut gpu;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Master switch. When `false` (the default) no timing state is even
    /// allocated and the engines' behavior is bit-identical to a build
    /// without the model.
    pub enabled: bool,
    /// Lanes issued per cycle: a warp instruction with `a` active lanes
    /// occupies `ceil(a / issue_width)` issue slots. Default 16 (half a
    /// 32-lane warp per cycle). Must be ≥ 1.
    pub issue_width: u32,
    /// Charge LSU occupancy for uncoalesced global segments and shared
    /// bank conflicts (on by default). The *base* memory latencies are
    /// part of the scoreboard and unaffected by this switch.
    pub memory_model: bool,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            enabled: false,
            issue_width: 16,
            memory_model: true,
        }
    }
}

impl TimingConfig {
    /// The default configuration with the model switched on.
    #[must_use]
    pub fn on() -> Self {
        TimingConfig {
            enabled: true,
            ..TimingConfig::default()
        }
    }
}

/// One entry of the mirrored IPDOM reconvergence stack: the dense block
/// index execution reconverges at. Purely observational — the *engine*
/// stack drives control flow; this mirror exists to count pushes/pops and
/// charge the pop cycle.
type Frame = u32;

/// Per-warp timeline: current cycle, scoreboard, and reconvergence mirror.
#[derive(Debug, Default)]
struct WarpTimer {
    /// The warp's current cycle within the block.
    cycle: u64,
    /// Cycles lost waiting on the scoreboard (or a barrier).
    stall: u64,
    /// Issue slots occupied (`Σ ceil(active / issue_width)`).
    issue_slots: u64,
    divergent_branches: u64,
    reconvergences: u64,
    /// Mirror of the engine's divergence pushes (depth = engine stack
    /// depth − 1: the base entry is not mirrored).
    frames: Vec<Frame>,
    /// Scoreboard: cycle at which each register slot's value is ready.
    reg_ready: Vec<u64>,
}

/// Shared timing state for one kernel launch (all warps of one block at a
/// time; [`TimingState::flush_block`] folds a finished block into the
/// stats and resets for the next).
#[derive(Debug)]
pub(crate) struct TimingState {
    cfg: TimingConfig,
    issue_width: u64,
    warps: Vec<WarpTimer>,
    /// Scratch for staged φ-batch readiness: `(dst slot, ready cycle)`.
    phi_scratch: Vec<(u32, u64)>,
}

impl TimingState {
    pub(crate) fn new(cfg: TimingConfig, n_warps: usize, n_slots: usize) -> Self {
        let warps = (0..n_warps)
            .map(|_| WarpTimer {
                reg_ready: vec![0; n_slots],
                ..WarpTimer::default()
            })
            .collect();
        TimingState {
            cfg,
            issue_width: u64::from(cfg.issue_width.max(1)),
            warps,
            phi_scratch: Vec::new(),
        }
    }

    /// Core of the issue model: stall to `ready` (operand availability),
    /// occupy `ceil(active / issue_width)` slots, mark `dst` ready after
    /// `latency` more cycles. Returns the destination-ready cycle.
    fn issue_at(&mut self, w: usize, active: u32, latency: u64, dst: u32, ready: u64) -> u64 {
        let wt = &mut self.warps[w];
        if active == 0 {
            return wt.cycle;
        }
        let start = ready.max(wt.cycle);
        wt.stall += start - wt.cycle;
        let slots = u64::from(active).div_ceil(self.issue_width);
        wt.issue_slots += slots;
        wt.cycle = start + slots;
        let done = wt.cycle + latency;
        if dst != NO_DST {
            wt.reg_ready[dst as usize] = done;
        }
        done
    }

    /// Max scoreboard-ready cycle over the (non-[`NO_DST`]) source slots.
    fn operands_ready(&self, w: usize, srcs: [u32; 3]) -> u64 {
        let wt = &self.warps[w];
        let mut ready = 0;
        for s in srcs {
            if s != NO_DST {
                ready = ready.max(wt.reg_ready[s as usize]);
            }
        }
        ready
    }

    /// Issue one warp instruction whose operands live in register slots
    /// `srcs` ([`NO_DST`] entries are "no operand": immediates, params).
    /// Returns the cycle at which `dst` becomes ready.
    pub(crate) fn issue(
        &mut self,
        w: usize,
        active: u32,
        latency: u64,
        dst: u32,
        srcs: [u32; 3],
    ) -> u64 {
        let ready = self.operands_ready(w, srcs);
        self.issue_at(w, active, latency, dst, ready)
    }

    /// [`TimingState::issue`] with an explicit readiness floor instead of
    /// source slots — used for the second half of a fused bytecode op,
    /// whose producer's ready cycle was just returned by the first half
    /// (the producer slot may be elided, so it can't be looked up).
    pub(crate) fn issue_dep(
        &mut self,
        w: usize,
        active: u32,
        latency: u64,
        dst: u32,
        ready_hint: u64,
    ) -> u64 {
        self.issue_at(w, active, latency, dst, ready_hint)
    }

    /// Issue a memory access: operand stall, issue slots, optional LSU
    /// occupancy for uncoalesced segments / bank conflicts, and the base
    /// space latency on the loaded register (stores pass [`NO_DST`]).
    /// Space and shape are inferred from `lane_addrs` exactly like the
    /// base counters' `charge_mem_access`.
    #[allow(clippy::too_many_arguments)] // engine hook; call sites are macro-generated
    pub(crate) fn mem_issue(
        &mut self,
        w: usize,
        active: u32,
        dst: u32,
        srcs: [u32; 3],
        ready_hint: u64,
        lane_addrs: &[u64],
        scratch: &mut Vec<u64>,
    ) {
        if active == 0 || lane_addrs.is_empty() {
            return;
        }
        let ready = self.operands_ready(w, srcs).max(ready_hint);
        let is_global = stats::is_global_access(lane_addrs);
        let occupancy = if self.cfg.memory_model {
            if is_global {
                (stats::global_segments(lane_addrs, scratch) - 1) * cost::GLOBAL_TRANSACTION_LATENCY
            } else {
                (stats::shared_conflict_degree(lane_addrs, scratch) - 1)
                    * cost::SHARED_BANK_CONFLICT_PENALTY
            }
        } else {
            0
        };
        let wt = &mut self.warps[w];
        let start = ready.max(wt.cycle);
        wt.stall += start - wt.cycle;
        let slots = u64::from(active).div_ceil(self.issue_width);
        wt.issue_slots += slots;
        wt.cycle = start + slots + occupancy;
        if dst != NO_DST {
            let base = if is_global {
                cost::GLOBAL_MEM_LATENCY
            } else {
                cost::SHARED_MEM_LATENCY
            };
            wt.reg_ready[dst as usize] = wt.cycle + base;
        }
    }

    /// Scoreboard-ready cycle of one register slot (φ source collection).
    pub(crate) fn reg_ready(&self, w: usize, slot: u32) -> u64 {
        self.warps[w].reg_ready[slot as usize]
    }

    /// Begin a staged φ batch (block entry). A φ result becomes ready at
    /// the max readiness of the incoming sources that actually flowed in,
    /// but is otherwise free — φs cost no issue slot and no cycle,
    /// matching their zero latency in the charge model. A block's φs
    /// evaluate atomically in the engines; staging their readiness the
    /// same way keeps a φ that sources another φ of the same block reading
    /// the *pre-batch* scoreboard.
    pub(crate) fn phi_begin(&mut self) {
        self.phi_scratch.clear();
    }

    /// Stage one φ's readiness; committed by [`TimingState::phi_commit`].
    pub(crate) fn phi_stage(&mut self, dst: u32, ready: u64) {
        self.phi_scratch.push((dst, ready));
    }

    /// Commit the staged φ batch to warp `w`'s scoreboard.
    pub(crate) fn phi_commit(&mut self, w: usize) {
        for i in 0..self.phi_scratch.len() {
            let (dst, ready) = self.phi_scratch[i];
            self.warps[w].reg_ready[dst as usize] = ready;
        }
    }

    /// Mirror a divergent branch: the engine pushed *(else, then)* entries
    /// reconverging at `rpc`; count the divergence and deepen the mirror.
    pub(crate) fn diverge(&mut self, w: usize, rpc: u32) {
        let wt = &mut self.warps[w];
        wt.divergent_branches += 1;
        wt.frames.push(rpc);
        wt.frames.push(rpc);
    }

    /// Mirror an engine stack pop. Pops of divergence-pushed entries cost
    /// one cycle (SIMT-stack update + mask swap) and count a
    /// reconvergence; the final pop of the warp's *base* entry finds the
    /// mirror empty and is free.
    pub(crate) fn frame_pop(&mut self, w: usize) {
        let wt = &mut self.warps[w];
        if wt.frames.pop().is_some() {
            wt.reconvergences += 1;
            wt.cycle += 1;
        }
    }

    /// A warp reached `__syncthreads`: one uniform issue slot.
    pub(crate) fn barrier_issue(&mut self, w: usize) {
        let wt = &mut self.warps[w];
        wt.issue_slots += 1;
        wt.cycle += 1;
    }

    /// All warps reached the barrier: stall each to the block maximum.
    pub(crate) fn barrier_release(&mut self) {
        let m = self.warps.iter().map(|wt| wt.cycle).max().unwrap_or(0);
        for wt in &mut self.warps {
            wt.stall += m - wt.cycle;
            wt.cycle = m;
        }
    }

    /// Fold one finished block into `stats` (block cost = max warp
    /// timeline; counters sum) and reset every timer for the next block.
    pub(crate) fn flush_block(&mut self, stats: &mut KernelStats) {
        let mut block_cycles = 0;
        for wt in &mut self.warps {
            block_cycles = block_cycles.max(wt.cycle);
            stats.sim_stall_cycles += wt.stall;
            stats.sim_issue_slots += wt.issue_slots;
            stats.sim_divergent_branches += wt.divergent_branches;
            stats.sim_reconvergences += wt.reconvergences;
            wt.cycle = 0;
            wt.stall = 0;
            wt.issue_slots = 0;
            wt.divergent_branches = 0;
            wt.reconvergences = 0;
            wt.frames.clear();
            for r in &mut wt.reg_ready {
                *r = 0;
            }
        }
        stats.sim_cycles += block_cycles;
    }
}

/// Scoreboard dependencies of a decoded instruction: `(dst, srcs)` as
/// register slots, [`NO_DST`] where absent. Operand padding is
/// `Imm(Undef)`, so reading all three is safe for every opcode.
pub(crate) fn dinst_deps(inst: &DInst) -> (u32, [u32; 3]) {
    let mut srcs = [NO_DST; 3];
    for (i, op) in inst.ops.iter().enumerate() {
        if let DOperand::Reg(s) = op {
            srcs[i] = *s;
        }
    }
    (inst.dst, srcs)
}

/// Scoreboard dependencies of a bytecode op, mirroring [`dinst_deps`] on
/// the decoded form of the same instruction (slot spaces are shared, and
/// constant/parameter slots are never written so their ready cycle is a
/// constant 0 — equivalent to the decoded tier's "no operand").
///
/// The fused ops ([`Op::CmpBr`], [`Op::GepLoad`], [`Op::GepStore`]) report
/// the deps of their *first* half; the engines time their second half
/// explicitly via [`TimingState::issue_dep`] / the ready hint.
pub(crate) fn bc_deps(op: &Op) -> (u32, [u32; 3]) {
    match *op {
        Op::Add { d, a, b }
        | Op::Sub { d, a, b }
        | Op::Mul { d, a, b }
        | Op::And { d, a, b }
        | Op::Or { d, a, b }
        | Op::Xor { d, a, b }
        | Op::Shl { d, a, b }
        | Op::LShr { d, a, b }
        | Op::AShr { d, a, b }
        | Op::Div { d, a, b, .. }
        | Op::FAdd { d, a, b }
        | Op::FSub { d, a, b }
        | Op::FMul { d, a, b }
        | Op::FDiv { d, a, b }
        | Op::Icmp { d, a, b, .. }
        | Op::Fcmp { d, a, b, .. }
        | Op::Gep { d, a, b, .. } => (d, [a, b, NO_DST]),
        Op::FSqrt { d, a }
        | Op::FAbs { d, a }
        | Op::FNeg { d, a }
        | Op::FExp { d, a }
        | Op::ZextSext { d, a, .. }
        | Op::Trunc { d, a, .. }
        | Op::SiToFp { d, a }
        | Op::FpToSi { d, a, .. }
        | Op::Ballot { d, a }
        | Op::Load { d, a, .. } => (d, [a, NO_DST, NO_DST]),
        Op::Select { d, c, a, b } => (d, [c, a, b]),
        Op::Store { v, a } => (NO_DST, [v, a, NO_DST]),
        Op::ThreadIdx { d, .. }
        | Op::BlockIdx { d, .. }
        | Op::BlockDim { d, .. }
        | Op::GridDim { d, .. }
        | Op::SharedBase { d, .. } => (d, [NO_DST; 3]),
        Op::Br { c, .. } => (NO_DST, [c, NO_DST, NO_DST]),
        Op::Sync | Op::Ret | Op::Jump { .. } => (NO_DST, [NO_DST; 3]),
        // Fused first halves; second halves are hooked explicitly.
        Op::CmpBr { d, a, b, .. } => (d, [a, b, NO_DST]),
        Op::GepLoad { gd, ga, gb, .. } | Op::GepStore { gd, ga, gb, .. } => (gd, [ga, gb, NO_DST]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(issue_width: u32, n_slots: usize) -> TimingState {
        TimingState::new(
            TimingConfig {
                enabled: true,
                issue_width,
                memory_model: true,
            },
            1,
            n_slots,
        )
    }

    #[test]
    fn issue_slots_scale_with_active_lanes() {
        let mut t = state(16, 4);
        t.issue(0, 32, 0, NO_DST, [NO_DST; 3]); // 2 slots
        t.issue(0, 16, 0, NO_DST, [NO_DST; 3]); // 1 slot
        t.issue(0, 1, 0, NO_DST, [NO_DST; 3]); // 1 slot
        assert_eq!(t.warps[0].issue_slots, 4);
        assert_eq!(t.warps[0].cycle, 4);
        assert_eq!(t.warps[0].stall, 0);
    }

    #[test]
    fn scoreboard_stalls_dependents_only() {
        let mut t = state(32, 4);
        // Producer: 1 slot, result ready at 1 + 40.
        t.issue(0, 32, cost::DIV_LATENCY, 0, [NO_DST; 3]);
        // Independent op: no stall.
        t.issue(0, 32, cost::ALU_LATENCY, 1, [NO_DST; 3]);
        assert_eq!(t.warps[0].stall, 0);
        // Dependent op: stalls until cycle 41.
        t.issue(0, 32, cost::ALU_LATENCY, 2, [0, NO_DST, NO_DST]);
        assert_eq!(t.warps[0].stall, 41 - 2);
        assert_eq!(t.warps[0].cycle, 42);
        // Its own result is ready 4 cycles later.
        assert_eq!(t.reg_ready(0, 2), 46);
    }

    #[test]
    fn divergence_pushes_two_frames_and_pops_charge_one_cycle() {
        let mut t = state(16, 1);
        t.diverge(0, 7);
        assert_eq!(t.warps[0].frames, vec![7, 7]);
        assert_eq!(t.warps[0].divergent_branches, 1);
        t.frame_pop(0);
        t.frame_pop(0);
        // Base-entry pop: the mirror is empty, no charge.
        t.frame_pop(0);
        assert_eq!(t.warps[0].reconvergences, 2);
        assert_eq!(t.warps[0].cycle, 2);
    }

    #[test]
    fn barrier_release_aligns_warps_to_max() {
        let mut t = TimingState::new(TimingConfig::on(), 2, 1);
        t.issue(0, 16, 0, NO_DST, [NO_DST; 3]);
        t.issue(0, 16, 0, NO_DST, [NO_DST; 3]);
        t.issue(1, 16, 0, NO_DST, [NO_DST; 3]);
        t.barrier_issue(0);
        t.barrier_issue(1);
        t.barrier_release();
        assert_eq!(t.warps[0].cycle, t.warps[1].cycle);
        assert_eq!(t.warps[1].stall, 1); // was at 2, aligned to 3
    }

    #[test]
    fn flush_block_takes_max_and_resets() {
        let mut t = TimingState::new(TimingConfig::on(), 2, 2);
        t.issue(0, 32, 10, 0, [NO_DST; 3]);
        t.issue(1, 16, 0, NO_DST, [NO_DST; 3]);
        t.diverge(1, 3);
        let mut s = KernelStats::default();
        t.flush_block(&mut s);
        assert_eq!(s.sim_cycles, 2); // warp 0 at 2, warp 1 at 1
        assert_eq!(s.sim_issue_slots, 3);
        assert_eq!(s.sim_divergent_branches, 1);
        assert_eq!(t.warps[0].cycle, 0);
        assert_eq!(t.reg_ready(0, 0), 0);
        assert!(t.warps[1].frames.is_empty());
        // A second flush adds nothing.
        t.flush_block(&mut s);
        assert_eq!(s.sim_cycles, 2);
    }

    #[test]
    fn uncoalesced_global_access_occupies_lsu() {
        // Build two synthetic global-address spreads with the real pointer
        // encoder (`is_global_access` decodes the buffer tag): one within a
        // 128-byte segment, one striding a segment per lane.
        let buf = crate::mem::BufferId(0);
        let coalesced: Vec<u64> = (0..32)
            .map(|i| crate::mem::encode_global(buf, i * 4))
            .collect();
        let strided: Vec<u64> = (0..32)
            .map(|i| crate::mem::encode_global(buf, i * 512))
            .collect();
        let mut scratch = Vec::new();

        let mut t = state(32, 2);
        t.mem_issue(0, 32, 0, [NO_DST; 3], 0, &coalesced, &mut scratch);
        let fast = t.warps[0].cycle;
        let mut t2 = state(32, 2);
        t2.mem_issue(0, 32, 0, [NO_DST; 3], 0, &strided, &mut scratch);
        let slow = t2.warps[0].cycle;
        assert_eq!(fast, 1); // one slot, no occupancy
        assert_eq!(slow, 1 + 31 * cost::GLOBAL_TRANSACTION_LATENCY);
        // Base DRAM latency lands on the scoreboard in both cases.
        assert_eq!(t.reg_ready(0, 0), fast + cost::GLOBAL_MEM_LATENCY);

        // With the memory model off, both shapes cost the same…
        let mut t3 = TimingState::new(
            TimingConfig {
                enabled: true,
                issue_width: 32,
                memory_model: false,
            },
            1,
            2,
        );
        t3.mem_issue(0, 32, 0, [NO_DST; 3], 0, &strided, &mut scratch);
        assert_eq!(t3.warps[0].cycle, 1);
        // …but the base latency still gates dependents.
        assert_eq!(t3.reg_ready(0, 0), 1 + cost::GLOBAL_MEM_LATENCY);
    }

    #[test]
    fn phis_are_free_but_propagate_readiness() {
        let mut t = state(32, 3);
        t.issue(0, 32, cost::MUL_LATENCY, 0, [NO_DST; 3]); // ready at 9
        let ready = t.reg_ready(0, 0);
        t.phi_begin();
        t.phi_stage(1, ready);
        t.phi_commit(0);
        assert_eq!(t.warps[0].issue_slots, 1); // φ issued nothing
        t.issue(0, 32, 0, 2, [1, NO_DST, NO_DST]);
        assert_eq!(t.warps[0].stall, ready - 1);
    }

    #[test]
    fn phi_batch_reads_pre_batch_scoreboard() {
        let mut t = state(32, 3);
        t.issue(0, 32, 10, 0, [NO_DST; 3]); // slot 0 ready at 11
        t.phi_begin();
        t.phi_stage(1, t.reg_ready(0, 0)); // φ1 := slot 0
        t.phi_stage(0, 0); // φ0 := something already ready
        t.phi_commit(0);
        assert_eq!(t.reg_ready(0, 1), 11);
        assert_eq!(t.reg_ready(0, 0), 0);
    }
}
