//! Performance counters — the simulator's answer to `rocprof` (§VI-B..D).
//!
//! [`KernelStats`] is also the **stats sink** of the backend contract
//! (see [`crate::backend`]): every execution tier charges into the same
//! counters through the same methods, which is what keeps the tiers
//! bit-comparable and lets differential tests assert `==` on the struct.
//!
//! Two families of counters live here. The base counters (`cycles`,
//! `warp_instructions`, …) are charged unconditionally by every tier and
//! form the bit-identity contract. The `sim_*` fields are filled in only
//! when the cycle-level timing model ([`crate::timing`]) is enabled; with
//! timing off they stay zero, so a timing-off run's stats compare equal to
//! any pre-timing build.

use crate::mem::decode;
use darm_ir::cost;

/// Counters collected over one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Total issue cycles summed over all warps. Speedups in the
    /// reproduction are ratios of this number.
    pub cycles: u64,
    /// Dynamically issued warp instructions (each issue covers all active
    /// lanes of one warp).
    pub warp_instructions: u64,
    /// Sum of active lanes over all issues (thread-instructions).
    pub thread_instructions: u64,
    /// Issued ALU warp instructions (arithmetic, compares, selects, casts,
    /// address computation).
    pub alu_issues: u64,
    /// Active lanes summed over ALU issues; `alu_utilization` =
    /// `alu_active_lanes / (alu_issues * warp_size)`.
    pub alu_active_lanes: u64,
    /// Issued global-memory loads+stores ("vector mem RD+WR" in Fig. 11).
    pub global_mem_insts: u64,
    /// Issued shared-memory (LDS) loads+stores.
    pub shared_mem_insts: u64,
    /// 128-byte segments touched by global accesses (coalescing metric).
    pub global_transactions: u64,
    /// Maximum-degree bank conflicts accumulated over shared accesses (0
    /// when every warp access was conflict-free).
    pub shared_bank_conflicts: u64,
    /// Barriers executed (warp-level count).
    pub barriers: u64,
    /// Simulated cycles from the timing model ([`crate::timing`]): per
    /// block the maximum warp timeline, summed over blocks. Zero unless
    /// [`crate::TimingConfig::enabled`] is set.
    pub sim_cycles: u64,
    /// Cycles warps spent stalled on the scoreboard or at barriers
    /// (timing model only).
    pub sim_stall_cycles: u64,
    /// Issue slots occupied, `Σ ceil(active_lanes / issue_width)`
    /// (timing model only).
    pub sim_issue_slots: u64,
    /// Branches that actually diverged at runtime — pushed entries on the
    /// IPDOM reconvergence stack (timing model only).
    pub sim_divergent_branches: u64,
    /// Reconvergence-stack pops, each charged one cycle (timing model
    /// only). Two per fully divergent two-way branch.
    pub sim_reconvergences: u64,
    /// Warp size used by the launch (needed to normalize utilization).
    pub warp_size: u32,
}

impl KernelStats {
    /// ALU (vector unit) utilization in percent — Fig. 10's metric.
    pub fn alu_utilization(&self) -> f64 {
        if self.alu_issues == 0 || self.warp_size == 0 {
            return 0.0;
        }
        100.0 * self.alu_active_lanes as f64 / (self.alu_issues as f64 * self.warp_size as f64)
    }

    /// Average active lanes per issued instruction (SIMD efficiency).
    pub fn simd_efficiency(&self) -> f64 {
        if self.warp_instructions == 0 || self.warp_size == 0 {
            return 0.0;
        }
        self.thread_instructions as f64 / (self.warp_instructions as f64 * self.warp_size as f64)
    }

    /// A copy with every timing-model field zeroed — what the same launch
    /// would have reported with timing off. The differential suites use
    /// this to assert that enabling timing perturbs nothing else:
    /// `on.sans_timing() == off`.
    #[must_use]
    pub fn sans_timing(&self) -> KernelStats {
        KernelStats {
            sim_cycles: 0,
            sim_stall_cycles: 0,
            sim_issue_slots: 0,
            sim_divergent_branches: 0,
            sim_reconvergences: 0,
            ..*self
        }
    }

    /// Charges the memory-cost model for one warp-wide load/store issue:
    /// coalescing (one transaction per distinct 128-byte segment) for global
    /// accesses, the bank-conflict model for shared (LDS) accesses. The
    /// address space is inferred from the encoded addresses — global
    /// addresses carry a buffer id in the high bits. `scratch` is reusable
    /// sort space so the hot loops stay allocation-free.
    ///
    /// Shared by the decoded and bytecode engines (the reference
    /// interpreter keeps its own copy); callers account
    /// `warp_instructions`/`thread_instructions` themselves. The timing
    /// model reuses the same [`is_global_access`] / [`global_segments`] /
    /// [`shared_conflict_degree`] analysis for its LSU-occupancy charges.
    pub(crate) fn charge_mem_access(&mut self, lane_addrs: &[u64], scratch: &mut Vec<u64>) {
        if is_global_access(lane_addrs) {
            self.global_mem_insts += 1;
            let n_seg = global_segments(lane_addrs, scratch);
            self.global_transactions += n_seg;
            self.cycles +=
                cost::GLOBAL_MEM_LATENCY + (n_seg - 1) * cost::GLOBAL_TRANSACTION_LATENCY;
        } else {
            self.shared_mem_insts += 1;
            let degree = shared_conflict_degree(lane_addrs, scratch);
            self.shared_bank_conflicts += degree - 1;
            self.cycles +=
                cost::SHARED_MEM_LATENCY + (degree - 1) * cost::SHARED_BANK_CONFLICT_PENALTY;
        }
    }

    /// Accumulates another launch's counters (used to sum per-block runs).
    pub fn merge(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.warp_instructions += other.warp_instructions;
        self.thread_instructions += other.thread_instructions;
        self.alu_issues += other.alu_issues;
        self.alu_active_lanes += other.alu_active_lanes;
        self.global_mem_insts += other.global_mem_insts;
        self.shared_mem_insts += other.shared_mem_insts;
        self.global_transactions += other.global_transactions;
        self.shared_bank_conflicts += other.shared_bank_conflicts;
        self.barriers += other.barriers;
        self.sim_cycles += other.sim_cycles;
        self.sim_stall_cycles += other.sim_stall_cycles;
        self.sim_issue_slots += other.sim_issue_slots;
        self.sim_divergent_branches += other.sim_divergent_branches;
        self.sim_reconvergences += other.sim_reconvergences;
        self.warp_size = other.warp_size.max(self.warp_size);
    }
}

/// Whether a warp access targets global memory — global addresses carry a
/// buffer id in the high bits (see [`crate::mem`]). An empty access
/// defaults to shared (callers never charge empty accesses).
pub(crate) fn is_global_access(lane_addrs: &[u64]) -> bool {
    lane_addrs
        .first()
        .map(|&a| decode(a).0.is_some())
        .unwrap_or(false)
}

/// Distinct 128-byte segments touched by a global warp access (≥ 1).
///
/// Fast path: when every segment index lands in one 64-wide window (true
/// for any coalesced or moderately strided warp access), the distinct
/// count is a popcount over a bitmask; otherwise sort+dedup into
/// `scratch`.
pub(crate) fn global_segments(lane_addrs: &[u64], scratch: &mut Vec<u64>) -> u64 {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for &a in lane_addrs {
        let seg = a / cost::COALESCE_SEGMENT_BYTES;
        lo = lo.min(seg);
        hi = hi.max(seg);
    }
    if lane_addrs.is_empty() {
        1
    } else if hi - lo < 64 {
        let mut seen = 0u64;
        for &a in lane_addrs {
            seen |= 1u64 << (a / cost::COALESCE_SEGMENT_BYTES - lo);
        }
        u64::from(seen.count_ones())
    } else {
        scratch.clear();
        scratch.extend(lane_addrs.iter().map(|a| a / cost::COALESCE_SEGMENT_BYTES));
        scratch.sort_unstable();
        scratch.dedup();
        scratch.len() as u64
    }
}

/// Maximum bank-conflict degree of a shared warp access (≥ 1): accesses
/// to distinct words in the same bank serialize; broadcasts do not.
///
/// Fast path: walk the lanes with a per-bank last-word table — as long as
/// each bank sees at most one distinct word (conflict-free or broadcast,
/// the overwhelmingly common case) the answer is degree 1 with no sorting.
pub(crate) fn shared_conflict_degree(lane_addrs: &[u64], scratch: &mut Vec<u64>) -> u64 {
    let mut bank_word = [0u64; cost::SHARED_BANKS as usize];
    let mut bank_seen = 0u32;
    let mut clean = true;
    for &a in lane_addrs {
        let word = a / cost::SHARED_BANK_WORD_BYTES;
        let bank = (word % cost::SHARED_BANKS) as usize;
        if bank_seen & (1 << bank) == 0 {
            bank_seen |= 1 << bank;
            bank_word[bank] = word;
        } else if bank_word[bank] != word {
            clean = false;
            break;
        }
    }
    if clean {
        1
    } else {
        // Encoded as bank << 48 | word so one sort+dedup yields, per bank,
        // a run of its distinct words.
        scratch.clear();
        scratch.extend(lane_addrs.iter().map(|&a| {
            let word = a / cost::SHARED_BANK_WORD_BYTES;
            ((word % cost::SHARED_BANKS) << 48) | (word & 0xFFFF_FFFF_FFFF)
        }));
        scratch.sort_unstable();
        scratch.dedup();
        let mut degree = 1u64;
        let mut run = 0u64;
        let mut cur_bank = u64::MAX;
        for &enc in scratch.iter() {
            let bank = enc >> 48;
            if bank == cur_bank {
                run += 1;
            } else {
                cur_bank = bank;
                run = 1;
            }
            degree = degree.max(run);
        }
        degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = KernelStats {
            alu_issues: 10,
            alu_active_lanes: 160,
            warp_size: 32,
            ..Default::default()
        };
        assert!((s.alu_utilization() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_utilization() {
        assert_eq!(KernelStats::default().alu_utilization(), 0.0);
        assert_eq!(KernelStats::default().simd_efficiency(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = KernelStats {
            cycles: 10,
            warp_size: 32,
            ..Default::default()
        };
        let b = KernelStats {
            cycles: 5,
            barriers: 2,
            sim_cycles: 7,
            sim_reconvergences: 3,
            warp_size: 32,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.barriers, 2);
        assert_eq!(a.sim_cycles, 7);
        assert_eq!(a.sim_reconvergences, 3);
    }

    #[test]
    fn sans_timing_zeroes_only_sim_fields() {
        let s = KernelStats {
            cycles: 10,
            sim_cycles: 99,
            sim_stall_cycles: 1,
            sim_issue_slots: 2,
            sim_divergent_branches: 3,
            sim_reconvergences: 4,
            warp_size: 32,
            ..Default::default()
        };
        let t = s.sans_timing();
        assert_eq!(t.cycles, 10);
        assert_eq!(t.warp_size, 32);
        assert_eq!(t.sim_cycles + t.sim_stall_cycles + t.sim_issue_slots, 0);
        assert_eq!(t.sim_divergent_branches + t.sim_reconvergences, 0);
    }
}
