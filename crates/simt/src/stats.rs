//! Performance counters — the simulator's answer to `rocprof` (§VI-B..D).

/// Counters collected over one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Total issue cycles summed over all warps. Speedups in the
    /// reproduction are ratios of this number.
    pub cycles: u64,
    /// Dynamically issued warp instructions (each issue covers all active
    /// lanes of one warp).
    pub warp_instructions: u64,
    /// Sum of active lanes over all issues (thread-instructions).
    pub thread_instructions: u64,
    /// Issued ALU warp instructions (arithmetic, compares, selects, casts,
    /// address computation).
    pub alu_issues: u64,
    /// Active lanes summed over ALU issues; `alu_utilization` =
    /// `alu_active_lanes / (alu_issues * warp_size)`.
    pub alu_active_lanes: u64,
    /// Issued global-memory loads+stores ("vector mem RD+WR" in Fig. 11).
    pub global_mem_insts: u64,
    /// Issued shared-memory (LDS) loads+stores.
    pub shared_mem_insts: u64,
    /// 128-byte segments touched by global accesses (coalescing metric).
    pub global_transactions: u64,
    /// Maximum-degree bank conflicts accumulated over shared accesses (0
    /// when every warp access was conflict-free).
    pub shared_bank_conflicts: u64,
    /// Barriers executed (warp-level count).
    pub barriers: u64,
    /// Warp size used by the launch (needed to normalize utilization).
    pub warp_size: u32,
}

impl KernelStats {
    /// ALU (vector unit) utilization in percent — Fig. 10's metric.
    pub fn alu_utilization(&self) -> f64 {
        if self.alu_issues == 0 || self.warp_size == 0 {
            return 0.0;
        }
        100.0 * self.alu_active_lanes as f64 / (self.alu_issues as f64 * self.warp_size as f64)
    }

    /// Average active lanes per issued instruction (SIMD efficiency).
    pub fn simd_efficiency(&self) -> f64 {
        if self.warp_instructions == 0 || self.warp_size == 0 {
            return 0.0;
        }
        self.thread_instructions as f64 / (self.warp_instructions as f64 * self.warp_size as f64)
    }

    /// Accumulates another launch's counters (used to sum per-block runs).
    pub fn merge(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.warp_instructions += other.warp_instructions;
        self.thread_instructions += other.thread_instructions;
        self.alu_issues += other.alu_issues;
        self.alu_active_lanes += other.alu_active_lanes;
        self.global_mem_insts += other.global_mem_insts;
        self.shared_mem_insts += other.shared_mem_insts;
        self.global_transactions += other.global_transactions;
        self.shared_bank_conflicts += other.shared_bank_conflicts;
        self.barriers += other.barriers;
        self.warp_size = other.warp_size.max(self.warp_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = KernelStats {
            alu_issues: 10,
            alu_active_lanes: 160,
            warp_size: 32,
            ..Default::default()
        };
        assert!((s.alu_utilization() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_utilization() {
        assert_eq!(KernelStats::default().alu_utilization(), 0.0);
        assert_eq!(KernelStats::default().simd_efficiency(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = KernelStats {
            cycles: 10,
            warp_size: 32,
            ..Default::default()
        };
        let b = KernelStats {
            cycles: 5,
            barriers: 2,
            warp_size: 32,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.barriers, 2);
    }
}
