//! Flat register bytecode: [`BytecodeKernel`].
//!
//! The decoded tier ([`PreparedKernel`]) already resolves operands to
//! register slots, but its execute loop still pays per instruction for
//! work that can be finished at compile time: an ~80-byte `DInst` copy, a
//! three-way `DOperand` match per operand per lane, a second opcode
//! match in the charge model, and a reconvergence-stack writeback. This
//! module lowers a `PreparedKernel` once more, into a shape where the
//! execute loop (`exec_bc`) does nothing per op but index flat
//! arrays:
//!
//! * **fixed-width ops** (`Op`) carrying pre-resolved register slots
//!   only — dispatch is a single `match` on a dense discriminant;
//! * **immediate folding via constant slots**: every distinct constant
//!   and every referenced parameter gets a register slot of its own,
//!   materialized once per thread block, so *all* operand reads are plain
//!   register-file loads and the operand-kind match disappears;
//! * **fused compare-and-branch** (`Op::CmpBr`): an `icmp` whose result
//!   feeds the block's terminating `br` collapses into one op (the
//!   compare result is still written to its register when other
//!   instructions read it), charging stats for both halves exactly as the
//!   unfused pair would;
//! * **fused address-and-access** (`Op::GepLoad`/`Op::GepStore`): a
//!   `gep` feeding the immediately following load/store collapses into one
//!   op, skipping a dispatch and — when nothing else reads the address — a
//!   per-lane register round-trip, again with unfused-identical charging;
//! * **fused φ-resolution**: per-(block, predecessor) edge tables of
//!   register-to-register moves (`PhiEdge`), applied per predecessor
//!   *bucket* of lanes at block entry — replacing the per-φ, per-lane
//!   linear search over incoming lists;
//! * **block-fallthrough elimination**: every `jump`/`br` target carries
//!   the pre-computed op index to resume at (`BcBlock::entry_pc`), so
//!   straight-line control transfers stay inside the dispatch loop with
//!   no stack traffic (the `jump` itself is still charged — the cycle
//!   model is untouched).
//!
//! The lowering preserves the decoded tier's semantics bit-for-bit:
//! identical buffer contents, identical [`crate::KernelStats`], identical
//! [`crate::SimError`] values (including error ordering relative to
//! instruction-budget exhaustion and partial buffer writes). The
//! differential suites in `tests/` hold all three tiers to that contract.

use crate::decoded::{DOperand, PreparedKernel, BLOCK_ENTRY, NO_BLOCK, NO_DST};
use crate::mem::RawVal;
use darm_ir::{FcmpPred, Function, IcmpPred, Opcode, Type};

/// One fixed-width bytecode op. All `u32` fields are register slots unless
/// named `*_block` (dense block index) or `*_pc` (absolute op index).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    Add {
        d: u32,
        a: u32,
        b: u32,
    },
    Sub {
        d: u32,
        a: u32,
        b: u32,
    },
    Mul {
        d: u32,
        a: u32,
        b: u32,
    },
    And {
        d: u32,
        a: u32,
        b: u32,
    },
    Or {
        d: u32,
        a: u32,
        b: u32,
    },
    Xor {
        d: u32,
        a: u32,
        b: u32,
    },
    Shl {
        d: u32,
        a: u32,
        b: u32,
    },
    LShr {
        d: u32,
        a: u32,
        b: u32,
    },
    AShr {
        d: u32,
        a: u32,
        b: u32,
    },
    /// `SDiv`/`SRem`/`UDiv`/`URem`; `ty` picks the result width.
    Div {
        op: Opcode,
        ty: Type,
        d: u32,
        a: u32,
        b: u32,
    },
    FAdd {
        d: u32,
        a: u32,
        b: u32,
    },
    FSub {
        d: u32,
        a: u32,
        b: u32,
    },
    FMul {
        d: u32,
        a: u32,
        b: u32,
    },
    FDiv {
        d: u32,
        a: u32,
        b: u32,
    },
    FSqrt {
        d: u32,
        a: u32,
    },
    FAbs {
        d: u32,
        a: u32,
    },
    FNeg {
        d: u32,
        a: u32,
    },
    FExp {
        d: u32,
        a: u32,
    },
    Icmp {
        p: IcmpPred,
        d: u32,
        a: u32,
        b: u32,
    },
    Fcmp {
        p: FcmpPred,
        d: u32,
        a: u32,
        b: u32,
    },
    Select {
        d: u32,
        c: u32,
        a: u32,
        b: u32,
    },
    ZextSext {
        zext: bool,
        ty: Type,
        d: u32,
        a: u32,
    },
    Trunc {
        ty: Type,
        d: u32,
        a: u32,
    },
    SiToFp {
        d: u32,
        a: u32,
    },
    FpToSi {
        ty: Type,
        d: u32,
        a: u32,
    },
    Gep {
        elem: u64,
        d: u32,
        a: u32,
        b: u32,
    },
    Load {
        ty: Type,
        d: u32,
        a: u32,
    },
    Store {
        v: u32,
        a: u32,
    },
    /// Fused `gep` + `load` through the computed address. `gd` is
    /// [`NO_DST`] when nothing besides the load reads the address.
    GepLoad {
        elem: u64,
        gd: u32,
        ga: u32,
        gb: u32,
        ty: Type,
        d: u32,
    },
    /// Fused `gep` + `store` through the computed address; same `gd`
    /// elision rule as [`Op::GepLoad`].
    GepStore {
        elem: u64,
        gd: u32,
        ga: u32,
        gb: u32,
        v: u32,
    },
    ThreadIdx {
        dim: darm_ir::Dim,
        d: u32,
    },
    BlockIdx {
        dim: darm_ir::Dim,
        d: u32,
    },
    BlockDim {
        dim: darm_ir::Dim,
        d: u32,
    },
    GridDim {
        dim: darm_ir::Dim,
        d: u32,
    },
    SharedBase {
        off: u64,
        d: u32,
    },
    Ballot {
        d: u32,
        a: u32,
    },
    Sync,
    Ret,
    Jump {
        t_block: u32,
        t_pc: u32,
    },
    Br {
        c: u32,
        t_block: u32,
        t_pc: u32,
        e_block: u32,
        e_pc: u32,
    },
    /// Fused `icmp` + `br`. `d` is [`NO_DST`] when the compare result has
    /// no reader besides the branch.
    CmpBr {
        p: IcmpPred,
        d: u32,
        a: u32,
        b: u32,
        t_block: u32,
        t_pc: u32,
        e_block: u32,
        e_pc: u32,
    },
}

/// Per-block metadata for the bytecode stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BcBlock {
    /// First op of the block body (index into [`BytecodeKernel::code`]).
    pub first: u32,
    /// Where a control transfer into this block resumes: [`BLOCK_ENTRY`]
    /// when the block has φs (forcing φ resolution), else `first`.
    pub entry_pc: u32,
    /// Immediate post-dominator (dense), or [`NO_BLOCK`].
    pub ipdom: u32,
    /// φ edge tables of this block (range into [`BytecodeKernel::phi_edges`]).
    pub phi_start: u32,
    pub phi_end: u32,
    /// Whether any φ move source is also a φ destination of this block —
    /// forces the staged (parallel-move) application path.
    pub phi_overlap: bool,
}

/// φ moves for one (block, predecessor) CFG edge: applying
/// `phi_moves[m_start..m_end]` to a lane that arrived from `pred`
/// resolves every φ of the block at once.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PhiEdge {
    /// Dense index of the predecessor block.
    pub pred: u32,
    pub m_start: u32,
    pub m_end: u32,
    /// False if some φ of the block has no incoming for `pred` (invalid
    /// SSA input — executing the edge is the same runtime error the
    /// decoded tier raises).
    pub complete: bool,
}

/// A kernel lowered to the flat register bytecode — the fastest execution
/// tier, run by [`crate::Gpu::launch_bytecode`].
///
/// Compiles from a [`Function`] (via [`BytecodeKernel::new`]) or from an
/// existing [`PreparedKernel`] (via [`BytecodeKernel::from_prepared`]);
/// borrows nothing, so compile once and launch any number of times. See
/// the [module docs](self) for what the lowering does and the
/// [`crate::backend`] module for the backend contract it satisfies.
#[derive(Debug, Clone)]
pub struct BytecodeKernel {
    pub(crate) name: String,
    pub(crate) params: Vec<Type>,
    /// Register-file slots per thread: the decoded tier's dense result
    /// slots first, then the materialized constant/parameter slots.
    pub(crate) n_slots: u32,
    /// Count of the program-writable slot prefix (`[0, program_slots)`).
    /// Slots above it hold constants/parameters, which no op ever writes —
    /// so they are materialized once per launch and survive the per-block
    /// register reset.
    pub(crate) program_slots: u32,
    pub(crate) code: Vec<Op>,
    /// Per-op issue latency, parallel to `code`. A fused [`Op::CmpBr`]
    /// carries the compare latency plus the branch latency (the split is
    /// unobservable: stats are discarded on error, and the budget — which
    /// *is* observable — is charged separately).
    pub(crate) lats: Vec<u64>,
    pub(crate) blocks: Vec<BcBlock>,
    /// `(slot, value)` constants to materialize per thread per block launch.
    pub(crate) consts: Vec<(u32, RawVal)>,
    /// `(slot, param index)` parameters to materialize likewise.
    pub(crate) param_slots: Vec<(u32, u32)>,
    pub(crate) phi_edges: Vec<PhiEdge>,
    /// `(dst slot, src slot)` φ moves, grouped per [`PhiEdge`].
    pub(crate) phi_moves: Vec<(u32, u32)>,
    /// `(block, φ ordinal, pred)` triples for φs that lack an incoming for
    /// a CFG predecessor. Almost always empty; consulted only on the error
    /// path to reproduce the decoded engine's exact φ-major error order.
    pub(crate) phi_missing: Vec<(u32, u32, u32)>,
    /// Block labels, for diagnostics only.
    pub(crate) block_names: Vec<String>,
    pub(crate) entry: u32,
    pub(crate) shared_size: u64,
    /// Whether terminators must record per-lane provenance. Only φs read
    /// it, so a φ-free kernel skips the bookkeeping entirely. (Per-branch
    /// elision would be unsound: a lane that returns inside a divergent
    /// arm is resurrected at the reconvergence point, where a φ may read
    /// a `prev` recorded arbitrarily far away.)
    pub(crate) track_prev: bool,
}

/// Bit-exact identity for constant dedup (`f32` by bit pattern, so `0.0`
/// and `-0.0` stay distinct and NaNs compare by payload).
fn imm_bits(v: RawVal) -> (u8, u64) {
    match v {
        RawVal::I1(b) => (0, b as u64),
        RawVal::I32(x) => (1, x as u32 as u64),
        RawVal::I64(x) => (2, x as u64),
        RawVal::F32(f) => (3, f.to_bits() as u64),
        RawVal::Ptr(p) => (4, p),
        RawVal::Undef => (5, 0),
    }
}

/// Allocates constant/parameter register slots above the decoded tier's
/// dense result slots.
struct SlotAlloc {
    n_slots: u32,
    consts: Vec<(u32, RawVal)>,
    param_slots: Vec<(u32, u32)>,
}

impl SlotAlloc {
    fn slot(&mut self, op: DOperand) -> u32 {
        match op {
            DOperand::Reg(s) => s,
            DOperand::Param(i) => {
                if let Some(&(s, _)) = self.param_slots.iter().find(|&&(_, pi)| pi == i) {
                    return s;
                }
                let s = self.n_slots;
                self.n_slots += 1;
                self.param_slots.push((s, i));
                s
            }
            DOperand::Imm(v) => {
                let key = imm_bits(v);
                if let Some(&(s, _)) = self.consts.iter().find(|&&(_, c)| imm_bits(c) == key) {
                    return s;
                }
                let s = self.n_slots;
                self.n_slots += 1;
                self.consts.push((s, v));
                s
            }
        }
    }
}

impl BytecodeKernel {
    /// Compiles `func` down both tiers: decode, then bytecode lowering.
    pub fn new(func: &Function) -> BytecodeKernel {
        BytecodeKernel::from_prepared(&PreparedKernel::new(func))
    }

    /// Lowers an already-decoded kernel to bytecode.
    pub fn from_prepared(pk: &PreparedKernel) -> BytecodeKernel {
        let mut alloc = SlotAlloc {
            n_slots: pk.n_slots,
            consts: Vec::new(),
            param_slots: Vec::new(),
        };

        // Register use counts, to keep a fused compare's destination write
        // when anything besides its branch reads it.
        let mut uses = vec![0u32; pk.n_slots as usize];
        let mut bump = |op: DOperand| {
            if let DOperand::Reg(s) = op {
                uses[s as usize] += 1;
            }
        };
        for inst in &pk.insts {
            for op in inst.ops {
                bump(op);
            }
        }
        for &(_, op) in &pk.phi_incomings {
            bump(op);
        }

        let mut code: Vec<Op> = Vec::with_capacity(pk.insts.len());
        let mut lats: Vec<u64> = Vec::with_capacity(pk.insts.len());
        let mut blocks: Vec<BcBlock> = Vec::with_capacity(pk.blocks.len());
        let mut phi_edges: Vec<PhiEdge> = Vec::new();
        let mut phi_moves: Vec<(u32, u32)> = Vec::new();
        let mut phi_missing: Vec<(u32, u32, u32)> = Vec::new();

        for db in &pk.blocks {
            // φ tables → per-predecessor move lists.
            let phis = &pk.phis[db.phi_start as usize..db.phi_end as usize];
            let phi_start = phi_edges.len() as u32;
            let block_moves_start = phi_moves.len();
            if !phis.is_empty() {
                let mut preds: Vec<u32> = Vec::new();
                for phi in phis {
                    for &(p, _) in &pk.phi_incomings[phi.inc_start as usize..phi.inc_end as usize] {
                        if !preds.contains(&p) {
                            preds.push(p);
                        }
                    }
                }
                for &p in &preds {
                    let m_start = phi_moves.len() as u32;
                    let mut complete = true;
                    for (k, phi) in phis.iter().enumerate() {
                        let incs = &pk.phi_incomings[phi.inc_start as usize..phi.inc_end as usize];
                        match incs.iter().find(|&&(q, _)| q == p) {
                            Some(&(_, op)) => phi_moves.push((phi.dst, alloc.slot(op))),
                            None => {
                                complete = false;
                                phi_missing.push((blocks.len() as u32, k as u32, p));
                            }
                        }
                    }
                    phi_edges.push(PhiEdge {
                        pred: p,
                        m_start,
                        m_end: phi_moves.len() as u32,
                        complete,
                    });
                }
            }
            let phi_end = phi_edges.len() as u32;
            let phi_overlap = phi_moves[block_moves_start..]
                .iter()
                .any(|&(_, s)| phis.iter().any(|phi| phi.dst == s));

            // Body → ops (with compare-and-branch fusion).
            let first = code.len() as u32;
            let insts = &pk.insts[db.first as usize..db.end as usize];
            for inst in insts {
                let op = lower_inst(inst, &mut alloc, &uses, &mut code, first);
                let lat = match op {
                    // Fusion popped the compare; fold its latency in.
                    Op::CmpBr { .. } => lats.pop().expect("fused compare emitted") + inst.latency,
                    // A fused gep+mem op keeps only the gep's ALU latency:
                    // the memory half's cycles come from the cost model,
                    // exactly as they would unfused.
                    Op::GepLoad { .. } | Op::GepStore { .. } => {
                        lats.pop().expect("fused gep emitted")
                    }
                    _ => inst.latency,
                };
                code.push(op);
                lats.push(lat);
            }
            blocks.push(BcBlock {
                first,
                entry_pc: if phis.is_empty() { first } else { BLOCK_ENTRY },
                ipdom: db.ipdom,
                phi_start,
                phi_end,
                phi_overlap,
            });
        }

        // Patch branch targets with the target block's resume pc, now that
        // every block's layout is known.
        for op in &mut code {
            match op {
                Op::Jump { t_block, t_pc } => *t_pc = blocks[*t_block as usize].entry_pc,
                Op::Br {
                    t_block,
                    t_pc,
                    e_block,
                    e_pc,
                    ..
                }
                | Op::CmpBr {
                    t_block,
                    t_pc,
                    e_block,
                    e_pc,
                    ..
                } => {
                    *t_pc = blocks[*t_block as usize].entry_pc;
                    *e_pc = blocks[*e_block as usize].entry_pc;
                }
                _ => {}
            }
        }

        BytecodeKernel {
            name: pk.name.clone(),
            params: pk.params.clone(),
            n_slots: alloc.n_slots,
            program_slots: pk.n_slots,
            code,
            lats,
            blocks,
            consts: alloc.consts,
            param_slots: alloc.param_slots,
            phi_edges,
            phi_moves,
            phi_missing,
            block_names: pk.block_names.clone(),
            entry: pk.entry,
            shared_size: pk.shared_size,
            track_prev: !pk.phis.is_empty(),
        }
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter types of the kernel signature.
    pub fn params(&self) -> &[Type] {
        &self.params
    }

    /// Number of bytecode ops (compare-and-branch fusions count once) —
    /// a code-size metric for reporting.
    pub fn op_count(&self) -> usize {
        self.code.len()
    }

    /// Per-thread register file size in slots, constant/parameter slots
    /// included.
    pub fn register_slots(&self) -> usize {
        self.n_slots as usize
    }

    pub(crate) fn block_name(&self, dense: u32) -> &str {
        if dense == NO_BLOCK {
            "<none>"
        } else {
            &self.block_names[dense as usize]
        }
    }
}

/// Lowers one decoded instruction record, fusing a terminating `br` with
/// the `icmp` just emitted when the compare feeds the branch.
fn lower_inst(
    inst: &crate::decoded::DInst,
    alloc: &mut SlotAlloc,
    uses: &[u32],
    code: &mut Vec<Op>,
    block_first: u32,
) -> Op {
    use Opcode as O;
    let d = inst.dst;
    let mut s = |k: usize| alloc.slot(inst.ops[k]);
    match inst.opcode {
        O::Add => Op::Add {
            d,
            a: s(0),
            b: s(1),
        },
        O::Sub => Op::Sub {
            d,
            a: s(0),
            b: s(1),
        },
        O::Mul => Op::Mul {
            d,
            a: s(0),
            b: s(1),
        },
        O::And => Op::And {
            d,
            a: s(0),
            b: s(1),
        },
        O::Or => Op::Or {
            d,
            a: s(0),
            b: s(1),
        },
        O::Xor => Op::Xor {
            d,
            a: s(0),
            b: s(1),
        },
        O::Shl => Op::Shl {
            d,
            a: s(0),
            b: s(1),
        },
        O::LShr => Op::LShr {
            d,
            a: s(0),
            b: s(1),
        },
        O::AShr => Op::AShr {
            d,
            a: s(0),
            b: s(1),
        },
        O::SDiv | O::SRem | O::UDiv | O::URem => Op::Div {
            op: inst.opcode,
            ty: inst.ty,
            d,
            a: s(0),
            b: s(1),
        },
        O::FAdd => Op::FAdd {
            d,
            a: s(0),
            b: s(1),
        },
        O::FSub => Op::FSub {
            d,
            a: s(0),
            b: s(1),
        },
        O::FMul => Op::FMul {
            d,
            a: s(0),
            b: s(1),
        },
        O::FDiv => Op::FDiv {
            d,
            a: s(0),
            b: s(1),
        },
        O::FSqrt => Op::FSqrt { d, a: s(0) },
        O::FAbs => Op::FAbs { d, a: s(0) },
        O::FNeg => Op::FNeg { d, a: s(0) },
        O::FExp => Op::FExp { d, a: s(0) },
        O::Icmp(p) => Op::Icmp {
            p,
            d,
            a: s(0),
            b: s(1),
        },
        O::Fcmp(p) => Op::Fcmp {
            p,
            d,
            a: s(0),
            b: s(1),
        },
        O::Select => Op::Select {
            d,
            c: s(0),
            a: s(1),
            b: s(2),
        },
        O::Zext | O::Sext => Op::ZextSext {
            zext: inst.opcode == O::Zext,
            ty: inst.ty,
            d,
            a: s(0),
        },
        O::Trunc => Op::Trunc {
            ty: inst.ty,
            d,
            a: s(0),
        },
        O::SiToFp => Op::SiToFp { d, a: s(0) },
        O::FpToSi => Op::FpToSi {
            ty: inst.ty,
            d,
            a: s(0),
        },
        O::Gep { .. } => Op::Gep {
            elem: inst.aux,
            d,
            a: s(0),
            b: s(1),
        },
        O::Load => {
            // Fuse with the gep emitted immediately before when it computes
            // this load's address (same shape as compare-and-branch fusion).
            if let DOperand::Reg(addr) = inst.ops[0] {
                if code.len() as u32 > block_first {
                    if let Some(&Op::Gep { elem, d: gd, a, b }) = code.last() {
                        if gd == addr {
                            code.pop();
                            let keep = if uses[gd as usize] > 1 { gd } else { NO_DST };
                            return Op::GepLoad {
                                elem,
                                gd: keep,
                                ga: a,
                                gb: b,
                                ty: inst.ty,
                                d,
                            };
                        }
                    }
                }
            }
            Op::Load {
                ty: inst.ty,
                d,
                a: s(0),
            }
        }
        O::Store => {
            let v = s(0);
            if let DOperand::Reg(addr) = inst.ops[1] {
                if code.len() as u32 > block_first {
                    if let Some(&Op::Gep { elem, d: gd, a, b }) = code.last() {
                        if gd == addr {
                            code.pop();
                            let keep = if uses[gd as usize] > 1 { gd } else { NO_DST };
                            return Op::GepStore {
                                elem,
                                gd: keep,
                                ga: a,
                                gb: b,
                                v,
                            };
                        }
                    }
                }
            }
            Op::Store { v, a: s(1) }
        }
        O::ThreadIdx(dim) => Op::ThreadIdx { dim, d },
        O::BlockIdx(dim) => Op::BlockIdx { dim, d },
        O::BlockDim(dim) => Op::BlockDim { dim, d },
        O::GridDim(dim) => Op::GridDim { dim, d },
        O::SharedBase(_) => Op::SharedBase { off: inst.aux, d },
        O::Ballot => Op::Ballot { d, a: s(0) },
        O::Syncthreads => Op::Sync,
        O::Ret => Op::Ret,
        O::Jump => Op::Jump {
            t_block: inst.succs[0],
            t_pc: 0,
        },
        O::Br => {
            let (t_block, e_block) = (inst.succs[0], inst.succs[1]);
            // Fuse with the compare emitted immediately before, inside this
            // block, when it defines the branch condition.
            if inst.cond_slot != NO_DST && code.len() as u32 > block_first {
                if let Some(&Op::Icmp { p, d: cd, a, b }) = code.last() {
                    if cd == inst.cond_slot {
                        code.pop();
                        // `uses` counts the branch's own read; > 1 means
                        // someone else reads the compare result too.
                        let keep = if uses[cd as usize] > 1 { cd } else { NO_DST };
                        return Op::CmpBr {
                            p,
                            d: keep,
                            a,
                            b,
                            t_block,
                            t_pc: 0,
                            e_block,
                            e_pc: 0,
                        };
                    }
                }
            }
            Op::Br {
                c: alloc.slot(inst.ops[0]),
                t_block,
                t_pc: 0,
                e_block,
                e_pc: 0,
            }
        }
        O::Phi => unreachable!("phis live in the phi tables, not the instruction stream"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{AddrSpace, Dim, IcmpPred};

    fn diamond() -> Function {
        let mut f = Function::new("d", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let c = b.icmp(IcmpPred::Slt, tid, b.const_i32(4));
        b.br(c, t, e);
        b.switch_to(t);
        let v1 = b.mul(tid, b.const_i32(2));
        b.jump(x);
        b.switch_to(e);
        let v2 = b.add(tid, b.const_i32(5));
        b.jump(x);
        b.switch_to(x);
        let v = b.phi(Type::I32, &[(t, v1), (e, v2)]);
        let p = b.gep(Type::I32, b.param(0), tid);
        b.store(v, p);
        b.ret(None);
        f
    }

    #[test]
    fn compare_branch_fuses_and_elides_dead_dst() {
        let f = diamond();
        let bk = BytecodeKernel::new(&f);
        // entry lowers to tid + fused cmp-br: 2 ops instead of 3.
        let entry = &bk.blocks[bk.entry as usize];
        let fused = bk.code[entry.first as usize + 1];
        let Op::CmpBr { d, .. } = fused else {
            panic!("expected fused compare-and-branch, got {fused:?}");
        };
        // Nothing but the branch reads the compare → dst elided.
        assert_eq!(d, NO_DST);
    }

    #[test]
    fn gep_store_fuses_and_elides_dead_addr() {
        let f = diamond();
        let bk = BytecodeKernel::new(&f);
        // Join block body: gep + store fuse into one op (φs live in the
        // edge tables), and nothing else reads the address register.
        let join = &bk.blocks[3];
        let fused = bk.code[join.first as usize];
        let Op::GepStore { gd, .. } = fused else {
            panic!("expected fused gep+store, got {fused:?}");
        };
        assert_eq!(gd, NO_DST);
    }

    #[test]
    fn constants_and_params_get_dedicated_slots() {
        let f = diamond();
        let pk = PreparedKernel::new(&f);
        let bk = BytecodeKernel::from_prepared(&pk);
        // 6 result slots + consts {4, 2, 5} + param 0.
        assert_eq!(bk.register_slots(), pk.register_slots() + 4);
        assert_eq!(bk.consts.len(), 3);
        assert_eq!(bk.param_slots.len(), 1);
    }

    #[test]
    fn phi_edges_cover_both_predecessors() {
        let f = diamond();
        let bk = BytecodeKernel::new(&f);
        let join = &bk.blocks[3];
        assert_eq!(join.phi_end - join.phi_start, 2);
        assert!(bk.phi_edges[join.phi_start as usize].complete);
        assert_eq!(join.entry_pc, BLOCK_ENTRY);
        assert!(!join.phi_overlap);
        assert!(bk.track_prev);
    }

    #[test]
    fn jump_targets_carry_resume_pcs() {
        let f = diamond();
        let bk = BytecodeKernel::new(&f);
        let join_entry = bk.blocks[3].entry_pc;
        for op in &bk.code {
            if let Op::Jump { t_block, t_pc } = op {
                assert_eq!(*t_block, 3);
                assert_eq!(*t_pc, join_entry);
            }
        }
    }
}
