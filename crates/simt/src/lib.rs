#![warn(missing_docs)]

//! # darm-simt
//!
//! A SIMT GPU execution simulator for [`darm_ir`] kernels — the testbed that
//! replaces the paper's AMD Radeon Pro Vega 20 + rocprof setup.
//!
//! The simulator executes kernels exactly the way §I/§II of the paper
//! describe SIMT hardware:
//!
//! * threads are grouped into **warps** that execute in lockstep, one
//!   instruction at a time, over the active lanes;
//! * at a divergent branch the warp's **reconvergence stack** serializes the
//!   two paths and reconverges at the branch's **immediate post-dominator**
//!   (IPDOM);
//! * each dynamically issued warp instruction is charged its static latency;
//!   global-memory accesses additionally pay per 128-byte segment touched
//!   (the coalescing model), while shared-memory (LDS) accesses pay a flat
//!   cost — making divergent LDS instructions exactly the melding wins the
//!   paper reports (§VI-D);
//! * rocprof-style counters are collected: total cycles, ALU utilization,
//!   and vector/shared memory instruction counts (Figures 9–11).
//!
//! ## Four layers: reference → decoded → bytecode → timing observer
//!
//! The crate is organized as three bit-identical *execution* tiers plus
//! one optional *observation* layer. Kernels lower through up to two
//! compile tiers before execution:
//!
//! 1. **decode** — [`PreparedKernel`] lowers a [`darm_ir::Function`] once
//!    into flat arrays: dense instruction records with operands
//!    pre-resolved to register slots / immediates / parameter indices,
//!    per-block instruction ranges, φ tables keyed by predecessor block,
//!    and the cached CFG/post-dominator facts (the IPDOM of every block)
//!    that reconvergence needs. Its execute loop
//!    ([`Gpu::launch_prepared`]) dispatches each opcode **once per warp
//!    instruction**, iterating the active-mask lanes inside the handler —
//!    instead of re-matching the opcode per lane against the IR arena the
//!    way the seed interpreter did.
//! 2. **bytecode** — [`BytecodeKernel`] lowers the decoded records once
//!    more into a flat, fixed-width register bytecode: constants and
//!    parameters are folded into dedicated register slots (so every
//!    operand read is a plain indexed load), an `icmp` feeding its
//!    block's `br` fuses into one compare-and-branch op, φ batches become
//!    per-predecessor move tables, and every branch target carries its
//!    pre-computed resume pc so taken control flow never touches the
//!    reconvergence stack. Its execute loop ([`Gpu::launch_bytecode`]) is
//!    a single dense `match` per warp instruction — the fastest tier.
//!
//! All tiers — the two above plus the retained seed interpreter
//! ([`Gpu::launch_reference`]) — are **bit-identical** in output buffers,
//! [`KernelStats`], and [`SimError`]s; they differ only in throughput.
//!
//! The fourth layer is not an engine at all: the **timing observer**
//! ([`timing`], enabled with [`TimingConfig`] via [`GpuConfig::timing`])
//! rides along inside the decoded and bytecode engines and reconstructs a
//! cycle-accurate per-warp timeline — IPDOM reconvergence-stack pushes
//! and pops, `ceil(active/issue_width)` issue slots, function-unit
//! latencies with a register scoreboard, and an optional
//! coalescing/bank-conflict memory occupancy model — into the `sim_*`
//! fields of [`KernelStats`]. It is a pure observer: switching it on
//! changes no buffers, no base counters, and no errors, and both engines
//! fire the same hook sequence so the simulated cycles are themselves
//! bit-identical across tiers. (The reference interpreter predates the
//! hook points and always reports `sim_* = 0`; use either faster tier
//! for timing runs.)
//!
//! The [`backend`] module packages the choice as [`BackendKind`] and the
//! compile-then-execute shape as the [`Backend`] / [`CompiledKernel`]
//! traits (lane-major register file `thread * n_slots + slot`,
//! [`KernelStats`] as the shared stats sink) — the seam a future JIT tier
//! plugs into; [`Gpu::launch_with`] selects a tier per launch and the
//! `darm` CLI exposes the same choice as `--backend`.
//!
//! A `PreparedKernel` (and a `BytecodeKernel` — same API shape) borrows
//! nothing, so the compile work — including the dominator analysis — is
//! paid once per kernel and reused across launches and launch geometries:
//!
//! ```
//! # use darm_simt::{Gpu, GpuConfig, LaunchConfig, KernelArg};
//! # use darm_ir::{builder::FunctionBuilder, Function, Type, AddrSpace, Dim};
//! # let mut f = Function::new("id", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
//! # let e = f.entry();
//! # let mut b = FunctionBuilder::new(&mut f, e);
//! # let tid = b.thread_idx(Dim::X);
//! # let p = b.gep(Type::I32, b.param(0), tid);
//! # b.store(tid, p);
//! # b.ret(None);
//! let mut gpu = Gpu::new(GpuConfig::default());
//! let kernel = darm_simt::PreparedKernel::new(&f); // decode once ...
//! let buf = gpu.alloc_i32(&[0; 64]);
//! for _ in 0..3 {
//!     // ... launch many times
//!     gpu.launch_prepared(&kernel, &LaunchConfig::linear(1, 64), &[KernelArg::Buffer(buf)]).unwrap();
//! }
//! ```
//!
//! The original arena-walking, per-lane interpreter is retained in
//! [`reference`](mod@reference) behind [`Gpu::launch_reference`]: the
//! `decoded_vs_reference` differential test proves all three engines
//! produce bit-identical buffer contents and [`KernelStats`] on the full
//! benchmark kernel suite (a property-based test does the same over
//! random divergent CFGs), and the `interp_throughput` bench measures the
//! faster tiers' speedups over it.
//!
//! ```
//! use darm_simt::{Gpu, GpuConfig, LaunchConfig, KernelArg};
//! use darm_ir::{builder::FunctionBuilder, Function, Type, AddrSpace, Dim};
//!
//! // out[tid] = tid * 2, one block of 64 threads
//! let mut f = Function::new("double", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
//! let e = f.entry();
//! let mut b = FunctionBuilder::new(&mut f, e);
//! let tid = b.thread_idx(Dim::X);
//! let two = b.const_i32(2);
//! let v = b.mul(tid, two);
//! let p = b.gep(Type::I32, b.param(0), tid);
//! b.store(v, p);
//! b.ret(None);
//!
//! let mut gpu = Gpu::new(GpuConfig::default());
//! let buf = gpu.alloc_i32(&[0; 64]);
//! let stats = gpu.launch(&f, &LaunchConfig::linear(1, 64), &[KernelArg::Buffer(buf)]).unwrap();
//! assert_eq!(gpu.read_i32(buf)[5], 10);
//! assert!(stats.cycles > 0);
//! ```

pub mod backend;
pub mod bytecode;
pub mod decoded;
pub mod exec;
pub(crate) mod exec_bc;
pub mod mem;
pub mod reference;
pub mod stats;
pub mod timing;

pub use backend::{Backend, BackendKind, CompiledKernel};
pub use bytecode::BytecodeKernel;
pub use decoded::PreparedKernel;
pub use exec::{Gpu, KernelArg, SimError};
pub use mem::BufferId;
pub use stats::KernelStats;
pub use timing::TimingConfig;

/// Hardware configuration of the simulated GPU.
#[derive(Debug, Clone, Copy)]
pub struct GpuConfig {
    /// Threads per warp (AMD wavefronts are 64 wide; 32 is the default here
    /// and matches the synthetic experiments' smallest block size).
    pub warp_size: u32,
    /// Safety limit on dynamically issued warp instructions per launch.
    pub max_warp_instructions: u64,
    /// Cycle-level timing model (see [`timing`]); off by default, in which
    /// case launches are bit-identical to a build without the model.
    pub timing: TimingConfig,
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        GpuConfig {
            warp_size: 32,
            max_warp_instructions: 1 << 32,
            timing: TimingConfig::default(),
        }
    }
}

/// Grid/block geometry of a kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchConfig {
    /// Blocks in the grid `(x, y)`.
    pub grid: (u32, u32),
    /// Threads per block `(x, y)`.
    pub block: (u32, u32),
}

impl LaunchConfig {
    /// A 1-D launch: `grid_x` blocks of `block_x` threads.
    pub fn linear(grid_x: u32, block_x: u32) -> LaunchConfig {
        LaunchConfig {
            grid: (grid_x, 1),
            block: (block_x, 1),
        }
    }

    /// A 2-D launch.
    pub fn grid2d(grid: (u32, u32), block: (u32, u32)) -> LaunchConfig {
        LaunchConfig { grid, block }
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.0 * self.block.1
    }

    /// Total thread count of the launch.
    pub fn total_threads(&self) -> u64 {
        self.threads_per_block() as u64 * self.grid.0 as u64 * self.grid.1 as u64
    }
}
