//! The SIMT interpreter: lockstep warp execution with IPDOM reconvergence.
//!
//! Execution is split into two phases:
//!
//! 1. **decode** — [`PreparedKernel::new`] lowers a [`Function`] into flat
//!    instruction records with pre-resolved operand slots, per-block
//!    instruction ranges, φ tables keyed by predecessor, and a cached IPDOM
//!    map (see [`crate::decoded`]);
//! 2. **execute** — the engine below walks the decoded arrays with a
//!    per-warp reconvergence stack. Opcode dispatch happens once per *warp*
//!    instruction; every handler then iterates the active-mask bits, so the
//!    per-lane work is just operand loads from a flat, lane-major register
//!    file and the arithmetic itself.
//!
//! [`Gpu::launch`] prepares and executes in one call; [`PreparedKernel::new`] +
//! [`Gpu::launch_prepared`] let callers amortize the decode across many
//! launches. [`Gpu::launch_reference`] runs the original arena-walking
//! interpreter ([`crate::reference`]) for differential testing.

use crate::decoded::{DInst, DOperand, PreparedKernel, BLOCK_ENTRY, NO_BLOCK, NO_DST};
use crate::mem::{decode, encode_global, encode_shared, BufferId, ByteStore, RawVal};
use crate::stats::KernelStats;
use crate::timing::{dinst_deps, TimingState};
use crate::{reference, GpuConfig, LaunchConfig};
use darm_ir::{Dim, Function, Opcode, Type};
use std::error::Error;
use std::fmt;

/// A kernel launch argument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelArg {
    /// A global-memory buffer, passed as a pointer to its start.
    Buffer(BufferId),
    /// Scalar `i32`.
    I32(i32),
    /// Scalar `i64`.
    I64(i64),
    /// Scalar `f32`.
    F32(f32),
}

/// Errors raised during simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Argument list does not match the kernel signature.
    BadArgs(String),
    /// A memory access fell outside its buffer or the shared arena.
    OutOfBounds(String),
    /// A branch condition, memory address, or stored value was undefined.
    UndefValue(String),
    /// Integer division by zero.
    DivByZero,
    /// The launch exceeded the configured instruction budget.
    StepLimit,
    /// Warps finished while others waited at a barrier, or a barrier was
    /// executed under a partial mask.
    BarrierDeadlock(String),
    /// A divergent branch has no IPDOM to reconverge at.
    MissingIpdom(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadArgs(m) => write!(f, "bad kernel arguments: {m}"),
            SimError::OutOfBounds(m) => write!(f, "memory access out of bounds: {m}"),
            SimError::UndefValue(m) => write!(f, "undefined value used: {m}"),
            SimError::DivByZero => write!(f, "integer division by zero"),
            SimError::StepLimit => {
                write!(f, "instruction budget exceeded (possible infinite loop)")
            }
            SimError::BarrierDeadlock(m) => write!(f, "barrier deadlock: {m}"),
            SimError::MissingIpdom(m) => {
                write!(f, "divergent branch without reconvergence point: {m}")
            }
        }
    }
}

impl Error for SimError {}

/// Validates launch arguments against a kernel signature and converts them
/// to runtime values. Shared by the decoded and reference engines.
pub(crate) fn validate_args(
    kernel_name: &str,
    params: &[Type],
    args: &[KernelArg],
    n_buffers: usize,
) -> Result<Vec<RawVal>, SimError> {
    if args.len() != params.len() {
        return Err(SimError::BadArgs(format!(
            "kernel {} expects {} arguments, got {}",
            kernel_name,
            params.len(),
            args.len()
        )));
    }
    let mut arg_vals = Vec::with_capacity(args.len());
    for (k, (&arg, &ty)) in args.iter().zip(params).enumerate() {
        let v = match (arg, ty) {
            (KernelArg::Buffer(b), Type::Ptr(_)) => {
                if b.0 as usize >= n_buffers {
                    return Err(SimError::BadArgs(format!("argument {k}: unknown buffer")));
                }
                RawVal::Ptr(encode_global(b, 0))
            }
            (KernelArg::I32(x), Type::I32) => RawVal::I32(x),
            (KernelArg::I64(x), Type::I64) => RawVal::I64(x),
            (KernelArg::F32(x), Type::F32) => RawVal::F32(x),
            _ => {
                return Err(SimError::BadArgs(format!(
                    "argument {k}: {arg:?} does not match parameter type {ty}"
                )))
            }
        };
        arg_vals.push(v);
    }
    Ok(arg_vals)
}

/// The simulated GPU: owns global memory and runs kernel launches.
#[derive(Debug)]
pub struct Gpu {
    config: GpuConfig,
    buffers: Vec<ByteStore>,
}

impl Gpu {
    /// Creates a GPU with the given configuration.
    pub fn new(config: GpuConfig) -> Gpu {
        Gpu {
            config,
            buffers: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Allocates a zero-initialized buffer of `len` bytes.
    pub fn alloc_bytes(&mut self, len: usize) -> BufferId {
        self.buffers.push(ByteStore::with_len(len));
        BufferId((self.buffers.len() - 1) as u32)
    }

    /// Allocates and initializes a buffer of `i32`s.
    pub fn alloc_i32(&mut self, data: &[i32]) -> BufferId {
        let bytes: Vec<u8> = data.iter().flat_map(|x| x.to_le_bytes()).collect();
        self.buffers.push(ByteStore::from_bytes(bytes));
        BufferId((self.buffers.len() - 1) as u32)
    }

    /// Allocates and initializes a buffer of `f32`s.
    pub fn alloc_f32(&mut self, data: &[f32]) -> BufferId {
        let bytes: Vec<u8> = data.iter().flat_map(|x| x.to_le_bytes()).collect();
        self.buffers.push(ByteStore::from_bytes(bytes));
        BufferId((self.buffers.len() - 1) as u32)
    }

    /// Reads a buffer back as `i32`s.
    pub fn read_i32(&self, buf: BufferId) -> Vec<i32> {
        self.buffers[buf.0 as usize]
            .bytes()
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Reads a buffer back as `f32`s.
    pub fn read_f32(&self, buf: BufferId) -> Vec<f32> {
        self.buffers[buf.0 as usize]
            .bytes()
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Reads a buffer back as raw bytes.
    pub fn read_bytes(&self, buf: BufferId) -> &[u8] {
        self.buffers[buf.0 as usize].bytes()
    }

    /// Overwrites a buffer with new `i32` contents (same length required).
    pub fn write_i32(&mut self, buf: BufferId, data: &[i32]) {
        let store = &mut self.buffers[buf.0 as usize];
        assert_eq!(store.len(), data.len() * 4, "buffer size mismatch");
        for (chunk, x) in store.bytes_mut().chunks_exact_mut(4).zip(data) {
            chunk.copy_from_slice(&x.to_le_bytes());
        }
    }

    /// Launches `func` over the given geometry.
    ///
    /// Convenience wrapper that decodes on every call; build a
    /// [`PreparedKernel`] once and use [`Gpu::launch_prepared`] to amortize
    /// the decode.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on signature mismatch, memory faults, barrier
    /// misuse, undefined-value misuse, or exceeding the instruction budget.
    pub fn launch(
        &mut self,
        func: &Function,
        cfg: &LaunchConfig,
        args: &[KernelArg],
    ) -> Result<KernelStats, SimError> {
        let pk = PreparedKernel::new(func);
        self.launch_prepared(&pk, cfg, args)
    }

    /// Launches an already-decoded kernel.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gpu::launch`].
    pub fn launch_prepared(
        &mut self,
        pk: &PreparedKernel,
        cfg: &LaunchConfig,
        args: &[KernelArg],
    ) -> Result<KernelStats, SimError> {
        let arg_vals = validate_args(&pk.name, &pk.params, args, self.buffers.len())?;
        let mut stats = KernelStats {
            warp_size: self.config.warp_size,
            ..Default::default()
        };
        let mut budget = self.config.max_warp_instructions;
        let threads = cfg.threads_per_block() as usize;
        // Timing observer, allocated only when enabled — the engines see
        // `None` otherwise and pay one predictable branch per charge.
        let mut timing = self.config.timing.enabled.then(|| {
            let n_warps = cfg.threads_per_block().div_ceil(self.config.warp_size) as usize;
            TimingState::new(self.config.timing, n_warps, pk.n_slots as usize)
        });
        // One flat lane-major register file, reused (re-cleared) per block.
        let mut regs = vec![RawVal::Undef; threads * pk.n_slots as usize];
        for by in 0..cfg.grid.1 {
            for bx in 0..cfg.grid.0 {
                regs.fill(RawVal::Undef);
                let mut engine = Engine {
                    buffers: &mut self.buffers,
                    warp_size: self.config.warp_size,
                    pk,
                    launch: cfg,
                    args: &arg_vals,
                    block_idx: (bx, by),
                    shared: ByteStore::with_len(pk.shared_size as usize),
                    stats: KernelStats {
                        warp_size: self.config.warp_size,
                        ..Default::default()
                    },
                    budget: &mut budget,
                    n_slots: pk.n_slots as usize,
                    phi_stage: Vec::new(),
                    lane_addrs: Vec::new(),
                    scratch: Vec::new(),
                    timing: timing.as_mut(),
                };
                engine.run(&mut regs)?;
                let mut s = engine.stats;
                if let Some(t) = timing.as_mut() {
                    t.flush_block(&mut s);
                }
                stats.merge(&s);
            }
        }
        Ok(stats)
    }

    /// Launches `func` with the original per-lane reference interpreter
    /// ([`crate::reference`]) — the semantic baseline the decoded engine is
    /// differentially tested against.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gpu::launch`].
    pub fn launch_reference(
        &mut self,
        func: &Function,
        cfg: &LaunchConfig,
        args: &[KernelArg],
    ) -> Result<KernelStats, SimError> {
        reference::launch(&mut self.buffers, &self.config, func, cfg, args)
    }

    /// Launches a kernel lowered to the flat register bytecode
    /// ([`crate::BytecodeKernel`]) — the fastest execution tier, bit-identical
    /// to the other two.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gpu::launch`].
    pub fn launch_bytecode(
        &mut self,
        bk: &crate::BytecodeKernel,
        cfg: &LaunchConfig,
        args: &[KernelArg],
    ) -> Result<KernelStats, SimError> {
        crate::exec_bc::launch(&mut self.buffers, &self.config, bk, cfg, args)
    }

    /// Compiles and launches `func` on the chosen execution backend.
    ///
    /// All three backends are bit-identical in buffers, stats, and errors;
    /// they differ only in throughput. Compilation is *not* amortized —
    /// callers launching repeatedly should compile once via
    /// [`crate::BackendKind::backend`] / [`crate::Backend::compile`] (or the
    /// concrete [`PreparedKernel::new`] / [`crate::BytecodeKernel::new`])
    /// and reuse the compiled kernel.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gpu::launch`].
    pub fn launch_with(
        &mut self,
        kind: crate::BackendKind,
        func: &Function,
        cfg: &LaunchConfig,
        args: &[KernelArg],
    ) -> Result<KernelStats, SimError> {
        match kind {
            crate::BackendKind::Reference => self.launch_reference(func, cfg, args),
            crate::BackendKind::Prepared => self.launch(func, cfg, args),
            crate::BackendKind::Bytecode => {
                let bk = crate::BytecodeKernel::new(func);
                self.launch_bytecode(&bk, cfg, args)
            }
        }
    }
}

/// One IPDOM reconvergence-stack entry. Shared by the decoded and bytecode
/// engines (`inst_idx` indexes [`PreparedKernel::insts`] for the former and
/// the flat bytecode stream for the latter).
#[derive(Debug, Clone, Copy)]
pub(crate) struct StackEntry {
    /// Dense block index.
    pub block: u32,
    /// Absolute instruction/op index, or [`BLOCK_ENTRY`] when the block's φ
    /// batch has not run yet.
    pub inst_idx: u32,
    /// Reconvergence block (dense), or [`NO_BLOCK`].
    pub rpc: u32,
    pub mask: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WarpStatus {
    Running,
    AtBarrier,
    Done,
}

pub(crate) struct WarpState {
    pub stack: Vec<StackEntry>,
    /// Last block executed, per lane (dense index) — resolves φ incomings.
    pub prev: Vec<u32>,
    pub status: WarpStatus,
    pub base_thread: u32,
}

/// Per-thread-block execution state for the decoded engine.
struct Engine<'a> {
    buffers: &'a mut Vec<ByteStore>,
    warp_size: u32,
    pk: &'a PreparedKernel,
    launch: &'a LaunchConfig,
    args: &'a [RawVal],
    block_idx: (u32, u32),
    shared: ByteStore,
    stats: KernelStats,
    budget: &'a mut u64,
    n_slots: usize,
    /// Scratch for the atomic φ batch: `(thread, slot, value)`.
    phi_stage: Vec<(u32, u32, RawVal)>,
    /// Scratch for per-lane memory addresses of the current instruction.
    lane_addrs: Vec<u64>,
    /// Scratch for the coalescing / bank-conflict model.
    scratch: Vec<u64>,
    /// Cycle-level timing observer ([`crate::timing`]); `None` unless
    /// [`crate::TimingConfig::enabled`] — pure observation either way.
    timing: Option<&'a mut TimingState>,
}

/// Resolves a pre-decoded operand for one lane. `lane_base` is the lane's
/// offset into the flat register file.
#[inline(always)]
fn resolve(op: DOperand, regs: &[RawVal], lane_base: usize, args: &[RawVal]) -> RawVal {
    match op {
        DOperand::Reg(s) => regs[lane_base + s as usize],
        DOperand::Param(i) => args[i as usize],
        DOperand::Imm(v) => v,
    }
}

/// The seed interpreter's integer-binop semantics: well-typed pairs compute,
/// everything else (type mismatches, undef) yields `Undef`.
#[inline(always)]
pub(crate) fn bin_i(a: RawVal, b: RawVal, f: impl Fn(i64, i64) -> i64) -> RawVal {
    match (a, b) {
        (RawVal::I32(a), RawVal::I32(b)) => RawVal::I32(f(a as i64, b as i64) as i32),
        (RawVal::I64(a), RawVal::I64(b)) => RawVal::I64(f(a, b)),
        (RawVal::I1(a), RawVal::I1(b)) => RawVal::I1(f(a as i64, b as i64) & 1 != 0),
        _ => RawVal::Undef,
    }
}

#[inline(always)]
pub(crate) fn bin_f(a: RawVal, b: RawVal, f: impl Fn(f32, f32) -> f32) -> RawVal {
    match (a, b) {
        (RawVal::F32(a), RawVal::F32(b)) => RawVal::F32(f(a, b)),
        _ => RawVal::Undef,
    }
}

#[inline(always)]
pub(crate) fn un_f(a: RawVal, f: impl Fn(f32) -> f32) -> RawVal {
    match a {
        RawVal::F32(a) => RawVal::F32(f(a)),
        _ => RawVal::Undef,
    }
}

// The per-opcode value semantics below are shared verbatim by the decoded
// engine (`exec_plain`) and the bytecode engine (`crate::exec_bc`), so the
// two tiers cannot drift apart.

#[inline(always)]
pub(crate) fn icmp_eval(pred: darm_ir::IcmpPred, a: RawVal, b: RawVal) -> RawVal {
    use darm_ir::IcmpPred::*;
    let cmp = |a: i64, b: i64, ua: u64, ub: u64| -> bool {
        match pred {
            Eq => a == b,
            Ne => a != b,
            Slt => a < b,
            Sle => a <= b,
            Sgt => a > b,
            Sge => a >= b,
            Ult => ua < ub,
            Ule => ua <= ub,
            Ugt => ua > ub,
            Uge => ua >= ub,
        }
    };
    match (a, b) {
        (RawVal::I32(a), RawVal::I32(b)) => {
            RawVal::I1(cmp(a as i64, b as i64, a as u32 as u64, b as u32 as u64))
        }
        (RawVal::I64(a), RawVal::I64(b)) => RawVal::I1(cmp(a, b, a as u64, b as u64)),
        (RawVal::I1(a), RawVal::I1(b)) => RawVal::I1(cmp(a as i64, b as i64, a as u64, b as u64)),
        (RawVal::Ptr(a), RawVal::Ptr(b)) => RawVal::I1(cmp(a as i64, b as i64, a, b)),
        _ => RawVal::Undef,
    }
}

#[inline(always)]
pub(crate) fn fcmp_eval(pred: darm_ir::FcmpPred, a: RawVal, b: RawVal) -> RawVal {
    use darm_ir::FcmpPred::*;
    match (a, b) {
        (RawVal::F32(a), RawVal::F32(b)) => RawVal::I1(match pred {
            Oeq => a == b,
            One => a != b,
            Olt => a < b,
            Ole => a <= b,
            Ogt => a > b,
            Oge => a >= b,
        }),
        _ => RawVal::Undef,
    }
}

#[inline(always)]
pub(crate) fn shl_eval(a: RawVal, b: RawVal) -> RawVal {
    match (a, b) {
        (RawVal::I32(a), RawVal::I32(b)) => RawVal::I32(a.wrapping_shl(b as u32)),
        (RawVal::I64(a), RawVal::I64(b)) => RawVal::I64(a.wrapping_shl(b as u32)),
        _ => RawVal::Undef,
    }
}

#[inline(always)]
pub(crate) fn lshr_eval(a: RawVal, b: RawVal) -> RawVal {
    match (a, b) {
        (RawVal::I32(a), RawVal::I32(b)) => RawVal::I32(((a as u32).wrapping_shr(b as u32)) as i32),
        (RawVal::I64(a), RawVal::I64(b)) => RawVal::I64(((a as u64).wrapping_shr(b as u32)) as i64),
        _ => RawVal::Undef,
    }
}

#[inline(always)]
pub(crate) fn ashr_eval(a: RawVal, b: RawVal) -> RawVal {
    match (a, b) {
        (RawVal::I32(a), RawVal::I32(b)) => RawVal::I32(a.wrapping_shr(b as u32)),
        (RawVal::I64(a), RawVal::I64(b)) => RawVal::I64(a.wrapping_shr(b as u32)),
        _ => RawVal::Undef,
    }
}

/// Division family. Returns `Err(DivByZero)` on a well-typed zero divisor;
/// undef or mistyped operands yield `Undef` (seed-interpreter semantics).
#[inline(always)]
pub(crate) fn div_eval(opcode: Opcode, ty: Type, x: RawVal, y: RawVal) -> Result<RawVal, SimError> {
    use Opcode::*;
    if matches!(x, RawVal::Undef) || matches!(y, RawVal::Undef) {
        return Ok(RawVal::Undef);
    }
    let (a, b) = match (x, y) {
        (RawVal::I32(a), RawVal::I32(b)) => (a as i64, b as i64),
        (RawVal::I64(a), RawVal::I64(b)) => (a, b),
        _ => return Ok(RawVal::Undef),
    };
    if b == 0 {
        return Err(SimError::DivByZero);
    }
    let r = match opcode {
        SDiv => a.wrapping_div(b),
        SRem => a.wrapping_rem(b),
        UDiv => ((a as u64) / (b as u64)) as i64,
        URem => ((a as u64) % (b as u64)) as i64,
        _ => unreachable!(),
    };
    Ok(match ty {
        Type::I32 => RawVal::I32(r as i32),
        _ => RawVal::I64(r),
    })
}

#[inline(always)]
pub(crate) fn select_eval(c: RawVal, t: RawVal, e: RawVal) -> RawVal {
    match c {
        RawVal::I1(true) => t,
        RawVal::I1(false) => e,
        _ => RawVal::Undef,
    }
}

#[inline(always)]
pub(crate) fn zext_sext_eval(zext: bool, ty: Type, a: RawVal) -> RawVal {
    match a {
        RawVal::I1(b) => {
            let x = if zext { b as i64 } else { -(b as i64) };
            match ty {
                Type::I32 => RawVal::I32(x as i32),
                Type::I64 => RawVal::I64(x),
                _ => RawVal::Undef,
            }
        }
        RawVal::I32(v) => {
            let x = if zext { v as u32 as i64 } else { v as i64 };
            match ty {
                Type::I64 => RawVal::I64(x),
                Type::I32 => RawVal::I32(v),
                _ => RawVal::Undef,
            }
        }
        _ => RawVal::Undef,
    }
}

#[inline(always)]
pub(crate) fn trunc_eval(ty: Type, a: RawVal) -> RawVal {
    match a {
        RawVal::I64(v) => match ty {
            Type::I32 => RawVal::I32(v as i32),
            Type::I1 => RawVal::I1(v & 1 != 0),
            _ => RawVal::Undef,
        },
        RawVal::I32(v) => match ty {
            Type::I1 => RawVal::I1(v & 1 != 0),
            _ => RawVal::Undef,
        },
        _ => RawVal::Undef,
    }
}

#[inline(always)]
pub(crate) fn sitofp_eval(a: RawVal) -> RawVal {
    match a {
        RawVal::I32(v) => RawVal::F32(v as f32),
        RawVal::I64(v) => RawVal::F32(v as f32),
        _ => RawVal::Undef,
    }
}

#[inline(always)]
pub(crate) fn fptosi_eval(ty: Type, a: RawVal) -> RawVal {
    match a {
        RawVal::F32(v) => match ty {
            Type::I32 => RawVal::I32(v as i32),
            Type::I64 => RawVal::I64(v as i64),
            _ => RawVal::Undef,
        },
        _ => RawVal::Undef,
    }
}

#[inline(always)]
pub(crate) fn gep_eval(elem_size: u64, base: RawVal, idx: RawVal) -> RawVal {
    match (base, idx.as_i64_index()) {
        (RawVal::Ptr(base), Some(idx)) => {
            RawVal::Ptr(base.wrapping_add((idx as u64).wrapping_mul(elem_size)))
        }
        _ => RawVal::Undef,
    }
}

/// Typed read from a global buffer or the block's shared arena. Shared by
/// both engines (the reference interpreter keeps its own copy).
#[inline(always)]
pub(crate) fn mem_read_at(
    buffers: &[ByteStore],
    shared: &ByteStore,
    ty: Type,
    addr: u64,
) -> Result<RawVal, SimError> {
    let (buf, off) = decode(addr);
    let store = match buf {
        Some(b) => buffers
            .get(b.0 as usize)
            .ok_or_else(|| SimError::OutOfBounds(format!("unknown buffer in address {addr:#x}")))?,
        None => shared,
    };
    store.read(ty, off).ok_or_else(|| {
        SimError::OutOfBounds(format!(
            "read of {ty} at offset {off} (len {})",
            store.len()
        ))
    })
}

/// Typed write to a global buffer or the block's shared arena.
#[inline(always)]
pub(crate) fn mem_write_at(
    buffers: &mut [ByteStore],
    shared: &mut ByteStore,
    addr: u64,
    v: RawVal,
) -> Result<(), SimError> {
    let (buf, off) = decode(addr);
    let store = match buf {
        Some(b) => buffers
            .get_mut(b.0 as usize)
            .ok_or_else(|| SimError::OutOfBounds(format!("unknown buffer in address {addr:#x}")))?,
        None => shared,
    };
    store.write(off, v).ok_or_else(|| {
        SimError::OutOfBounds(format!("write at offset {off} (len {})", store.len()))
    })
}

impl<'a> Engine<'a> {
    #[allow(clippy::needless_range_loop)] // indexing sidesteps a double &mut borrow
    fn run(&mut self, regs: &mut [RawVal]) -> Result<(), SimError> {
        let threads = self.launch.threads_per_block();
        let ws = self.warp_size;
        let n_warps = threads.div_ceil(ws);

        let mut warps: Vec<WarpState> = (0..n_warps)
            .map(|w| {
                let base = w * ws;
                let lanes = ws.min(threads - base);
                let mask = if lanes == 64 {
                    u64::MAX
                } else {
                    (1u64 << lanes) - 1
                };
                WarpState {
                    stack: vec![StackEntry {
                        block: self.pk.entry,
                        inst_idx: BLOCK_ENTRY,
                        rpc: NO_BLOCK,
                        mask,
                    }],
                    prev: vec![NO_BLOCK; ws as usize],
                    status: WarpStatus::Running,
                    base_thread: base,
                }
            })
            .collect();

        loop {
            let mut any_running = false;
            for w in 0..warps.len() {
                if warps[w].status == WarpStatus::Running {
                    any_running = true;
                    self.run_warp(&mut warps[w], regs)?;
                }
            }
            let done = warps
                .iter()
                .filter(|w| w.status == WarpStatus::Done)
                .count();
            let waiting = warps
                .iter()
                .filter(|w| w.status == WarpStatus::AtBarrier)
                .count();
            if done == warps.len() {
                return Ok(());
            }
            if waiting > 0 && done + waiting == warps.len() {
                if done > 0 {
                    return Err(SimError::BarrierDeadlock(format!(
                        "{done} warps finished while {waiting} wait at a barrier"
                    )));
                }
                for w in &mut warps {
                    w.status = WarpStatus::Running;
                }
                if let Some(t) = self.timing.as_deref_mut() {
                    t.barrier_release();
                }
            } else if !any_running {
                return Err(SimError::BarrierDeadlock("no runnable warps".to_string()));
            }
        }
    }

    /// Runs one warp until it finishes, reaches a barrier, or diverges into
    /// a state handled on the next scheduler pass.
    fn run_warp(&mut self, warp: &mut WarpState, regs: &mut [RawVal]) -> Result<(), SimError> {
        let pk = self.pk;
        let args = self.args;
        let n = self.n_slots;
        let w = (warp.base_thread / self.warp_size) as usize;
        'outer: loop {
            // Pop entries that already sit at their reconvergence point.
            while let Some(top) = warp.stack.last() {
                if top.block == top.rpc {
                    warp.stack.pop();
                    if let Some(t) = self.timing.as_deref_mut() {
                        t.frame_pop(w);
                    }
                } else {
                    break;
                }
            }
            let Some(&top) = warp.stack.last() else {
                warp.status = WarpStatus::Done;
                return Ok(());
            };
            let blk = pk.blocks[top.block as usize];
            let mut idx = top.inst_idx;

            // Atomically evaluate the φ batch on block entry.
            if idx == BLOCK_ENTRY {
                if blk.phi_end > blk.phi_start {
                    self.phi_stage.clear();
                    for phi in &pk.phis[blk.phi_start as usize..blk.phi_end as usize] {
                        let mut m = top.mask;
                        while m != 0 {
                            let lane = m.trailing_zeros();
                            m &= m - 1;
                            let thread = (warp.base_thread + lane) as usize;
                            let pred = warp.prev[lane as usize];
                            if pred == NO_BLOCK {
                                return Err(SimError::UndefValue(format!(
                                    "phi in block {} executed with no predecessor",
                                    pk.block_name(top.block)
                                )));
                            }
                            let incs =
                                &pk.phi_incomings[phi.inc_start as usize..phi.inc_end as usize];
                            let Some(&(_, op)) = incs.iter().find(|&&(p, _)| p == pred) else {
                                return Err(SimError::UndefValue(format!(
                                    "phi in {} has no incoming for predecessor {}",
                                    pk.block_name(top.block),
                                    pk.block_name(pred)
                                )));
                            };
                            let raw = resolve(op, regs, thread * n, args);
                            self.phi_stage.push((thread as u32, phi.dst, raw));
                        }
                    }
                    for &(thread, slot, raw) in &self.phi_stage {
                        regs[thread as usize * n + slot as usize] = raw;
                    }
                    // Timing: a φ becomes ready at the max readiness of the
                    // sources that actually flowed in (loop-carried deps),
                    // but costs nothing. Separate pass so the hot path above
                    // stays untouched when timing is off; the incoming
                    // lookups were validated there, so `find` cannot fail.
                    if let Some(t) = self.timing.as_deref_mut() {
                        t.phi_begin();
                        for phi in &pk.phis[blk.phi_start as usize..blk.phi_end as usize] {
                            let mut ready = 0u64;
                            let mut m = top.mask;
                            while m != 0 {
                                let lane = m.trailing_zeros();
                                m &= m - 1;
                                let pred = warp.prev[lane as usize];
                                let incs =
                                    &pk.phi_incomings[phi.inc_start as usize..phi.inc_end as usize];
                                if let Some(&(_, DOperand::Reg(s))) =
                                    incs.iter().find(|&&(p, _)| p == pred)
                                {
                                    ready = ready.max(t.reg_ready(w, s));
                                }
                            }
                            t.phi_stage(phi.dst, ready);
                        }
                        t.phi_commit(w);
                    }
                }
                idx = blk.first;
            }

            while idx < blk.end {
                let inst = pk.insts[idx as usize];
                match inst.opcode {
                    Opcode::Ret | Opcode::Jump | Opcode::Br => {
                        self.charge(&inst, top.mask, w);
                        // Record per-lane provenance before leaving the block.
                        let mut m = top.mask;
                        while m != 0 {
                            let lane = m.trailing_zeros();
                            m &= m - 1;
                            warp.prev[lane as usize] = top.block;
                        }
                        match inst.opcode {
                            Opcode::Ret => {
                                warp.stack.pop();
                                if let Some(t) = self.timing.as_deref_mut() {
                                    t.frame_pop(w);
                                }
                                continue 'outer;
                            }
                            Opcode::Jump => {
                                if transition(warp, inst.succs[0]) {
                                    if let Some(t) = self.timing.as_deref_mut() {
                                        t.frame_pop(w);
                                    }
                                }
                                continue 'outer;
                            }
                            _ => {
                                let mut m_true = 0u64;
                                let mut m_false = 0u64;
                                if inst.cond_slot != NO_DST {
                                    // Condition slot pre-resolved at decode
                                    // time: read the register file directly
                                    // instead of re-matching the operand
                                    // kind per lane.
                                    let s = inst.cond_slot as usize;
                                    let mut m = top.mask;
                                    while m != 0 {
                                        let lane = m.trailing_zeros();
                                        m &= m - 1;
                                        let thread = (warp.base_thread + lane) as usize;
                                        match regs[thread * n + s] {
                                            RawVal::I1(true) => m_true |= 1 << lane,
                                            RawVal::I1(false) => m_false |= 1 << lane,
                                            _ => {
                                                return Err(SimError::UndefValue(format!(
                                                    "branch condition in block {}",
                                                    pk.block_name(top.block)
                                                )))
                                            }
                                        }
                                    }
                                } else {
                                    // Constant or parameter condition:
                                    // lane-invariant, resolve once.
                                    match resolve(inst.ops[0], regs, 0, args) {
                                        RawVal::I1(true) => m_true = top.mask,
                                        RawVal::I1(false) => m_false = top.mask,
                                        _ => {
                                            return Err(SimError::UndefValue(format!(
                                                "branch condition in block {}",
                                                pk.block_name(top.block)
                                            )))
                                        }
                                    }
                                }
                                let (then_bb, else_bb) = (inst.succs[0], inst.succs[1]);
                                if m_false == 0 || m_true == 0 {
                                    let target = if m_false == 0 { then_bb } else { else_bb };
                                    if transition(warp, target) {
                                        if let Some(t) = self.timing.as_deref_mut() {
                                            t.frame_pop(w);
                                        }
                                    }
                                } else {
                                    let rpc = blk.ipdom;
                                    if rpc == NO_BLOCK {
                                        return Err(SimError::MissingIpdom(
                                            pk.block_name(top.block).to_string(),
                                        ));
                                    }
                                    let cur = warp.stack.last_mut().expect("entry exists");
                                    cur.block = rpc;
                                    cur.inst_idx = BLOCK_ENTRY;
                                    warp.stack.push(StackEntry {
                                        block: else_bb,
                                        inst_idx: BLOCK_ENTRY,
                                        rpc,
                                        mask: m_false,
                                    });
                                    warp.stack.push(StackEntry {
                                        block: then_bb,
                                        inst_idx: BLOCK_ENTRY,
                                        rpc,
                                        mask: m_true,
                                    });
                                    if let Some(t) = self.timing.as_deref_mut() {
                                        t.diverge(w, rpc);
                                    }
                                }
                                continue 'outer;
                            }
                        }
                    }
                    Opcode::Syncthreads => {
                        self.stats.barriers += 1;
                        self.stats.cycles += 1;
                        if let Some(t) = self.timing.as_deref_mut() {
                            t.barrier_issue(w);
                        }
                        let cur = warp.stack.last_mut().unwrap();
                        cur.inst_idx = idx + 1;
                        warp.status = WarpStatus::AtBarrier;
                        return Ok(());
                    }
                    _ => {
                        self.lane_addrs.clear();
                        self.exec_plain(&inst, top.mask, warp.base_thread, regs)?;
                        self.charge(&inst, top.mask, w);
                        if *self.budget == 0 {
                            return Err(SimError::StepLimit);
                        }
                        *self.budget -= 1;
                        idx += 1;
                        warp.stack.last_mut().unwrap().inst_idx = idx;
                    }
                }
            }
            // A block must end in a terminator; verify_structure guarantees it.
            unreachable!("fell off the end of block {}", pk.block_name(top.block));
        }
    }

    /// Executes one plain (non-control, non-warp-wide) instruction for all
    /// active lanes: opcode dispatched once, lanes iterated inside.
    fn exec_plain(
        &mut self,
        inst: &DInst,
        mask: u64,
        base_thread: u32,
        regs: &mut [RawVal],
    ) -> Result<(), SimError> {
        use Opcode::*;
        let n = self.n_slots;
        let args = self.args;
        let dst = inst.dst as usize;
        let [op0, op1, op2] = inst.ops;

        // Iterates the active lanes, binding the lane's register-file base.
        macro_rules! lanes {
            (|$lb:ident| $body:expr) => {{
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    let $lb = (base_thread + lane) as usize * n;
                    $body
                }
            }};
            (|$lb:ident, $thread:ident| $body:expr) => {{
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros();
                    m &= m - 1;
                    let $thread = (base_thread + lane) as usize;
                    let $lb = $thread * n;
                    $body
                }
            }};
        }
        macro_rules! map2 {
            ($f:expr) => {
                lanes!(|lb| {
                    let a = resolve(op0, regs, lb, args);
                    let b = resolve(op1, regs, lb, args);
                    regs[lb + dst] = ($f)(a, b);
                })
            };
        }
        macro_rules! map1 {
            ($f:expr) => {
                lanes!(|lb| {
                    let a = resolve(op0, regs, lb, args);
                    regs[lb + dst] = ($f)(a);
                })
            };
        }

        match inst.opcode {
            Add => map2!(|a, b| bin_i(a, b, |a, b| a.wrapping_add(b))),
            Sub => map2!(|a, b| bin_i(a, b, |a, b| a.wrapping_sub(b))),
            Mul => map2!(|a, b| bin_i(a, b, |a, b| a.wrapping_mul(b))),
            And => map2!(|a, b| bin_i(a, b, |a, b| a & b)),
            Or => map2!(|a, b| bin_i(a, b, |a, b| a | b)),
            Xor => map2!(|a, b| bin_i(a, b, |a, b| a ^ b)),
            SDiv | SRem | UDiv | URem => {
                let opcode = inst.opcode;
                let ty = inst.ty;
                lanes!(|lb| {
                    let x = resolve(op0, regs, lb, args);
                    let y = resolve(op1, regs, lb, args);
                    regs[lb + dst] = div_eval(opcode, ty, x, y)?;
                });
            }
            Shl => map2!(shl_eval),
            LShr => map2!(lshr_eval),
            AShr => map2!(ashr_eval),
            FAdd => map2!(|a, b| bin_f(a, b, |a, b| a + b)),
            FSub => map2!(|a, b| bin_f(a, b, |a, b| a - b)),
            FMul => map2!(|a, b| bin_f(a, b, |a, b| a * b)),
            FDiv => map2!(|a, b| bin_f(a, b, |a, b| a / b)),
            FSqrt => map1!(|a| un_f(a, f32::sqrt)),
            FAbs => map1!(|a| un_f(a, f32::abs)),
            FNeg => map1!(|a| un_f(a, |x| -x)),
            FExp => map1!(|a| un_f(a, f32::exp)),
            Icmp(pred) => map2!(|a, b| icmp_eval(pred, a, b)),
            Fcmp(pred) => map2!(|a, b| fcmp_eval(pred, a, b)),
            Select => {
                lanes!(|lb| {
                    let c = resolve(op0, regs, lb, args);
                    let t = resolve(op1, regs, lb, args);
                    let e = resolve(op2, regs, lb, args);
                    regs[lb + dst] = select_eval(c, t, e);
                });
            }
            Zext | Sext => {
                let zext = inst.opcode == Zext;
                let ty = inst.ty;
                map1!(|a| zext_sext_eval(zext, ty, a));
            }
            Trunc => {
                let ty = inst.ty;
                map1!(|a| trunc_eval(ty, a));
            }
            SiToFp => map1!(sitofp_eval),
            FpToSi => {
                let ty = inst.ty;
                map1!(|a| fptosi_eval(ty, a));
            }
            Gep { .. } => {
                let elem_size = inst.aux;
                map2!(|a, b| gep_eval(elem_size, a, b));
            }
            Load => {
                let ty = inst.ty;
                lanes!(|lb| {
                    let RawVal::Ptr(addr) = resolve(op0, regs, lb, args) else {
                        return Err(SimError::UndefValue("load address".into()));
                    };
                    self.lane_addrs.push(addr);
                    regs[lb + dst] = self.mem_read(ty, addr)?;
                });
            }
            Store => {
                lanes!(|lb| {
                    let v = resolve(op0, regs, lb, args);
                    let RawVal::Ptr(addr) = resolve(op1, regs, lb, args) else {
                        return Err(SimError::UndefValue("store address".into()));
                    };
                    if matches!(v, RawVal::Undef) {
                        return Err(SimError::UndefValue("stored value".into()));
                    }
                    self.lane_addrs.push(addr);
                    self.mem_write(addr, v)?;
                });
            }
            ThreadIdx(d) => {
                let bx = self.launch.block.0;
                lanes!(|lb, thread| {
                    let t = thread as u32;
                    let (tx, ty) = (t % bx, t / bx);
                    regs[lb + dst] = RawVal::I32(if d == Dim::X { tx } else { ty } as i32);
                });
            }
            BlockIdx(d) => {
                let v = RawVal::I32(if d == Dim::X {
                    self.block_idx.0
                } else {
                    self.block_idx.1
                } as i32);
                lanes!(|lb| regs[lb + dst] = v);
            }
            BlockDim(d) => {
                let v = RawVal::I32(if d == Dim::X {
                    self.launch.block.0
                } else {
                    self.launch.block.1
                } as i32);
                lanes!(|lb| regs[lb + dst] = v);
            }
            GridDim(d) => {
                let v = RawVal::I32(if d == Dim::X {
                    self.launch.grid.0
                } else {
                    self.launch.grid.1
                } as i32);
                lanes!(|lb| regs[lb + dst] = v);
            }
            SharedBase(_) => {
                let v = RawVal::Ptr(encode_shared(inst.aux));
                lanes!(|lb| regs[lb + dst] = v);
            }
            Ballot => {
                // The one warp-wide operation: all active lanes receive the
                // mask of lanes whose predicate holds.
                let mut ballot = 0u64;
                {
                    let mut m = mask;
                    while m != 0 {
                        let lane = m.trailing_zeros();
                        m &= m - 1;
                        let lb = (base_thread + lane) as usize * n;
                        if let RawVal::I1(true) = resolve(op0, regs, lb, args) {
                            ballot |= 1 << lane;
                        }
                    }
                }
                lanes!(|lb| regs[lb + dst] = RawVal::I64(ballot as i64));
            }
            Phi | Br | Jump | Ret | Syncthreads => {
                unreachable!("handled by the warp loop")
            }
        }
        Ok(())
    }

    fn mem_read(&self, ty: Type, addr: u64) -> Result<RawVal, SimError> {
        mem_read_at(self.buffers, &self.shared, ty, addr)
    }

    fn mem_write(&mut self, addr: u64, v: RawVal) -> Result<(), SimError> {
        mem_write_at(self.buffers, &mut self.shared, addr, v)
    }

    /// Charges cycles and updates counters for one warp-instruction issue,
    /// reading per-lane memory addresses from `self.lane_addrs`. `w` is the
    /// warp index within the block, for the timing observer.
    fn charge(&mut self, inst: &DInst, mask: u64, w: usize) {
        let active = mask.count_ones() as u64;
        if active == 0 {
            return;
        }
        self.stats.warp_instructions += 1;
        self.stats.thread_instructions += active;
        use Opcode::*;
        match inst.opcode {
            Load | Store => {
                self.stats
                    .charge_mem_access(&self.lane_addrs, &mut self.scratch);
                if let Some(t) = self.timing.as_deref_mut() {
                    let (dst, srcs) = dinst_deps(inst);
                    t.mem_issue(
                        w,
                        active as u32,
                        dst,
                        srcs,
                        0,
                        &self.lane_addrs,
                        &mut self.scratch,
                    );
                }
            }
            Phi | Syncthreads => {}
            Br | Jump | Ret => {
                self.stats.cycles += inst.latency;
                if let Some(t) = self.timing.as_deref_mut() {
                    // `Ret` takes no scoreboard inputs in the bytecode tier
                    // (kernels are void); mirror that here for bit-equal
                    // `sim_*` fields across tiers.
                    let (dst, srcs) = if inst.opcode == Ret {
                        (NO_DST, [NO_DST; 3])
                    } else {
                        dinst_deps(inst)
                    };
                    t.issue(w, active as u32, inst.latency, dst, srcs);
                }
            }
            _ => {
                self.stats.cycles += inst.latency;
                self.stats.alu_issues += 1;
                self.stats.alu_active_lanes += active;
                if let Some(t) = self.timing.as_deref_mut() {
                    let (dst, srcs) = dinst_deps(inst);
                    t.issue(w, active as u32, inst.latency, dst, srcs);
                }
            }
        }
    }
}

/// Applies a control transfer for the warp's top-of-stack entry, popping it
/// if the target is its reconvergence point. Returns whether it popped (the
/// timing observer mirrors engine pops).
pub(crate) fn transition(warp: &mut WarpState, target: u32) -> bool {
    let top = warp.stack.last_mut().expect("entry exists");
    if target == top.rpc {
        warp.stack.pop();
        true
    } else {
        top.block = target;
        top.inst_idx = BLOCK_ENTRY;
        false
    }
}

// NO_DST is only ever consumed via `inst.dst as usize` on value-producing
// opcodes, which the decoder guarantees have a real slot.
const _: () = assert!(NO_DST == u32::MAX);
