//! Execution backends: one compile-and-launch contract over every tier.
//!
//! The simulator has three ways to run a kernel — the seed per-lane
//! [`reference`](crate::reference) interpreter, the decoded
//! [`PreparedKernel`] loop, and the flat register
//! [`BytecodeKernel`] — all bit-identical in
//! buffers, [`KernelStats`], and errors, differing only in throughput.
//! This module makes the choice a value ([`BackendKind`]) and the common
//! shape a pair of traits, so callers (the `darm` CLI's `--backend` flag,
//! the benches' three-way comparisons, the differential tests) select a
//! tier uniformly, and so a future JIT tier can slot in without touching
//! any caller.
//!
//! ## The contract a backend implements
//!
//! * **Compile**: [`Backend::compile`] turns a [`Function`] into an
//!   immutable, `Send + Sync` [`CompiledKernel`] that borrows nothing —
//!   compile once, launch any number of times, from any geometry.
//! * **Execute**: [`CompiledKernel::execute`] runs one launch against a
//!   [`Gpu`]'s buffers and returns the [`KernelStats`] sink, with the
//!   exact semantics the differential suites pin down: identical buffer
//!   bytes (including partial writes on the error path), identical stats,
//!   identical [`SimError`] values, for any input.
//! * **State layout**: execution state is a *lane-major register file* —
//!   one flat `RawVal` slab indexed `thread * n_slots + slot` per thread
//!   block — plus the per-warp IPDOM reconvergence stack and one
//!   launch-wide instruction budget. A JIT tier is expected to keep this
//!   layout (registers in the slab, stats charged through
//!   [`KernelStats`]) so compiled and interpreted frames stay
//!   interchangeable mid-suite.
//!
//! [`Gpu::launch_with`] is the one-shot convenience over this module.

use crate::bytecode::BytecodeKernel;
use crate::decoded::PreparedKernel;
use crate::exec::{Gpu, KernelArg, SimError};
use crate::stats::KernelStats;
use crate::LaunchConfig;
use darm_ir::{Function, Type};
use std::fmt;

/// The execution tiers a kernel can run on. All are semantically
/// bit-identical; pick by throughput need (reference ≪ prepared <
/// bytecode) or for differential oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The seed per-lane, arena-walking interpreter — slowest, simplest;
    /// the semantic baseline.
    Reference,
    /// The decoded-record engine over a [`PreparedKernel`].
    Prepared,
    /// The flat register bytecode engine over a [`BytecodeKernel`] — the
    /// fastest tier.
    Bytecode,
}

impl BackendKind {
    /// Every backend, in oracle-to-fastest order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Reference,
        BackendKind::Prepared,
        BackendKind::Bytecode,
    ];

    /// The CLI/display name (`reference`, `prepared`, `bytecode`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Reference => "reference",
            BackendKind::Prepared => "prepared",
            BackendKind::Bytecode => "bytecode",
        }
    }

    /// Parses a CLI name; `None` for anything unknown.
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The backend implementation for this kind.
    pub fn backend(self) -> &'static dyn Backend {
        match self {
            BackendKind::Reference => &ReferenceBackend,
            BackendKind::Prepared => &PreparedBackend,
            BackendKind::Bytecode => &BytecodeBackend,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A compiler from [`Function`] to a launchable kernel. See the
/// [module docs](self) for the contract.
pub trait Backend: Sync {
    /// Which tier this is.
    fn kind(&self) -> BackendKind;

    /// Compiles `func` for this tier. The result borrows nothing; compile
    /// once and launch repeatedly.
    fn compile(&self, func: &Function) -> Box<dyn CompiledKernel>;
}

/// A kernel compiled for some backend, ready to launch any number of
/// times against any [`Gpu`] and geometry.
pub trait CompiledKernel: Send + Sync {
    /// The kernel's name.
    fn name(&self) -> &str;

    /// Parameter types of the kernel signature.
    fn params(&self) -> &[Type];

    /// Runs one launch. Buffer mutations, returned [`KernelStats`], and
    /// [`SimError`]s are bit-identical across backends.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Gpu::launch`].
    fn execute(
        &self,
        gpu: &mut Gpu,
        cfg: &LaunchConfig,
        args: &[KernelArg],
    ) -> Result<KernelStats, SimError>;
}

struct ReferenceBackend;

/// The reference tier "compiles" by cloning the function: the seed
/// interpreter walks the IR arena directly.
struct ReferenceKernel(Function);

impl Backend for ReferenceBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Reference
    }

    fn compile(&self, func: &Function) -> Box<dyn CompiledKernel> {
        Box::new(ReferenceKernel(func.clone()))
    }
}

impl CompiledKernel for ReferenceKernel {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn params(&self) -> &[Type] {
        self.0.params()
    }

    fn execute(
        &self,
        gpu: &mut Gpu,
        cfg: &LaunchConfig,
        args: &[KernelArg],
    ) -> Result<KernelStats, SimError> {
        gpu.launch_reference(&self.0, cfg, args)
    }
}

struct PreparedBackend;

impl Backend for PreparedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Prepared
    }

    fn compile(&self, func: &Function) -> Box<dyn CompiledKernel> {
        Box::new(PreparedKernel::new(func))
    }
}

impl CompiledKernel for PreparedKernel {
    fn name(&self) -> &str {
        PreparedKernel::name(self)
    }

    fn params(&self) -> &[Type] {
        PreparedKernel::params(self)
    }

    fn execute(
        &self,
        gpu: &mut Gpu,
        cfg: &LaunchConfig,
        args: &[KernelArg],
    ) -> Result<KernelStats, SimError> {
        gpu.launch_prepared(self, cfg, args)
    }
}

struct BytecodeBackend;

impl Backend for BytecodeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Bytecode
    }

    fn compile(&self, func: &Function) -> Box<dyn CompiledKernel> {
        Box::new(BytecodeKernel::new(func))
    }
}

impl CompiledKernel for BytecodeKernel {
    fn name(&self) -> &str {
        BytecodeKernel::name(self)
    }

    fn params(&self) -> &[Type] {
        BytecodeKernel::params(self)
    }

    fn execute(
        &self,
        gpu: &mut Gpu,
        cfg: &LaunchConfig,
        args: &[KernelArg],
    ) -> Result<KernelStats, SimError> {
        gpu.launch_bytecode(self, cfg, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in BackendKind::ALL {
            assert_eq!(BackendKind::parse(k.name()), Some(k));
            assert_eq!(k.backend().kind(), k);
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(BackendKind::parse("jit"), None);
    }
}
