//! The original per-lane interpreter, kept as a semantic reference.
//!
//! This is the interpreter the simulator shipped with before the
//! pre-decoded engine ([`crate::decoded::PreparedKernel`] + the warp-wide
//! execute loop in [`crate::exec`]) replaced it on the hot path. It walks
//! the [`Function`] arena directly — cloning instruction data and
//! re-matching the opcode per lane — which makes it slow but keeps it an
//! independent, easily-auditable implementation of the SIMT semantics.
//!
//! [`crate::Gpu::launch_reference`] runs it; the differential test
//! `decoded_vs_reference` asserts the two engines produce bit-identical
//! buffer contents and [`KernelStats`] on every benchmark kernel, and the
//! `interp_throughput` bench measures the decoded engine's speedup against
//! it.

use crate::exec::{validate_args, KernelArg, SimError};
use crate::mem::{decode, encode_shared, ByteStore, RawVal};
use crate::stats::KernelStats;
use crate::{GpuConfig, LaunchConfig};
use darm_analysis::{Cfg, PostDomTree};
use darm_ir::cost;
use darm_ir::{BlockId, Dim, Function, InstData, Opcode, Type, Value};

/// Launches `func` with the reference interpreter over `buffers`.
pub(crate) fn launch(
    buffers: &mut Vec<ByteStore>,
    config: &GpuConfig,
    func: &Function,
    cfg: &LaunchConfig,
    args: &[KernelArg],
) -> Result<KernelStats, SimError> {
    let arg_vals = validate_args(func.name(), func.params(), args, buffers.len())?;

    let cfg_snapshot = Cfg::new(func);
    let pdt = PostDomTree::new(func, &cfg_snapshot);

    // Shared arena layout.
    let mut shared_offsets = Vec::new();
    let mut shared_size = 0u64;
    for arr in func.shared_arrays() {
        shared_offsets.push(shared_size);
        shared_size += arr.size_bytes();
        shared_size = (shared_size + 7) & !7; // 8-byte align
    }

    let mut stats = KernelStats {
        warp_size: config.warp_size,
        ..Default::default()
    };
    let mut budget = config.max_warp_instructions;
    for by in 0..cfg.grid.1 {
        for bx in 0..cfg.grid.0 {
            let mut block_exec = BlockExec {
                buffers,
                warp_size: config.warp_size,
                func,
                pdt: &pdt,
                launch: cfg,
                args: &arg_vals,
                block_idx: (bx, by),
                shared: ByteStore::with_len(shared_size as usize),
                shared_offsets: &shared_offsets,
                stats: KernelStats {
                    warp_size: config.warp_size,
                    ..Default::default()
                },
                budget: &mut budget,
            };
            block_exec.run()?;
            let s = block_exec.stats;
            stats.merge(&s);
        }
    }
    Ok(stats)
}

#[derive(Debug, Clone)]
struct StackEntry {
    block: BlockId,
    inst_idx: usize,
    rpc: Option<BlockId>,
    mask: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpStatus {
    Running,
    AtBarrier,
    Done,
}

struct WarpState {
    stack: Vec<StackEntry>,
    /// Last block executed, per lane — resolves φ incoming values.
    prev: Vec<Option<BlockId>>,
    status: WarpStatus,
    base_thread: u32,
}

struct BlockExec<'a> {
    buffers: &'a mut Vec<ByteStore>,
    warp_size: u32,
    func: &'a Function,
    pdt: &'a PostDomTree,
    launch: &'a LaunchConfig,
    args: &'a [RawVal],
    block_idx: (u32, u32),
    shared: ByteStore,
    shared_offsets: &'a [u64],
    stats: KernelStats,
    budget: &'a mut u64,
}

impl<'a> BlockExec<'a> {
    #[allow(clippy::needless_range_loop)] // indexing sidesteps a double &mut borrow
    fn run(&mut self) -> Result<(), SimError> {
        let threads = self.launch.threads_per_block();
        let ws = self.warp_size;
        let n_warps = threads.div_ceil(ws);
        let n_insts = self.func.inst_capacity();
        let mut regs: Vec<Vec<RawVal>> =
            (0..threads).map(|_| vec![RawVal::Undef; n_insts]).collect();

        let mut warps: Vec<WarpState> = (0..n_warps)
            .map(|w| {
                let base = w * ws;
                let lanes = ws.min(threads - base);
                let mask = if lanes == 64 {
                    u64::MAX
                } else {
                    (1u64 << lanes) - 1
                };
                WarpState {
                    stack: vec![StackEntry {
                        block: self.func.entry(),
                        inst_idx: 0,
                        rpc: None,
                        mask,
                    }],
                    prev: vec![None; ws as usize],
                    status: WarpStatus::Running,
                    base_thread: base,
                }
            })
            .collect();

        loop {
            let mut any_running = false;
            for w in 0..warps.len() {
                if warps[w].status == WarpStatus::Running {
                    any_running = true;
                    self.run_warp(&mut warps[w], &mut regs)?;
                }
            }
            let done = warps
                .iter()
                .filter(|w| w.status == WarpStatus::Done)
                .count();
            let waiting = warps
                .iter()
                .filter(|w| w.status == WarpStatus::AtBarrier)
                .count();
            if done == warps.len() {
                return Ok(());
            }
            if waiting > 0 && done + waiting == warps.len() {
                if done > 0 {
                    return Err(SimError::BarrierDeadlock(format!(
                        "{done} warps finished while {waiting} wait at a barrier"
                    )));
                }
                for w in &mut warps {
                    w.status = WarpStatus::Running;
                }
            } else if !any_running {
                return Err(SimError::BarrierDeadlock("no runnable warps".to_string()));
            }
        }
    }

    /// Runs one warp until it finishes, reaches a barrier, or diverges into
    /// a state handled on the next scheduler pass.
    fn run_warp(&mut self, warp: &mut WarpState, regs: &mut [Vec<RawVal>]) -> Result<(), SimError> {
        'outer: loop {
            // Pop entries that already sit at their reconvergence point.
            while let Some(top) = warp.stack.last() {
                if Some(top.block) == top.rpc {
                    warp.stack.pop();
                } else {
                    break;
                }
            }
            let Some(top) = warp.stack.last().cloned() else {
                warp.status = WarpStatus::Done;
                return Ok(());
            };
            let insts = self.func.insts_of(top.block).to_vec();
            let mut idx = top.inst_idx;

            // Atomically evaluate the φ batch on block entry.
            if idx == 0 {
                let phis: Vec<_> = insts
                    .iter()
                    .copied()
                    .take_while(|&i| self.func.inst(i).opcode.is_phi())
                    .collect();
                if !phis.is_empty() {
                    let mut staged: Vec<(usize, usize, RawVal)> = Vec::new();
                    for &phi in &phis {
                        let data = self.func.inst(phi);
                        for lane in 0..self.warp_size {
                            if top.mask & (1 << lane) == 0 {
                                continue;
                            }
                            let thread = (warp.base_thread + lane) as usize;
                            let pred = warp.prev[lane as usize].ok_or_else(|| {
                                SimError::UndefValue(format!(
                                    "phi in block {} executed with no predecessor",
                                    self.func.block_name(top.block)
                                ))
                            })?;
                            let val = data.phi_value_for(pred).ok_or_else(|| {
                                SimError::UndefValue(format!(
                                    "phi in {} has no incoming for predecessor {}",
                                    self.func.block_name(top.block),
                                    self.func.block_name(pred)
                                ))
                            })?;
                            let raw = self.eval(val, regs, thread);
                            staged.push((thread, phi.index(), raw));
                        }
                    }
                    for (thread, slot, raw) in staged {
                        regs[thread][slot] = raw;
                    }
                    idx = phis.len();
                }
            }

            while idx < insts.len() {
                let id = insts[idx];
                let data = self.func.inst(id).clone();
                if data.opcode.is_terminator() {
                    self.charge(&data, top.mask, &[]);
                    // Record per-lane provenance before leaving the block.
                    for lane in 0..self.warp_size {
                        if top.mask & (1 << lane) != 0 {
                            warp.prev[lane as usize] = Some(top.block);
                        }
                    }
                    match data.opcode {
                        Opcode::Ret => {
                            warp.stack.pop();
                            continue 'outer;
                        }
                        Opcode::Jump => {
                            self.transition(warp, data.succs[0]);
                            continue 'outer;
                        }
                        Opcode::Br => {
                            let mut m_true = 0u64;
                            let mut m_false = 0u64;
                            for lane in 0..self.warp_size {
                                if top.mask & (1 << lane) == 0 {
                                    continue;
                                }
                                let thread = (warp.base_thread + lane) as usize;
                                match self.eval(data.operands[0], regs, thread) {
                                    RawVal::I1(true) => m_true |= 1 << lane,
                                    RawVal::I1(false) => m_false |= 1 << lane,
                                    _ => {
                                        return Err(SimError::UndefValue(format!(
                                            "branch condition in block {}",
                                            self.func.block_name(top.block)
                                        )))
                                    }
                                }
                            }
                            let (then_bb, else_bb) = (data.succs[0], data.succs[1]);
                            if m_false == 0 {
                                self.transition(warp, then_bb);
                            } else if m_true == 0 {
                                self.transition(warp, else_bb);
                            } else {
                                let rpc = self.pdt.ipdom(top.block).ok_or_else(|| {
                                    SimError::MissingIpdom(
                                        self.func.block_name(top.block).to_string(),
                                    )
                                })?;
                                let cur = warp.stack.last_mut().expect("entry exists");
                                cur.block = rpc;
                                cur.inst_idx = 0;
                                let outer_rpc = Some(rpc);
                                warp.stack.push(StackEntry {
                                    block: else_bb,
                                    inst_idx: 0,
                                    rpc: outer_rpc,
                                    mask: m_false,
                                });
                                warp.stack.push(StackEntry {
                                    block: then_bb,
                                    inst_idx: 0,
                                    rpc: outer_rpc,
                                    mask: m_true,
                                });
                            }
                            continue 'outer;
                        }
                        _ => unreachable!("terminator handled above"),
                    }
                }

                if data.opcode == Opcode::Syncthreads {
                    self.stats.barriers += 1;
                    self.stats.cycles += 1;
                    if top.mask != warp.stack.last().unwrap().mask {
                        return Err(SimError::BarrierDeadlock(
                            "barrier under partial mask".into(),
                        ));
                    }
                    let cur = warp.stack.last_mut().unwrap();
                    cur.inst_idx = idx + 1;
                    warp.status = WarpStatus::AtBarrier;
                    return Ok(());
                }

                // Plain instruction: execute per active lane. Ballot is the
                // one warp-wide operation: all active lanes receive the mask
                // of lanes whose predicate holds.
                let mut lane_addrs: Vec<u64> = Vec::new();
                if data.opcode == Opcode::Ballot {
                    let mut ballot = 0u64;
                    for lane in 0..self.warp_size {
                        if top.mask & (1 << lane) == 0 {
                            continue;
                        }
                        let thread = (warp.base_thread + lane) as usize;
                        if let RawVal::I1(true) = self.eval(data.operands[0], regs, thread) {
                            ballot |= 1 << lane;
                        }
                    }
                    for lane in 0..self.warp_size {
                        if top.mask & (1 << lane) != 0 {
                            let thread = (warp.base_thread + lane) as usize;
                            regs[thread][id.index()] = RawVal::I64(ballot as i64);
                        }
                    }
                } else {
                    for lane in 0..self.warp_size {
                        if top.mask & (1 << lane) == 0 {
                            continue;
                        }
                        let thread = (warp.base_thread + lane) as usize;
                        let result = self.exec_lane(&data, regs, thread, &mut lane_addrs)?;
                        if data.ty != Type::Void {
                            regs[thread][id.index()] = result;
                        }
                    }
                }
                self.charge(&data, top.mask, &lane_addrs);
                if *self.budget == 0 {
                    return Err(SimError::StepLimit);
                }
                *self.budget -= 1;
                idx += 1;
                let cur = warp.stack.last_mut().unwrap();
                cur.inst_idx = idx;
            }
            // A block must end in a terminator; verify_structure guarantees it.
            unreachable!(
                "fell off the end of block {}",
                self.func.block_name(top.block)
            );
        }
    }

    /// Applies a control transfer for the warp's top-of-stack entry,
    /// popping it if the target is its reconvergence point.
    fn transition(&mut self, warp: &mut WarpState, target: BlockId) {
        let top = warp.stack.last_mut().expect("entry exists");
        if Some(target) == top.rpc {
            warp.stack.pop();
        } else {
            top.block = target;
            top.inst_idx = 0;
        }
    }

    /// Evaluates an SSA value for a thread.
    fn eval(&self, v: Value, regs: &[Vec<RawVal>], thread: usize) -> RawVal {
        match v {
            Value::Inst(id) => regs[thread][id.index()],
            Value::Param(i) => self.args[i as usize],
            Value::I1(b) => RawVal::I1(b),
            Value::I32(x) => RawVal::I32(x),
            Value::I64(x) => RawVal::I64(x),
            Value::F32Bits(bits) => RawVal::F32(f32::from_bits(bits)),
            Value::Undef(_) => RawVal::Undef,
        }
    }

    /// Executes one non-terminator instruction for one lane.
    fn exec_lane(
        &mut self,
        data: &InstData,
        regs: &mut [Vec<RawVal>],
        thread: usize,
        lane_addrs: &mut Vec<u64>,
    ) -> Result<RawVal, SimError> {
        use Opcode::*;
        let ops: Vec<RawVal> = data
            .operands
            .iter()
            .map(|&v| self.eval(v, regs, thread))
            .collect();
        let undef_in = ops.iter().any(|o| matches!(o, RawVal::Undef));
        let bin_i = |f: fn(i64, i64) -> i64| -> RawVal {
            match (ops[0], ops[1]) {
                (RawVal::I32(a), RawVal::I32(b)) => RawVal::I32(f(a as i64, b as i64) as i32),
                (RawVal::I64(a), RawVal::I64(b)) => RawVal::I64(f(a, b)),
                (RawVal::I1(a), RawVal::I1(b)) => RawVal::I1(f(a as i64, b as i64) & 1 != 0),
                _ => RawVal::Undef,
            }
        };
        let bin_f = |f: fn(f32, f32) -> f32| -> RawVal {
            match (ops[0], ops[1]) {
                (RawVal::F32(a), RawVal::F32(b)) => RawVal::F32(f(a, b)),
                _ => RawVal::Undef,
            }
        };
        Ok(match data.opcode {
            Add => bin_i(|a, b| a.wrapping_add(b)),
            Sub => bin_i(|a, b| a.wrapping_sub(b)),
            Mul => bin_i(|a, b| a.wrapping_mul(b)),
            SDiv | SRem | UDiv | URem => {
                if undef_in {
                    RawVal::Undef
                } else {
                    let (a, b) = match (ops[0], ops[1]) {
                        (RawVal::I32(a), RawVal::I32(b)) => (a as i64, b as i64),
                        (RawVal::I64(a), RawVal::I64(b)) => (a, b),
                        _ => return Ok(RawVal::Undef),
                    };
                    if b == 0 {
                        return Err(SimError::DivByZero);
                    }
                    let r = match data.opcode {
                        SDiv => a.wrapping_div(b),
                        SRem => a.wrapping_rem(b),
                        UDiv => ((a as u64) / (b as u64)) as i64,
                        URem => ((a as u64) % (b as u64)) as i64,
                        _ => unreachable!(),
                    };
                    match data.ty {
                        Type::I32 => RawVal::I32(r as i32),
                        _ => RawVal::I64(r),
                    }
                }
            }
            And => bin_i(|a, b| a & b),
            Or => bin_i(|a, b| a | b),
            Xor => bin_i(|a, b| a ^ b),
            Shl => match (ops[0], ops[1]) {
                (RawVal::I32(a), RawVal::I32(b)) => RawVal::I32(a.wrapping_shl(b as u32)),
                (RawVal::I64(a), RawVal::I64(b)) => RawVal::I64(a.wrapping_shl(b as u32)),
                _ => RawVal::Undef,
            },
            LShr => match (ops[0], ops[1]) {
                (RawVal::I32(a), RawVal::I32(b)) => {
                    RawVal::I32(((a as u32).wrapping_shr(b as u32)) as i32)
                }
                (RawVal::I64(a), RawVal::I64(b)) => {
                    RawVal::I64(((a as u64).wrapping_shr(b as u32)) as i64)
                }
                _ => RawVal::Undef,
            },
            AShr => match (ops[0], ops[1]) {
                (RawVal::I32(a), RawVal::I32(b)) => RawVal::I32(a.wrapping_shr(b as u32)),
                (RawVal::I64(a), RawVal::I64(b)) => RawVal::I64(a.wrapping_shr(b as u32)),
                _ => RawVal::Undef,
            },
            FAdd => bin_f(|a, b| a + b),
            FSub => bin_f(|a, b| a - b),
            FMul => bin_f(|a, b| a * b),
            FDiv => bin_f(|a, b| a / b),
            FSqrt => match ops[0] {
                RawVal::F32(a) => RawVal::F32(a.sqrt()),
                _ => RawVal::Undef,
            },
            FAbs => match ops[0] {
                RawVal::F32(a) => RawVal::F32(a.abs()),
                _ => RawVal::Undef,
            },
            FNeg => match ops[0] {
                RawVal::F32(a) => RawVal::F32(-a),
                _ => RawVal::Undef,
            },
            FExp => match ops[0] {
                RawVal::F32(a) => RawVal::F32(a.exp()),
                _ => RawVal::Undef,
            },
            Icmp(pred) => {
                use darm_ir::IcmpPred::*;
                let cmp = |a: i64, b: i64, ua: u64, ub: u64| -> bool {
                    match pred {
                        Eq => a == b,
                        Ne => a != b,
                        Slt => a < b,
                        Sle => a <= b,
                        Sgt => a > b,
                        Sge => a >= b,
                        Ult => ua < ub,
                        Ule => ua <= ub,
                        Ugt => ua > ub,
                        Uge => ua >= ub,
                    }
                };
                match (ops[0], ops[1]) {
                    (RawVal::I32(a), RawVal::I32(b)) => {
                        RawVal::I1(cmp(a as i64, b as i64, a as u32 as u64, b as u32 as u64))
                    }
                    (RawVal::I64(a), RawVal::I64(b)) => RawVal::I1(cmp(a, b, a as u64, b as u64)),
                    (RawVal::I1(a), RawVal::I1(b)) => {
                        RawVal::I1(cmp(a as i64, b as i64, a as u64, b as u64))
                    }
                    (RawVal::Ptr(a), RawVal::Ptr(b)) => RawVal::I1(cmp(a as i64, b as i64, a, b)),
                    _ => RawVal::Undef,
                }
            }
            Fcmp(pred) => {
                use darm_ir::FcmpPred::*;
                match (ops[0], ops[1]) {
                    (RawVal::F32(a), RawVal::F32(b)) => RawVal::I1(match pred {
                        Oeq => a == b,
                        One => a != b,
                        Olt => a < b,
                        Ole => a <= b,
                        Ogt => a > b,
                        Oge => a >= b,
                    }),
                    _ => RawVal::Undef,
                }
            }
            Select => match ops[0] {
                RawVal::I1(true) => ops[1],
                RawVal::I1(false) => ops[2],
                _ => RawVal::Undef,
            },
            Zext | Sext => match ops[0] {
                RawVal::I1(b) => {
                    let x = if data.opcode == Zext {
                        b as i64
                    } else {
                        -(b as i64)
                    };
                    match data.ty {
                        Type::I32 => RawVal::I32(x as i32),
                        Type::I64 => RawVal::I64(x),
                        _ => RawVal::Undef,
                    }
                }
                RawVal::I32(v) => {
                    let x = if data.opcode == Zext {
                        v as u32 as i64
                    } else {
                        v as i64
                    };
                    match data.ty {
                        Type::I64 => RawVal::I64(x),
                        Type::I32 => RawVal::I32(v),
                        _ => RawVal::Undef,
                    }
                }
                _ => RawVal::Undef,
            },
            Trunc => match ops[0] {
                RawVal::I64(v) => match data.ty {
                    Type::I32 => RawVal::I32(v as i32),
                    Type::I1 => RawVal::I1(v & 1 != 0),
                    _ => RawVal::Undef,
                },
                RawVal::I32(v) => match data.ty {
                    Type::I1 => RawVal::I1(v & 1 != 0),
                    _ => RawVal::Undef,
                },
                _ => RawVal::Undef,
            },
            SiToFp => match ops[0] {
                RawVal::I32(v) => RawVal::F32(v as f32),
                RawVal::I64(v) => RawVal::F32(v as f32),
                _ => RawVal::Undef,
            },
            FpToSi => match ops[0] {
                RawVal::F32(v) => match data.ty {
                    Type::I32 => RawVal::I32(v as i32),
                    Type::I64 => RawVal::I64(v as i64),
                    _ => RawVal::Undef,
                },
                _ => RawVal::Undef,
            },
            Gep { elem } => match (ops[0], ops[1].as_i64_index()) {
                (RawVal::Ptr(base), Some(idx)) => {
                    RawVal::Ptr(base.wrapping_add((idx as u64).wrapping_mul(elem.size_bytes())))
                }
                _ => RawVal::Undef,
            },
            Load => {
                let RawVal::Ptr(addr) = ops[0] else {
                    return Err(SimError::UndefValue("load address".into()));
                };
                lane_addrs.push(addr);
                self.mem_read(data.ty, addr)?
            }
            Store => {
                let RawVal::Ptr(addr) = ops[1] else {
                    return Err(SimError::UndefValue("store address".into()));
                };
                if matches!(ops[0], RawVal::Undef) {
                    return Err(SimError::UndefValue("stored value".into()));
                }
                lane_addrs.push(addr);
                self.mem_write(addr, ops[0])?;
                RawVal::Undef
            }
            ThreadIdx(d) => {
                let t = thread as u32;
                let (tx, ty) = (t % self.launch.block.0, t / self.launch.block.0);
                RawVal::I32(if d == Dim::X { tx } else { ty } as i32)
            }
            BlockIdx(d) => RawVal::I32(if d == Dim::X {
                self.block_idx.0
            } else {
                self.block_idx.1
            } as i32),
            BlockDim(d) => RawVal::I32(if d == Dim::X {
                self.launch.block.0
            } else {
                self.launch.block.1
            } as i32),
            GridDim(d) => RawVal::I32(if d == Dim::X {
                self.launch.grid.0
            } else {
                self.launch.grid.1
            } as i32),
            SharedBase(k) => RawVal::Ptr(encode_shared(self.shared_offsets[k as usize])),
            Ballot => unreachable!("ballot is executed warp-wide by the warp loop"),
            Phi => unreachable!("phis are evaluated in a batch at block entry"),
            Br | Jump | Ret | Syncthreads => unreachable!("handled by the warp loop"),
        })
    }

    fn mem_read(&self, ty: Type, addr: u64) -> Result<RawVal, SimError> {
        let (buf, off) = decode(addr);
        let store = match buf {
            Some(b) => self.buffers.get(b.0 as usize).ok_or_else(|| {
                SimError::OutOfBounds(format!("unknown buffer in address {addr:#x}"))
            })?,
            None => &self.shared,
        };
        store.read(ty, off).ok_or_else(|| {
            SimError::OutOfBounds(format!(
                "read of {ty} at offset {off} (len {})",
                store.len()
            ))
        })
    }

    fn mem_write(&mut self, addr: u64, v: RawVal) -> Result<(), SimError> {
        let (buf, off) = decode(addr);
        let store = match buf {
            Some(b) => self.buffers.get_mut(b.0 as usize).ok_or_else(|| {
                SimError::OutOfBounds(format!("unknown buffer in address {addr:#x}"))
            })?,
            None => &mut self.shared,
        };
        store.write(off, v).ok_or_else(|| {
            SimError::OutOfBounds(format!("write at offset {off} (len {})", store.len()))
        })
    }

    /// Charges cycles and updates counters for one warp-instruction issue.
    fn charge(&mut self, data: &InstData, mask: u64, lane_addrs: &[u64]) {
        let active = mask.count_ones() as u64;
        if active == 0 {
            return;
        }
        self.stats.warp_instructions += 1;
        self.stats.thread_instructions += active;
        use Opcode::*;
        match data.opcode {
            Load | Store => {
                // Infer the address space from the encoded addresses (global
                // addresses carry a buffer id in the high bits).
                let is_global = lane_addrs
                    .first()
                    .map(|&a| decode(a).0.is_some())
                    .unwrap_or(false);
                let space = if is_global {
                    darm_ir::AddrSpace::Global
                } else {
                    darm_ir::AddrSpace::Shared
                };
                match space {
                    darm_ir::AddrSpace::Global => {
                        self.stats.global_mem_insts += 1;
                        let mut segments: Vec<u64> = lane_addrs
                            .iter()
                            .map(|a| a / cost::COALESCE_SEGMENT_BYTES)
                            .collect();
                        segments.sort_unstable();
                        segments.dedup();
                        let n_seg = segments.len().max(1) as u64;
                        self.stats.global_transactions += n_seg;
                        self.stats.cycles += cost::GLOBAL_MEM_LATENCY
                            + (n_seg - 1) * cost::GLOBAL_TRANSACTION_LATENCY;
                    }
                    darm_ir::AddrSpace::Shared => {
                        self.stats.shared_mem_insts += 1;
                        // Bank-conflict model: accesses to distinct words in
                        // the same bank serialize; broadcasts do not.
                        let mut per_bank: std::collections::HashMap<
                            u64,
                            std::collections::HashSet<u64>,
                        > = std::collections::HashMap::new();
                        for &a in lane_addrs {
                            let word = a / cost::SHARED_BANK_WORD_BYTES;
                            per_bank
                                .entry(word % cost::SHARED_BANKS)
                                .or_default()
                                .insert(word);
                        }
                        let degree = per_bank
                            .values()
                            .map(|w| w.len() as u64)
                            .max()
                            .unwrap_or(1)
                            .max(1);
                        self.stats.shared_bank_conflicts += degree - 1;
                        self.stats.cycles += cost::SHARED_MEM_LATENCY
                            + (degree - 1) * cost::SHARED_BANK_CONFLICT_PENALTY;
                    }
                }
            }
            Phi => {}
            Syncthreads => {}
            Br | Jump | Ret => {
                self.stats.cycles += cost::latency(data.opcode, None);
            }
            _ => {
                self.stats.cycles += cost::latency(data.opcode, None);
                self.stats.alu_issues += 1;
                self.stats.alu_active_lanes += active;
            }
        }
    }
}
