//! Integration tests for the cycle-level timing observer.
//!
//! The kernel under test is the fig8-style if/else diamond: a
//! tid-dependent branch splits the warp, each arm does one ALU op, and
//! the arms reconverge at the immediate post-dominator where a φ selects
//! the result. This is the smallest kernel that exercises every timing
//! sub-model: the IPDOM reconvergence stack, masked issue slots, the
//! scoreboard (the φ's readiness is the max over both arms' producers),
//! and the memory model (the final store).

use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, Dim, Function, IcmpPred, Type};
use darm_simt::{
    BytecodeKernel, Gpu, GpuConfig, KernelArg, KernelStats, LaunchConfig, PreparedKernel,
    TimingConfig,
};

const N_THREADS: u32 = 8;

/// `f(out: ptr)` — the fig8 diamond:
///
/// ```text
/// entry: tid; c = tid < 4; br c, then, else
/// then:  a = tid * 3;      jump join
/// else:  b = tid + 1;      jump join
/// join:  v = phi [then a, else b]; out[tid] = v; ret
/// ```
fn diamond() -> Function {
    let mut f = Function::new("diamond", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let then_bb = f.add_block("then");
    let else_bb = f.add_block("else");
    let join_bb = f.add_block("join");
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let c = b.icmp(IcmpPred::Slt, tid, b.const_i32(4));
    b.br(c, then_bb, else_bb);
    b.switch_to(then_bb);
    let a = b.mul(tid, b.const_i32(3));
    b.jump(join_bb);
    b.switch_to(else_bb);
    let e = b.add(tid, b.const_i32(1));
    b.jump(join_bb);
    b.switch_to(join_bb);
    let v = b.phi(Type::I32, &[(then_bb, a), (else_bb, e)]);
    let p = b.gep(Type::I32, b.param(0), tid);
    b.store(v, p);
    b.ret(None);
    f
}

fn gpu(timing: TimingConfig) -> (Gpu, darm_simt::BufferId) {
    let mut gpu = Gpu::new(GpuConfig {
        warp_size: N_THREADS,
        timing,
        ..GpuConfig::default()
    });
    let out = gpu.alloc_i32(&[0; N_THREADS as usize]);
    (gpu, out)
}

fn cfg() -> LaunchConfig {
    LaunchConfig {
        grid: (1, 1),
        block: (N_THREADS, 1),
    }
}

fn timing8() -> TimingConfig {
    TimingConfig {
        issue_width: 8,
        ..TimingConfig::on()
    }
}

fn run_prepared(f: &Function, timing: TimingConfig) -> (KernelStats, Vec<u8>) {
    let pk = PreparedKernel::new(f);
    let (mut gpu, out) = gpu(timing);
    let stats = gpu
        .launch_prepared(&pk, &cfg(), &[KernelArg::Buffer(out)])
        .expect("diamond runs clean");
    (stats, gpu.read_bytes(out).to_vec())
}

fn run_bytecode(f: &Function, timing: TimingConfig) -> (KernelStats, Vec<u8>) {
    let pk = PreparedKernel::new(f);
    let bk = BytecodeKernel::from_prepared(&pk);
    let (mut gpu, out) = gpu(timing);
    let stats = gpu
        .launch_bytecode(&bk, &cfg(), &[KernelArg::Buffer(out)])
        .expect("diamond runs clean");
    (stats, gpu.read_bytes(out).to_vec())
}

/// The pinned fig8 numbers: with 8 lanes and `issue_width: 8` every warp
/// instruction is one slot, so the divergent branch costs the *sum* of
/// both arms (2 + 2 slots) rather than the max: entry 3 (tid, icmp, br),
/// then 2 (mul, jump), else 2 (add, jump), join 3 (gep, store, ret) —
/// 10 slots total. One divergent branch, two reconvergence pops (one per
/// arm's jump into the IPDOM); the final `ret` pops the base entry,
/// which has no mirror frame and charges nothing.
#[test]
fn diamond_costs_sum_of_both_arms() {
    let f = diamond();
    for (stats, _) in [run_prepared(&f, timing8()), run_bytecode(&f, timing8())] {
        assert_eq!(stats.sim_issue_slots, 10);
        assert_eq!(stats.sim_divergent_branches, 1);
        assert_eq!(stats.sim_reconvergences, 2);
        assert!(stats.sim_cycles >= 10, "latency adds cycles beyond slots");
        assert!(stats.sim_stall_cycles > 0, "dependent ops must stall");
    }
}

/// Halving the issue width doubles the slot cost of every full-width
/// instruction but leaves the 4-lane arms at one slot each.
#[test]
fn issue_width_scales_slot_cost() {
    let f = diamond();
    let narrow = TimingConfig {
        issue_width: 4,
        ..TimingConfig::on()
    };
    let (stats, _) = run_prepared(&f, narrow);
    // entry 3×2 + arms 4×1 + join 3×2 = 16.
    assert_eq!(stats.sim_issue_slots, 16);
    assert_eq!(stats.sim_divergent_branches, 1);
}

/// Both engines walk the same instruction stream with the same masks, so
/// the simulated timeline must agree exactly — not approximately.
#[test]
fn decoded_and_bytecode_agree_on_cycles() {
    let f = diamond();
    let (dec, dec_buf) = run_prepared(&f, timing8());
    let (bc, bc_buf) = run_bytecode(&f, timing8());
    assert_eq!(dec, bc, "full stats including sim_* must match");
    assert_eq!(dec_buf, bc_buf);
}

/// The model is all-integer with a fixed warp iteration order: two runs
/// must produce bit-identical cycle counts.
#[test]
fn timing_is_deterministic() {
    let f = diamond();
    let (a, _) = run_prepared(&f, timing8());
    let (b, _) = run_prepared(&f, timing8());
    assert_eq!(a, b);
    let (c, _) = run_bytecode(&f, timing8());
    let (d, _) = run_bytecode(&f, timing8());
    assert_eq!(c, d);
}

/// Timing is a pure observer: enabling it changes no buffers and no
/// architectural counters — the stats differ only in the sim_* fields.
#[test]
fn timing_is_a_pure_observer() {
    let f = diamond();
    let (off, off_buf) = run_prepared(&f, TimingConfig::default());
    let (on, on_buf) = run_prepared(&f, timing8());
    assert_eq!(on_buf, off_buf);
    assert_eq!(on.sans_timing(), off);
    assert_eq!(off.sim_cycles, 0, "disabled timing reports zero cycles");

    let (off_bc, off_bc_buf) = run_bytecode(&f, TimingConfig::default());
    let (on_bc, on_bc_buf) = run_bytecode(&f, timing8());
    assert_eq!(on_bc_buf, off_bc_buf);
    assert_eq!(on_bc.sans_timing(), off_bc);
}

/// The reference interpreter is the semantic oracle only — it never
/// carries the timing observer, even when the config asks for it.
#[test]
fn reference_tier_reports_no_cycles() {
    let f = diamond();
    let (mut gpu, out) = gpu(timing8());
    let stats = gpu
        .launch_reference(&f, &cfg(), &[KernelArg::Buffer(out)])
        .expect("diamond runs clean");
    assert_eq!(stats.sim_cycles, 0);
    assert_eq!(stats.sim_issue_slots, 0);
}

/// Turning the memory model off removes coalescing/bank-conflict
/// occupancy but keeps issue slots and divergence counts identical.
#[test]
fn memory_model_only_affects_cycles() {
    let f = diamond();
    let no_mem = TimingConfig {
        memory_model: false,
        ..timing8()
    };
    let (with_mem, _) = run_prepared(&f, timing8());
    let (without, _) = run_prepared(&f, no_mem);
    assert_eq!(with_mem.sim_issue_slots, without.sim_issue_slots);
    assert_eq!(
        with_mem.sim_divergent_branches,
        without.sim_divergent_branches
    );
    // The diamond's store is fully coalesced (one 32-byte run inside one
    // segment), so the occupancy term is zero either way.
    assert_eq!(with_mem.sim_cycles, without.sim_cycles);
}
