//! End-to-end simulator tests: SIMT semantics (lockstep, reconvergence,
//! barriers) and the performance-counter model.

use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, Dim, Function, IcmpPred, Type, Value};
use darm_simt::{Gpu, GpuConfig, KernelArg, KernelStats, LaunchConfig, SimError};

fn gpu() -> Gpu {
    Gpu::new(GpuConfig::default())
}

/// out[tid] = (tid % 2 == 0) ? tid * 3 : tid + 100, via a divergent branch.
fn divergent_kernel() -> Function {
    let mut f = Function::new("div", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let even = f.add_block("even");
    let odd = f.add_block("odd");
    let join = f.add_block("join");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let two = b.const_i32(2);
    let rem = b.srem(tid, two);
    let c = b.icmp(IcmpPred::Eq, rem, b.const_i32(0));
    b.br(c, even, odd);
    b.switch_to(even);
    let v1 = b.mul(tid, b.const_i32(3));
    b.jump(join);
    b.switch_to(odd);
    let v2 = b.add(tid, b.const_i32(100));
    b.jump(join);
    b.switch_to(join);
    let v = b.phi(Type::I32, &[(even, v1), (odd, v2)]);
    let p = b.gep(Type::I32, b.param(0), tid);
    b.store(v, p);
    b.ret(None);
    f
}

#[test]
fn divergent_branch_reconverges_with_correct_values() {
    let f = divergent_kernel();
    let mut g = gpu();
    let buf = g.alloc_i32(&[0; 64]);
    let stats = g
        .launch(&f, &LaunchConfig::linear(1, 64), &[KernelArg::Buffer(buf)])
        .unwrap();
    let out = g.read_i32(buf);
    for tid in 0..64 {
        let expect = if tid % 2 == 0 { tid * 3 } else { tid + 100 };
        assert_eq!(out[tid as usize], expect, "tid {tid}");
    }
    // Both sides executed under partial masks: SIMD efficiency below 1.
    assert!(stats.simd_efficiency() < 1.0);
    assert!(stats.alu_utilization() < 100.0);
}

#[test]
fn uniform_branch_keeps_full_efficiency() {
    // All threads take the same side: no divergence penalty.
    let mut f = Function::new(
        "uni",
        vec![Type::Ptr(AddrSpace::Global), Type::I32],
        Type::Void,
    );
    let entry = f.entry();
    let t = f.add_block("t");
    let e = f.add_block("e");
    let x = f.add_block("x");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let c = b.icmp(IcmpPred::Sgt, b.param(1), b.const_i32(0));
    b.br(c, t, e);
    b.switch_to(t);
    let v1 = b.mul(tid, b.const_i32(2));
    b.jump(x);
    b.switch_to(e);
    let v2 = b.add(tid, b.const_i32(7));
    b.jump(x);
    b.switch_to(x);
    let v = b.phi(Type::I32, &[(t, v1), (e, v2)]);
    let p = b.gep(Type::I32, b.param(0), tid);
    b.store(v, p);
    b.ret(None);

    let mut g = gpu();
    let buf = g.alloc_i32(&[0; 32]);
    let stats = g
        .launch(
            &f,
            &LaunchConfig::linear(1, 32),
            &[KernelArg::Buffer(buf), KernelArg::I32(1)],
        )
        .unwrap();
    assert_eq!(g.read_i32(buf)[5], 10);
    assert!((stats.simd_efficiency() - 1.0).abs() < 1e-9);
    assert!((stats.alu_utilization() - 100.0).abs() < 1e-9);
}

#[test]
fn divergence_costs_cycles_vs_uniform_equivalent() {
    // Same total work, once divergent (odd/even) and once uniform.
    let div = divergent_kernel();
    let mut uni = Function::new("u", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    {
        let entry = uni.entry();
        let mut b = FunctionBuilder::new(&mut uni, entry);
        let tid = b.thread_idx(Dim::X);
        let v = b.mul(tid, b.const_i32(3));
        let p = b.gep(Type::I32, b.param(0), tid);
        b.store(v, p);
        b.ret(None);
    }
    let mut g = gpu();
    let b1 = g.alloc_i32(&[0; 64]);
    let b2 = g.alloc_i32(&[0; 64]);
    let sd = g
        .launch(&div, &LaunchConfig::linear(1, 64), &[KernelArg::Buffer(b1)])
        .unwrap();
    let su = g
        .launch(&uni, &LaunchConfig::linear(1, 64), &[KernelArg::Buffer(b2)])
        .unwrap();
    assert!(sd.cycles > su.cycles);
    assert!(sd.warp_instructions > su.warp_instructions);
}

#[test]
fn loop_with_phi_executes() {
    // out[tid] = sum(0..=tid)
    let mut f = Function::new("loop", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let header = f.add_block("header");
    let body = f.add_block("body");
    let exit = f.add_block("exit");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    b.jump(header);
    b.switch_to(header);
    let i = b.phi(Type::I32, &[(entry, Value::I32(0))]);
    let acc = b.phi(Type::I32, &[(entry, Value::I32(0))]);
    let c = b.icmp(IcmpPred::Sle, i, tid);
    b.br(c, body, exit);
    b.switch_to(body);
    let acc2 = b.add(acc, i);
    let i2 = b.add(i, b.const_i32(1));
    b.jump(header);
    b.switch_to(exit);
    let p = b.gep(Type::I32, b.param(0), tid);
    b.store(acc, p);
    b.ret(None);
    let (pi, pa) = (i.as_inst().unwrap(), acc.as_inst().unwrap());
    f.inst_mut(pi).operands.push(i2);
    f.inst_mut(pi).phi_blocks.push(body);
    f.inst_mut(pa).operands.push(acc2);
    f.inst_mut(pa).phi_blocks.push(body);

    let mut g = gpu();
    let buf = g.alloc_i32(&[0; 32]);
    g.launch(&f, &LaunchConfig::linear(1, 32), &[KernelArg::Buffer(buf)])
        .unwrap();
    let out = g.read_i32(buf);
    for tid in 0..32i32 {
        assert_eq!(out[tid as usize], tid * (tid + 1) / 2, "tid {tid}");
    }
}

#[test]
fn nested_divergence_reconverges() {
    // if (tid & 1) { if (tid & 2) a = 1 else a = 2 } else a = 3
    let mut f = Function::new("nest", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let outer_t = f.add_block("outer_t");
    let in_t = f.add_block("in_t");
    let in_e = f.add_block("in_e");
    let in_j = f.add_block("in_j");
    let outer_e = f.add_block("outer_e");
    let join = f.add_block("join");
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let a1 = b.and(tid, b.const_i32(1));
    let c1 = b.icmp(IcmpPred::Ne, a1, b.const_i32(0));
    b.br(c1, outer_t, outer_e);
    b.switch_to(outer_t);
    let a2 = b.and(tid, b.const_i32(2));
    let c2 = b.icmp(IcmpPred::Ne, a2, b.const_i32(0));
    b.br(c2, in_t, in_e);
    b.switch_to(in_t);
    b.jump(in_j);
    b.switch_to(in_e);
    b.jump(in_j);
    b.switch_to(in_j);
    let v_in = b.phi(Type::I32, &[(in_t, Value::I32(1)), (in_e, Value::I32(2))]);
    b.jump(join);
    b.switch_to(outer_e);
    b.jump(join);
    b.switch_to(join);
    let v = b.phi(Type::I32, &[(in_j, v_in), (outer_e, Value::I32(3))]);
    let p = b.gep(Type::I32, b.param(0), tid);
    b.store(v, p);
    b.ret(None);

    let mut g = gpu();
    let buf = g.alloc_i32(&[0; 32]);
    g.launch(&f, &LaunchConfig::linear(1, 32), &[KernelArg::Buffer(buf)])
        .unwrap();
    let out = g.read_i32(buf);
    for tid in 0..32 {
        let expect = if tid & 1 != 0 {
            if tid & 2 != 0 {
                1
            } else {
                2
            }
        } else {
            3
        };
        assert_eq!(out[tid as usize], expect, "tid {tid}");
    }
}

#[test]
#[allow(clippy::needless_range_loop)]
fn shared_memory_and_barrier_reverse_across_warps() {
    // shared[tid] = in[tid]; barrier; out[tid] = shared[n-1-tid]
    // With 128 threads = 4 warps, correctness requires the barrier.
    let n = 128u32;
    let mut f = Function::new(
        "rev",
        vec![Type::Ptr(AddrSpace::Global), Type::Ptr(AddrSpace::Global)],
        Type::Void,
    );
    let sh = f.add_shared_array("tile", Type::I32, n as u64);
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let gin = b.gep(Type::I32, b.param(0), tid);
    let v = b.load(Type::I32, gin);
    let base = b.shared_base(sh);
    let sp = b.gep(Type::I32, base, tid);
    b.store(v, sp);
    b.syncthreads();
    let nm1 = b.const_i32(n as i32 - 1);
    let ridx = b.sub(nm1, tid);
    let rp = b.gep(Type::I32, base, ridx);
    let rv = b.load(Type::I32, rp);
    let gout = b.gep(Type::I32, b.param(1), tid);
    b.store(rv, gout);
    b.ret(None);

    let input: Vec<i32> = (0..n as i32).map(|x| x * 7).collect();
    let mut g = gpu();
    let bin = g.alloc_i32(&input);
    let bout = g.alloc_i32(&vec![0; n as usize]);
    let stats = g
        .launch(
            &f,
            &LaunchConfig::linear(1, n),
            &[KernelArg::Buffer(bin), KernelArg::Buffer(bout)],
        )
        .unwrap();
    let out = g.read_i32(bout);
    for i in 0..n as usize {
        assert_eq!(out[i], input[n as usize - 1 - i]);
    }
    assert_eq!(stats.barriers, 4); // one per warp
    assert!(stats.shared_mem_insts > 0);
}

#[test]
#[allow(clippy::needless_range_loop)]
fn multi_block_grid_covers_all_threads() {
    // out[ctaid * ntid + tid] = ctaid
    let mut f = Function::new("grid", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let bid = b.block_idx(Dim::X);
    let bdim = b.block_dim(Dim::X);
    let off = b.mul(bid, bdim);
    let gid = b.add(off, tid);
    let p = b.gep(Type::I32, b.param(0), gid);
    b.store(bid, p);
    b.ret(None);

    let mut g = gpu();
    let buf = g.alloc_i32(&[0; 256]);
    g.launch(&f, &LaunchConfig::linear(4, 64), &[KernelArg::Buffer(buf)])
        .unwrap();
    let out = g.read_i32(buf);
    for i in 0..256 {
        assert_eq!(out[i], (i / 64) as i32);
    }
}

#[test]
#[allow(clippy::needless_range_loop)]
fn two_dimensional_launch() {
    // out[ty * dimx + tx] = tx + 10 * ty
    let mut f = Function::new("k2d", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tx = b.thread_idx(Dim::X);
    let ty = b.thread_idx(Dim::Y);
    let dimx = b.block_dim(Dim::X);
    let row = b.mul(ty, dimx);
    let idx = b.add(row, tx);
    let ten = b.const_i32(10);
    let sy = b.mul(ty, ten);
    let v = b.add(tx, sy);
    let p = b.gep(Type::I32, b.param(0), idx);
    b.store(v, p);
    b.ret(None);

    let mut g = gpu();
    let buf = g.alloc_i32(&[0; 64]);
    g.launch(
        &f,
        &LaunchConfig::grid2d((1, 1), (8, 8)),
        &[KernelArg::Buffer(buf)],
    )
    .unwrap();
    let out = g.read_i32(buf);
    for y in 0..8 {
        for x in 0..8 {
            assert_eq!(out[y * 8 + x], (x + 10 * y) as i32);
        }
    }
}

#[test]
fn coalescing_counts_transactions() {
    // Coalesced: out[tid] = in[tid]. Scattered: out[tid] = in[tid * 64].
    let build = |stride: i32| {
        let mut f = Function::new(
            "c",
            vec![Type::Ptr(AddrSpace::Global), Type::Ptr(AddrSpace::Global)],
            Type::Void,
        );
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let s = b.const_i32(stride);
        let idx = b.mul(tid, s);
        let pin = b.gep(Type::I32, b.param(0), idx);
        let v = b.load(Type::I32, pin);
        let pout = b.gep(Type::I32, b.param(1), tid);
        b.store(v, pout);
        b.ret(None);
        f
    };
    let mut g = gpu();
    let big = g.alloc_i32(&vec![1; 64 * 32]);
    let out = g.alloc_i32(&[0; 32]);
    let coalesced = g
        .launch(
            &build(1),
            &LaunchConfig::linear(1, 32),
            &[KernelArg::Buffer(big), KernelArg::Buffer(out)],
        )
        .unwrap();
    let scattered = g
        .launch(
            &build(64),
            &LaunchConfig::linear(1, 32),
            &[KernelArg::Buffer(big), KernelArg::Buffer(out)],
        )
        .unwrap();
    assert!(scattered.global_transactions > coalesced.global_transactions);
    assert!(scattered.cycles > coalesced.cycles);
}

#[test]
#[allow(clippy::needless_range_loop)]
fn ballot_returns_warp_mask() {
    // out[tid] = popcount-ish check: ballot(tid < 4) must equal 0b1111 for
    // every lane of warp 0.
    let mut f = Function::new("bal", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let c = b.icmp(IcmpPred::Slt, tid, b.const_i32(4));
    let mask = b.ballot(c);
    let lo = b.trunc(mask, Type::I32);
    let p = b.gep(Type::I32, b.param(0), tid);
    b.store(lo, p);
    b.ret(None);

    let mut g = gpu();
    let buf = g.alloc_i32(&[0; 32]);
    g.launch(&f, &LaunchConfig::linear(1, 32), &[KernelArg::Buffer(buf)])
        .unwrap();
    let out = g.read_i32(buf);
    for i in 0..32 {
        assert_eq!(out[i], 0b1111, "lane {i}");
    }
}

#[test]
fn out_of_bounds_is_an_error() {
    let mut f = Function::new("oob", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let big = b.add(tid, b.const_i32(1_000_000));
    let p = b.gep(Type::I32, b.param(0), big);
    b.store(tid, p);
    b.ret(None);
    let mut g = gpu();
    let buf = g.alloc_i32(&[0; 8]);
    let err = g
        .launch(&f, &LaunchConfig::linear(1, 8), &[KernelArg::Buffer(buf)])
        .unwrap_err();
    assert!(matches!(err, SimError::OutOfBounds(_)));
}

#[test]
fn bad_args_are_rejected() {
    let f = divergent_kernel();
    let mut g = gpu();
    let err = g.launch(&f, &LaunchConfig::linear(1, 8), &[]).unwrap_err();
    assert!(matches!(err, SimError::BadArgs(_)));
    let err2 = g
        .launch(&f, &LaunchConfig::linear(1, 8), &[KernelArg::I32(3)])
        .unwrap_err();
    assert!(matches!(err2, SimError::BadArgs(_)));
}

#[test]
fn infinite_loop_hits_step_limit() {
    let mut f = Function::new("inf", vec![], Type::Void);
    let entry = f.entry();
    let spin = f.add_block("spin");
    let mut b = FunctionBuilder::new(&mut f, entry);
    b.jump(spin);
    b.switch_to(spin);
    let x = b.add(b.const_i32(1), b.const_i32(1));
    let _y = b.mul(x, x);
    b.jump(spin);
    let mut g = Gpu::new(GpuConfig {
        warp_size: 32,
        max_warp_instructions: 10_000,
        ..GpuConfig::default()
    });
    let err = g.launch(&f, &LaunchConfig::linear(1, 32), &[]).unwrap_err();
    assert!(matches!(err, SimError::StepLimit));
}

#[test]
fn stats_accumulate_across_blocks() {
    let f = divergent_kernel();
    let mut g = gpu();
    let buf1 = g.alloc_i32(&[0; 64]);
    let one: KernelStats = g
        .launch(&f, &LaunchConfig::linear(1, 64), &[KernelArg::Buffer(buf1)])
        .unwrap();
    let buf2 = g.alloc_i32(&[0; 256]);
    let four: KernelStats = g
        .launch(&f, &LaunchConfig::linear(4, 64), &[KernelArg::Buffer(buf2)])
        .unwrap();
    assert_eq!(four.warp_instructions, 4 * one.warp_instructions);
    assert_eq!(four.cycles, 4 * one.cycles);
}

#[test]
fn shared_memory_bank_conflicts_cost_cycles() {
    // Conflict-free: tile[tid]. 8-way conflict: tile[tid * 8] (every 8th
    // lane maps to the same bank with distinct words).
    let build = |stride: i32| {
        let mut f = Function::new("bank", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
        let sh = f.add_shared_array("tile", Type::I32, 32 * 8);
        let entry = f.entry();
        let mut b = FunctionBuilder::new(&mut f, entry);
        let tid = b.thread_idx(Dim::X);
        let s = b.const_i32(stride);
        let idx = b.mul(tid, s);
        let base = b.shared_base(sh);
        let p = b.gep(Type::I32, base, idx);
        b.store(tid, p);
        let v = b.load(Type::I32, p);
        let gp = b.gep(Type::I32, b.param(0), tid);
        b.store(v, gp);
        b.ret(None);
        f
    };
    let mut g = gpu();
    let out = g.alloc_i32(&[0; 32]);
    let clean = g
        .launch(
            &build(1),
            &LaunchConfig::linear(1, 32),
            &[KernelArg::Buffer(out)],
        )
        .unwrap();
    let conflicted = g
        .launch(
            &build(8),
            &LaunchConfig::linear(1, 32),
            &[KernelArg::Buffer(out)],
        )
        .unwrap();
    assert_eq!(clean.shared_bank_conflicts, 0);
    assert!(conflicted.shared_bank_conflicts > 0);
    assert!(conflicted.cycles > clean.cycles);
    // Same number of issued LDS instructions either way: conflicts cost
    // cycles, not instruction count.
    assert_eq!(clean.shared_mem_insts, conflicted.shared_mem_insts);
}

#[test]
fn broadcast_shared_access_is_conflict_free() {
    // All lanes read tile[0]: a broadcast, not a conflict.
    let mut f = Function::new("bcast", vec![Type::Ptr(AddrSpace::Global)], Type::Void);
    let sh = f.add_shared_array("tile", Type::I32, 32);
    let entry = f.entry();
    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let base = b.shared_base(sh);
    let p0 = b.gep(Type::I32, base, b.const_i32(0));
    b.store(b.const_i32(7), p0);
    let v = b.load(Type::I32, p0);
    let gp = b.gep(Type::I32, b.param(0), tid);
    b.store(v, gp);
    b.ret(None);
    let mut g = gpu();
    let out = g.alloc_i32(&[0; 32]);
    let stats = g
        .launch(&f, &LaunchConfig::linear(1, 32), &[KernelArg::Buffer(out)])
        .unwrap();
    assert_eq!(stats.shared_bank_conflicts, 0);
    assert_eq!(g.read_i32(out), vec![7; 32]);
}
