//! Differential test: the pre-decoded warp-vectorized engine **and** the
//! flat register bytecode engine must produce **bit-identical** buffer
//! contents and identical [`KernelStats`] to the original per-lane
//! reference interpreter, for every kernel in `darm-kernels` — all fig. 8
//! synthetic shapes and all fig. 9 real-world cases, in the baseline,
//! DARM-melded and branch-fusion variants.

use darm_ir::Function;
use darm_kernels::synthetic::SyntheticKind;
use darm_kernels::{bitonic, dct, lud, mergesort, nqueens, pcm, srad, BenchCase};
use darm_melding::{meld_function, MeldConfig};
use darm_simt::{BytecodeKernel, Gpu, GpuConfig, KernelArg, KernelStats, PreparedKernel, SimError};

/// The fig. 8 synthetic grid plus the fig. 9 real-world grid (same block
/// sizes as `darm_bench::{fig8_cases, fig9_cases}`).
fn all_cases() -> Vec<BenchCase> {
    let mut cases = Vec::new();
    for kind in SyntheticKind::all() {
        for bs in [32, 64, 128, 256] {
            cases.push(darm_kernels::synthetic::build_case(kind, bs));
        }
    }
    for bs in [32, 64, 128, 256] {
        cases.push(bitonic::build_case(bs));
        cases.push(pcm::build_case(bs));
        cases.push(mergesort::build_case(bs));
    }
    for bs in [16, 32, 64, 128] {
        cases.push(lud::build_case(bs));
    }
    for bs in [64, 96, 128, 256] {
        cases.push(nqueens::build_case(bs));
    }
    for block in [(16, 16), (32, 32)] {
        cases.push(srad::build_case(block));
    }
    for block in [(4, 4), (8, 8), (16, 16)] {
        cases.push(dct::build_case(block));
    }
    cases
}

/// Sets up a fresh GPU with the case's buffers; returns the GPU, the launch
/// arguments, and per-argument buffer ids (`None` for scalar arguments).
fn setup(case: &BenchCase) -> (Gpu, Vec<KernelArg>, Vec<Option<darm_simt::BufferId>>) {
    let mut gpu = Gpu::new(GpuConfig::default());
    let (kargs, bufs) = case.alloc_args(&mut gpu);
    let bufs = bufs.into_iter().map(|b| b.map(|(id, _)| id)).collect();
    (gpu, kargs, bufs)
}

/// Runs `func` on the case's inputs with all three engines and asserts
/// equal stats/outcomes and bit-identical buffer contents.
fn assert_engines_agree(case: &BenchCase, func: &Function, variant: &str) {
    let (mut dec_gpu, dec_args, dec_bufs) = setup(case);
    let (mut ref_gpu, ref_args, ref_bufs) = setup(case);
    let (mut bc_gpu, bc_args, bc_bufs) = setup(case);

    let pk = PreparedKernel::new(func);
    let bk = BytecodeKernel::from_prepared(&pk);
    let decoded: Result<KernelStats, SimError> =
        dec_gpu.launch_prepared(&pk, &case.launch, &dec_args);
    let reference: Result<KernelStats, SimError> =
        ref_gpu.launch_reference(func, &case.launch, &ref_args);
    let bytecode: Result<KernelStats, SimError> =
        bc_gpu.launch_bytecode(&bk, &case.launch, &bc_args);

    assert_eq!(
        decoded, reference,
        "{} [{variant}]: decoded vs reference disagree on stats / outcome",
        case.name
    );
    assert_eq!(
        bytecode, reference,
        "{} [{variant}]: bytecode vs reference disagree on stats / outcome",
        case.name
    );
    for ((db, rb), bb) in dec_bufs.iter().zip(&ref_bufs).zip(&bc_bufs) {
        let (Some(db), Some(rb), Some(bb)) = (db, rb, bb) else {
            continue;
        };
        assert_eq!(
            dec_gpu.read_bytes(*db),
            ref_gpu.read_bytes(*rb),
            "{} [{variant}]: buffer {db:?} differs (decoded vs reference)",
            case.name
        );
        assert_eq!(
            bc_gpu.read_bytes(*bb),
            ref_gpu.read_bytes(*rb),
            "{} [{variant}]: buffer {bb:?} differs (bytecode vs reference)",
            case.name
        );
    }
}

#[test]
fn decoded_engine_matches_reference_on_all_kernels() {
    for case in all_cases() {
        assert_engines_agree(&case, &case.func, "baseline");

        let mut darm_fn = case.func.clone();
        meld_function(&mut darm_fn, &MeldConfig::default());
        assert_engines_agree(&case, &darm_fn, "darm");

        let mut bf_fn = case.func.clone();
        meld_function(&mut bf_fn, &MeldConfig::branch_fusion());
        assert_engines_agree(&case, &bf_fn, "bf");
    }
}

#[test]
fn decoded_engine_matches_reference_on_expected_outputs() {
    // Beyond engine agreement: the decoded engine must still match the CPU
    // reference implementation baked into each case.
    for case in all_cases() {
        let (mut gpu, args, bufs) = setup(&case);
        let pk = PreparedKernel::new(&case.func);
        gpu.launch_prepared(&pk, &case.launch, &args)
            .unwrap_or_else(|e| panic!("{}: decoded launch failed: {e}", case.name));
        for (idx, want) in &case.expected {
            let got_buf = bufs[*idx].expect("expected output must be a buffer argument");
            match want {
                darm_kernels::BufData::I32(w) => {
                    assert_eq!(&gpu.read_i32(got_buf), w, "{}: arg {idx}", case.name);
                }
                darm_kernels::BufData::F32(w) => {
                    let got = gpu.read_f32(got_buf);
                    for (pos, (a, b)) in w.iter().zip(&got).enumerate() {
                        assert!(
                            (a - b).abs() <= 1e-4 * (1.0 + a.abs()),
                            "{}: arg {idx} at {pos}: expected {a} got {b}",
                            case.name
                        );
                    }
                }
            }
        }
    }
}
