//! Property-based differential test: random divergent kernels must run
//! **bit-identically** — same `Result<KernelStats, SimError>`, same output
//! buffer bytes — on all three execution backends (reference interpreter,
//! decoded engine, flat register bytecode).
//!
//! The generator builds random CFGs in the style of the dominator
//! property tests (loops and unreachable subgraphs allowed), with
//! tid-dependent branch conditions so warps actually diverge, φs at every
//! multi-predecessor block, and per-block stores so control-flow
//! differences become observable in memory. A small instruction budget
//! keeps runaway loops cheap and makes the `StepLimit` path part of the
//! comparison; CFGs without post-dominators exercise `MissingIpdom`
//! error parity.

use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, BlockId, Dim, Function, IcmpPred, Type, Value};
use darm_simt::{
    BytecodeKernel, Gpu, GpuConfig, KernelArg, KernelStats, LaunchConfig, PreparedKernel, SimError,
};
use proptest::prelude::*;

const N_BLOCKS: usize = 6;
const N_THREADS: u32 = 48; // 1.5 warps per block: exercises partial masks
const OUT_LEN: usize = 64;

/// Per-block spec: `(succ1, succ2 — conditional branch if Some, condition
/// selector, value selector)`. One entry per block except the last (`ret`).
type BlockSpec = (usize, Option<usize>, u8, u8);

fn block_strategy(n: usize) -> impl Strategy<Value = Vec<BlockSpec>> {
    proptest::collection::vec((0..n, proptest::option::of(0..n), 0..6u8, 0..8u8), n - 1)
}

/// Builds a random divergent kernel `f(out: ptr, scalar: i32)` over the
/// spec. All values live in an entry-block pool (the entry dominates every
/// block, so any use is SSA-valid); multi-predecessor blocks get a φ over
/// pool values; every non-entry block stores to `out[tid]`.
fn build_kernel(n: usize, specs: &[BlockSpec]) -> Function {
    let mut f = Function::new(
        "rand",
        vec![Type::Ptr(AddrSpace::Global), Type::I32],
        Type::Void,
    );
    let mut ids: Vec<BlockId> = vec![f.entry()];
    for k in 1..n {
        ids.push(f.add_block(&format!("b{k}")));
    }

    // Predecessor sets implied by the edge list (dedup: a 2-target branch
    // may name the same successor twice).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, &(s1, s2, _, _)) in specs.iter().enumerate() {
        let mut link = |t: usize| {
            if !preds[t].contains(&k) {
                preds[t].push(k);
            }
        };
        link(s1 % n);
        if let Some(s2) = s2 {
            link(s2 % n);
        }
    }

    // Entry pool: all i32, all well-defined.
    let mut b = FunctionBuilder::new(&mut f, ids[0]);
    let tid = b.thread_idx(Dim::X);
    let bid = b.block_idx(Dim::X);
    let pool: Vec<Value> = vec![
        tid,
        b.add(tid, b.const_i32(1)),
        b.mul(tid, b.const_i32(3)),
        b.and(tid, b.const_i32(7)),
        b.xor(tid, bid),
        b.sub(b.const_i32(100), tid),
        b.param(1),
        b.const_i32(41),
    ];
    let out_ptr = b.gep(Type::I32, b.param(0), tid);

    // Bodies: φ (if the block joins), a little arithmetic, a store.
    for k in 1..n {
        b.switch_to(ids[k]);
        let vsel = if k < n - 1 { specs[k].3 as usize } else { 0 };
        let base = if preds[k].len() >= 2 {
            let incomings: Vec<(BlockId, Value)> = preds[k]
                .iter()
                .map(|&p| (ids[p], pool[(k + p + vsel) % pool.len()]))
                .collect();
            b.phi(Type::I32, &incomings)
        } else {
            pool[(k + vsel) % pool.len()]
        };
        let v = b.add(base, pool[vsel % pool.len()]);
        b.store(v, out_ptr);
    }

    // Terminators: blocks 0..n-1 branch per spec, the last block returns.
    for (k, &(s1, s2, csel, vsel)) in specs.iter().enumerate() {
        b.switch_to(ids[k]);
        match s2 {
            None => b.jump(ids[s1 % n]),
            Some(s2) => {
                let c = match csel {
                    // tid-dependent: diverges within a warp
                    0 => b.icmp(IcmpPred::Slt, tid, b.const_i32(16)),
                    1 => {
                        let parity = b.and(tid, b.const_i32(1));
                        b.icmp(IcmpPred::Eq, parity, b.const_i32(0))
                    }
                    // diverges across warps, uniform within
                    2 => b.icmp(IcmpPred::Uge, tid, b.const_i32(32)),
                    // fully uniform (scalar parameter)
                    3 => b.icmp(IcmpPred::Sgt, b.param(1), b.const_i32(k as i32)),
                    // pool-value dependent
                    4 => b.icmp(
                        IcmpPred::Slt,
                        pool[vsel as usize % pool.len()],
                        b.const_i32(50),
                    ),
                    _ => b.icmp(IcmpPred::Ne, bid, b.const_i32(k as i32 & 1)),
                };
                b.br(c, ids[s1 % n], ids[s2 % n]);
            }
        }
    }
    b.switch_to(ids[n - 1]);
    b.ret(None);
    f
}

/// A GPU with a small instruction budget, so runaway random loops resolve
/// quickly as `StepLimit` — which must itself be bit-identical.
fn gpu() -> (Gpu, darm_simt::BufferId) {
    let mut gpu = Gpu::new(GpuConfig {
        warp_size: 32,
        max_warp_instructions: 20_000,
        ..GpuConfig::default()
    });
    let out = gpu.alloc_i32(&[0; OUT_LEN]);
    (gpu, out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn backends_agree_on_random_divergent_kernels(specs in block_strategy(N_BLOCKS)) {
        let f = build_kernel(N_BLOCKS, &specs);
        let cfg = LaunchConfig {
            grid: (2, 1),
            block: (N_THREADS, 1),
        };

        let (mut ref_gpu, ref_out) = gpu();
        let (mut dec_gpu, dec_out) = gpu();
        let (mut bc_gpu, bc_out) = gpu();

        let pk = PreparedKernel::new(&f);
        let bk = BytecodeKernel::from_prepared(&pk);

        let reference: Result<KernelStats, SimError> =
            ref_gpu.launch_reference(&f, &cfg, &[KernelArg::Buffer(ref_out), KernelArg::I32(7)]);
        let decoded: Result<KernelStats, SimError> =
            dec_gpu.launch_prepared(&pk, &cfg, &[KernelArg::Buffer(dec_out), KernelArg::I32(7)]);
        let bytecode: Result<KernelStats, SimError> =
            bc_gpu.launch_bytecode(&bk, &cfg, &[KernelArg::Buffer(bc_out), KernelArg::I32(7)]);

        prop_assert_eq!(&decoded, &reference, "decoded vs reference outcome");
        prop_assert_eq!(&bytecode, &reference, "bytecode vs reference outcome");
        prop_assert_eq!(
            dec_gpu.read_bytes(dec_out),
            ref_gpu.read_bytes(ref_out),
            "decoded vs reference buffer"
        );
        prop_assert_eq!(
            bc_gpu.read_bytes(bc_out),
            ref_gpu.read_bytes(ref_out),
            "bytecode vs reference buffer"
        );
    }
}
