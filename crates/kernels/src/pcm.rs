//! PCM — partition and concurrent merge (Batcher-style odd-even merging).
//!
//! Each block sorts its bucket in shared memory with odd-even transposition
//! phases. The compare-exchange direction check is *data dependent*
//! (`tile[i] > tile[i+1]`), and each side of it contains a nested if-then
//! region over shared memory — the "loops with nested data-dependent
//! branches" structure §VI-A describes. Branch fusion only melds the inner
//! diamonds; DARM melds the whole region.

use crate::{ArgSpec, BenchCase, BufData};
use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, Dim, Function, IcmpPred, Type, Value};
use darm_simt::LaunchConfig;

const GRID: u32 = 2;

/// Builds a `PCM<block_size>` case.
pub fn build_case(block_size: u32) -> BenchCase {
    let n = (GRID * block_size) as usize;
    let input = crate::pseudo_random_i32(0x9C31, n, 50_000);
    let mut expected = input.clone();
    for chunk in expected.chunks_mut(block_size as usize) {
        chunk.sort_unstable();
    }
    BenchCase {
        name: format!("PCM{block_size}"),
        func: build_kernel(block_size),
        launch: LaunchConfig::linear(GRID, block_size),
        args: vec![ArgSpec::BufI32(vec![0; n]), ArgSpec::BufI32(input)],
        expected: vec![(0, BufData::I32(expected))],
    }
}

/// Builds the PCM kernel: `block_size` odd-even phases over a shared tile.
pub fn build_kernel(block_size: u32) -> Function {
    let mut f = Function::new(
        &format!("pcm_{block_size}"),
        vec![Type::Ptr(AddrSpace::Global), Type::Ptr(AddrSpace::Global)],
        Type::Void,
    );
    let sh = f.add_shared_array("tile", Type::I32, block_size as u64);
    let entry = f.entry();
    let p_hdr = f.add_block("p.hdr");
    let p_body = f.add_block("p.body");
    let active = f.add_block("active");
    let gt = f.add_block("gt"); // tile[i] > tile[i+1]
    let gt_then = f.add_block("gt.then");
    let gt_join = f.add_block("gt.join");
    let le = f.add_block("le");
    let le_then = f.add_block("le.then");
    let le_join = f.add_block("le.join");
    let merge = f.add_block("merge");
    let p_latch = f.add_block("p.latch");
    let done = f.add_block("done");

    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let bid = b.block_idx(Dim::X);
    let bdim = b.block_dim(Dim::X);
    let off = b.mul(bid, bdim);
    let gid = b.add(off, tid);
    let gin = b.gep(Type::I32, b.param(1), gid);
    let v0 = b.load(Type::I32, gin);
    let base = b.shared_base(sh);
    let own = b.gep(Type::I32, base, tid);
    b.store(v0, own);
    b.syncthreads();
    b.jump(p_hdr);

    // for (p = 0; p < block_size; p++)
    b.switch_to(p_hdr);
    let p = b.phi(Type::I32, &[(entry, Value::I32(0))]);
    let pc = b.icmp(IcmpPred::Slt, p, b.const_i32(block_size as i32));
    b.br(pc, p_body, done);

    // i = 2*tid + (p & 1); if (i + 1 < block_size) { compare-exchange }
    b.switch_to(p_body);
    let one = b.const_i32(1);
    let two = b.const_i32(2);
    let t2 = b.mul(tid, two);
    let ph = b.and(p, one);
    let i = b.add(t2, ph);
    let ip1 = b.add(i, one);
    let in_range = b.icmp(IcmpPred::Slt, ip1, b.const_i32(block_size as i32));
    b.br(in_range, active, merge);

    b.switch_to(active);
    let pi = b.gep(Type::I32, base, i);
    let pj = b.gep(Type::I32, base, ip1);
    let x = b.load(Type::I32, pi);
    let y = b.load(Type::I32, pj);
    let c = b.icmp(IcmpPred::Sgt, x, y); // data dependent
    b.br(c, gt, le);

    // x > y: nested check, then swap
    b.switch_to(gt);
    let d1 = b.sub(x, y);
    let c1 = b.icmp(IcmpPred::Sgt, d1, b.const_i32(0));
    b.br(c1, gt_then, gt_join);
    b.switch_to(gt_then);
    b.store(y, pi);
    b.store(x, pj);
    b.jump(gt_join);
    b.switch_to(gt_join);
    b.jump(merge);

    // x <= y: nested check, write back in order
    b.switch_to(le);
    let d2 = b.sub(y, x);
    let c2 = b.icmp(IcmpPred::Sge, d2, b.const_i32(0));
    b.br(c2, le_then, le_join);
    b.switch_to(le_then);
    b.store(x, pi);
    b.store(y, pj);
    b.jump(le_join);
    b.switch_to(le_join);
    b.jump(merge);

    b.switch_to(merge);
    b.syncthreads();
    b.jump(p_latch);

    b.switch_to(p_latch);
    let p_next = b.add(p, one);
    b.jump(p_hdr);

    b.switch_to(done);
    let vout = b.load(Type::I32, own);
    let gout = b.gep(Type::I32, b.param(0), gid);
    b.store(vout, gout);
    b.ret(None);

    let pp = p.as_inst().unwrap();
    f.inst_mut(pp).operands.push(p_next);
    f.inst_mut(pp).phi_blocks.push(p_latch);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;

    #[test]
    fn sorts_each_block_bucket() {
        for bs in [32, 64] {
            let case = build_case(bs);
            verify_ssa(&case.func).unwrap_or_else(|e| panic!("{e}\n{}", case.func));
            let result = case.execute().unwrap();
            case.check(&result).unwrap();
            assert!(result.stats.shared_mem_insts > 0);
        }
    }
}
