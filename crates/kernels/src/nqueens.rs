//! NQU — N-queens backtracking solver.
//!
//! Every thread fixes the first-row queen at column `t % N` and counts the
//! solutions of the remaining board with an iterative backtracking loop.
//! The loop body is the paper's "divergent if-then-elseif section"
//! (§VI-A): *backtrack* when the candidate column overflows, otherwise
//! *place/descend* or *advance* depending on a data-dependent safety check
//! — DARM removes divergence here with region replication.

use crate::{ArgSpec, BenchCase, BufData};
use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, Dim, Function, IcmpPred, Type, Value};
use darm_simt::LaunchConfig;

/// Board size. (The paper uses N=15 on a real GPU; the cycle-accurate
/// interpreter uses a smaller board with the same control-flow structure.)
pub const N: i32 = 6;

/// Builds an `NQU<block_size>` case.
pub fn build_case(block_size: u32) -> BenchCase {
    let threads = block_size as usize;
    let expected: Vec<i32> = (0..threads).map(|t| reference((t as i32) % N)).collect();
    BenchCase {
        name: format!("NQU{block_size}"),
        func: build_kernel(),
        launch: LaunchConfig::linear(1, block_size),
        args: vec![
            ArgSpec::BufI32(vec![0; threads]),
            ArgSpec::BufI32(vec![0; threads * N as usize]),
        ],
        expected: vec![(0, BufData::I32(expected))],
    }
}

/// CPU reference: solutions of N-queens with the row-0 queen at `first`.
pub fn reference(first: i32) -> i32 {
    fn safe(pos: &[i32], row: i32, col: i32) -> bool {
        (0..row).all(|r| {
            let p = pos[r as usize];
            p != col && p - col != row - r && col - p != row - r
        })
    }
    let mut pos = vec![0i32; N as usize];
    pos[0] = first;
    let (mut row, mut col, mut count) = (1i32, 0i32, 0i32);
    while row >= 1 {
        if col >= N {
            row -= 1;
            if row >= 1 {
                col = pos[row as usize] + 1;
            }
        } else if safe(&pos, row, col) {
            pos[row as usize] = col;
            if row == N - 1 {
                count += 1;
                col += 1;
            } else {
                row += 1;
                col = 0;
            }
        } else {
            col += 1;
        }
    }
    count
}

/// Builds the kernel `nqueens(out, scratch)`; `scratch` holds each thread's
/// partial placement (`scratch[t*N + row]`).
pub fn build_kernel() -> Function {
    let mut f = Function::new(
        "nqueens",
        vec![Type::Ptr(AddrSpace::Global), Type::Ptr(AddrSpace::Global)],
        Type::Void,
    );
    let entry = f.entry();
    let hdr = f.add_block("hdr");
    let body = f.add_block("body");
    let bt = f.add_block("bt");
    let btload = f.add_block("bt.load");
    let chk = f.add_block("chk");
    let s_hdr = f.add_block("safe.hdr");
    let s_body = f.add_block("safe.body");
    let s_done = f.add_block("safe.done");
    let place = f.add_block("place");
    let sol = f.add_block("sol");
    let desc = f.add_block("desc");
    let adv = f.add_block("adv");
    let done = f.add_block("done");

    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let bid = b.block_idx(Dim::X);
    let bdim = b.block_dim(Dim::X);
    let off = b.mul(bid, bdim);
    let t = b.add(off, tid);
    let n_c = b.const_i32(N);
    let first = b.srem(t, n_c);
    let pos_base = b.mul(t, n_c);
    let p0 = b.gep(Type::I32, b.param(1), pos_base);
    b.store(first, p0);
    b.jump(hdr);

    // while (row >= 1)
    b.switch_to(hdr);
    let row = b.phi(Type::I32, &[(entry, Value::I32(1))]);
    let col = b.phi(Type::I32, &[(entry, Value::I32(0))]);
    let count = b.phi(Type::I32, &[(entry, Value::I32(0))]);
    let cx = b.icmp(IcmpPred::Slt, row, b.const_i32(1));
    b.br(cx, done, body);

    // if (col >= N) backtrack else check safety
    b.switch_to(body);
    let ca = b.icmp(IcmpPred::Sge, col, n_c);
    b.br(ca, bt, chk);

    b.switch_to(bt);
    let one = b.const_i32(1);
    let rm1 = b.sub(row, one);
    let btc = b.icmp(IcmpPred::Sge, rm1, one);
    b.br(btc, btload, hdr);

    b.switch_to(btload);
    let bt_idx = b.add(pos_base, rm1);
    let bt_ptr = b.gep(Type::I32, b.param(1), bt_idx);
    let pcv = b.load(Type::I32, bt_ptr);
    let ncol = b.add(pcv, one);
    b.jump(hdr);

    // safety check loop: for r in 0..row while no conflict
    b.switch_to(chk);
    b.jump(s_hdr);
    b.switch_to(s_hdr);
    let r = b.phi(Type::I32, &[(chk, Value::I32(0))]);
    let ok = b.phi(Type::I1, &[(chk, Value::I1(true))]);
    let sc = b.icmp(IcmpPred::Slt, r, row);
    let cont = b.and(sc, ok);
    b.br(cont, s_body, s_done);

    b.switch_to(s_body);
    let pr_idx = b.add(pos_base, r);
    let pr_ptr = b.gep(Type::I32, b.param(1), pr_idx);
    let pv = b.load(Type::I32, pr_ptr);
    let e1 = b.icmp(IcmpPred::Eq, pv, col);
    let d = b.sub(row, r);
    let dl = b.sub(pv, col);
    let e2 = b.icmp(IcmpPred::Eq, dl, d);
    let dr = b.sub(col, pv);
    let e3 = b.icmp(IcmpPred::Eq, dr, d);
    let cf0 = b.or(e1, e2);
    let cf = b.or(cf0, e3);
    let ncf = b.xor(cf, Value::I1(true));
    let ok2 = b.and(ok, ncf);
    let r2 = b.add(r, one);
    b.jump(s_hdr);

    b.switch_to(s_done);
    b.br(ok, place, adv);

    // place the queen; solution row or descend
    b.switch_to(place);
    let pl_idx = b.add(pos_base, row);
    let pl_ptr = b.gep(Type::I32, b.param(1), pl_idx);
    b.store(col, pl_ptr);
    let nm1 = b.const_i32(N - 1);
    let last = b.icmp(IcmpPred::Eq, row, nm1);
    b.br(last, sol, desc);

    b.switch_to(sol);
    let count2 = b.add(count, one);
    let col_s = b.add(col, one);
    b.jump(hdr);

    b.switch_to(desc);
    let row2 = b.add(row, one);
    b.jump(hdr);

    b.switch_to(adv);
    let col2 = b.add(col, one);
    b.jump(hdr);

    b.switch_to(done);
    let out_ptr = b.gep(Type::I32, b.param(0), t);
    b.store(count, out_ptr);
    b.ret(None);

    // hdr φ backedges: (entry handled), bt, btload, sol, desc, adv.
    let patch = |f: &mut Function, phi: Value, entries: &[(darm_ir::BlockId, Value)]| {
        let id = phi.as_inst().unwrap();
        for &(blk, v) in entries {
            f.inst_mut(id).operands.push(v);
            f.inst_mut(id).phi_blocks.push(blk);
        }
    };
    patch(
        &mut f,
        row,
        &[
            (bt, rm1),
            (btload, rm1),
            (sol, row),
            (desc, row2),
            (adv, row),
        ],
    );
    patch(
        &mut f,
        col,
        &[
            (bt, col),
            (btload, ncol),
            (sol, col_s),
            (desc, Value::I32(0)),
            (adv, col2),
        ],
    );
    patch(
        &mut f,
        count,
        &[
            (bt, count),
            (btload, count),
            (sol, count2),
            (desc, count),
            (adv, count),
        ],
    );
    // safe loop backedges
    patch(&mut f, r, &[(s_body, r2)]);
    patch(&mut f, ok, &[(s_body, ok2)]);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;

    #[test]
    fn reference_totals_match_known_counts() {
        // 6-queens has 4 solutions in total.
        let total: i32 = (0..N).map(reference).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn kernel_counts_match_reference() {
        let case = build_case(32);
        verify_ssa(&case.func).unwrap_or_else(|e| panic!("{e}\n{}", case.func));
        let result = case.execute().unwrap();
        case.check(&result).unwrap();
        assert!(
            result.stats.simd_efficiency() < 1.0,
            "backtracking must diverge"
        );
    }
}
