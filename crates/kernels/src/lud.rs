//! LUD — the `lud_perimeter` kernel shape from Rodinia.
//!
//! The first half of the block's threads update the top perimeter row of a
//! tile while the second half update the left perimeter column; both sides
//! run the same reduction loop over the tile. The `tid < ntid/2` branch
//! depends on the thread id *and the block size*: with 32-wide warps it
//! diverges for block sizes ≤ 64 and is warp-uniform beyond — reproducing
//! the paper's "LUD's divergence is block size dependent" behaviour (§VI-A).
//! The loop-carrying subgraphs on both sides are isomorphic, so DARM melds
//! them (the transformation the authors report took hours by hand, §VIII).

use crate::{ArgSpec, BenchCase, BufData};
use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, Dim, Function, IcmpPred, Type, Value};
use darm_simt::LaunchConfig;

/// Matrix dimension (one tile).
pub const DIM: u32 = 128;

/// Builds an `LUD<block_size>` case over a `DIM`×`DIM` matrix.
pub fn build_case(block_size: u32) -> BenchCase {
    let n = (DIM * DIM) as usize;
    let input = crate::pseudo_random_i32(0x14D, n, 100);
    let expected = reference(&input, block_size);
    BenchCase {
        name: format!("LUD{block_size}"),
        func: build_kernel(),
        launch: LaunchConfig::linear(1, block_size),
        args: vec![ArgSpec::BufI32(input), ArgSpec::I32(DIM as i32)],
        expected: vec![(0, BufData::I32(expected))],
    }
}

/// CPU reference: row threads fold their row prefix, column threads their
/// column prefix, writing to disjoint perimeter slots.
pub fn reference(mat: &[i32], block_size: u32) -> Vec<i32> {
    let mut out = mat.to_vec();
    let n = DIM as usize;
    let half = (block_size / 2) as usize;
    for t in 0..block_size as usize {
        if t < half {
            let mut acc = 0i32;
            for c in 0..half {
                acc = acc.wrapping_add(mat[t * n + c].wrapping_mul(3));
            }
            out[t * n + half] = acc;
        } else {
            let col = t - half;
            if col < n {
                let mut acc = 0i32;
                for r in 0..half {
                    acc = acc.wrapping_add(mat[r * n + col].wrapping_mul(3));
                }
                out[half * n + col] = acc;
            }
        }
    }
    out
}

/// Builds the perimeter kernel `lud(mat, n)`.
pub fn build_kernel() -> Function {
    let mut f = Function::new(
        "lud_perimeter",
        vec![Type::Ptr(AddrSpace::Global), Type::I32],
        Type::Void,
    );
    let entry = f.entry();
    // true side: row reduction
    let r_pre = f.add_block("row.pre");
    let r_hdr = f.add_block("row.hdr");
    let r_body = f.add_block("row.body");
    let r_post = f.add_block("row.post");
    // false side: column reduction
    let c_pre = f.add_block("col.pre");
    let c_hdr = f.add_block("col.hdr");
    let c_body = f.add_block("col.body");
    let c_post = f.add_block("col.post");
    let exit = f.add_block("exit");

    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let ntid = b.block_dim(Dim::X);
    let one = b.const_i32(1);
    let half = b.ashr(ntid, one);
    let n = b.param(1);
    let c0 = b.icmp(IcmpPred::Slt, tid, half);
    b.br(c0, r_pre, c_pre);

    // ---- row side: acc = Σ mat[tid*n + c] * 3 for c in 0..half ----
    b.switch_to(r_pre);
    let row_base = b.mul(tid, n);
    b.jump(r_hdr);
    b.switch_to(r_hdr);
    let rc = b.phi(Type::I32, &[(r_pre, Value::I32(0))]);
    let racc = b.phi(Type::I32, &[(r_pre, Value::I32(0))]);
    let rcond = b.icmp(IcmpPred::Slt, rc, half);
    b.br(rcond, r_body, r_post);
    b.switch_to(r_body);
    let ri = b.add(row_base, rc);
    let rp = b.gep(Type::I32, b.param(0), ri);
    let rv = b.load(Type::I32, rp);
    let three = b.const_i32(3);
    let rv3 = b.mul(rv, three);
    let racc2 = b.add(racc, rv3);
    let rc2 = b.add(rc, one);
    b.jump(r_hdr);
    b.switch_to(r_post);
    let r_out_i = b.add(row_base, half);
    let r_out = b.gep(Type::I32, b.param(0), r_out_i);
    b.store(racc, r_out);
    b.jump(exit);

    // ---- column side: acc = Σ mat[r*n + col] * 3 for r in 0..half ----
    b.switch_to(c_pre);
    let col = b.sub(tid, half);
    b.jump(c_hdr);
    b.switch_to(c_hdr);
    let cc = b.phi(Type::I32, &[(c_pre, Value::I32(0))]);
    let cacc = b.phi(Type::I32, &[(c_pre, Value::I32(0))]);
    let ccond = b.icmp(IcmpPred::Slt, cc, half);
    b.br(ccond, c_body, c_post);
    b.switch_to(c_body);
    let ci0 = b.mul(cc, n);
    let ci = b.add(ci0, col);
    let cp = b.gep(Type::I32, b.param(0), ci);
    let cv = b.load(Type::I32, cp);
    let three2 = b.const_i32(3);
    let cv3 = b.mul(cv, three2);
    let cacc2 = b.add(cacc, cv3);
    let cc2 = b.add(cc, one);
    b.jump(c_hdr);
    b.switch_to(c_post);
    let c_out_r = b.mul(half, n);
    let c_out_i = b.add(c_out_r, col);
    let c_out = b.gep(Type::I32, b.param(0), c_out_i);
    b.store(cacc, c_out);
    b.jump(exit);

    b.switch_to(exit);
    b.ret(None);

    for (phi, backedge, latch) in [
        (rc, rc2, r_body),
        (racc, racc2, r_body),
        (cc, cc2, c_body),
        (cacc, cacc2, c_body),
    ] {
        let id = phi.as_inst().unwrap();
        f.inst_mut(id).operands.push(backedge);
        f.inst_mut(id).phi_blocks.push(latch);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;

    #[test]
    fn perimeter_reduction_matches_reference() {
        for bs in [16, 32, 64] {
            let case = build_case(bs);
            verify_ssa(&case.func).unwrap_or_else(|e| panic!("{e}\n{}", case.func));
            let result = case.execute().unwrap();
            case.check(&result).unwrap();
        }
    }

    #[test]
    fn divergence_depends_on_block_size() {
        // block 32 splits a warp (16/16): divergent. block 128 aligns the
        // boundary to warp granularity: uniform.
        let small = build_case(32).execute().unwrap();
        let large = build_case(128).execute().unwrap();
        assert!(small.stats.simd_efficiency() < 0.99);
        assert!(large.stats.simd_efficiency() > 0.99);
    }
}
