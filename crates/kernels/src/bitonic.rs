//! BIT — bitonic sort, the paper's running example (Fig. 1).
//!
//! Each thread block loads a tile into shared memory and sorts it with the
//! bitonic network. The `(tid & k) == 0` branch is divergent and its two
//! sides are *if-then regions* over shared memory — exactly the meldable
//! divergent region of Fig. 4 (tail merging and branch fusion cannot handle
//! it, §III).

use crate::{ArgSpec, BenchCase, BufData};
use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, Dim, Function, IcmpPred, Type, Value};
use darm_simt::LaunchConfig;

const GRID: u32 = 2;

/// Builds a `BIT<block_size>` case: `GRID` blocks each sorting a
/// `block_size`-element bucket.
pub fn build_case(block_size: u32) -> BenchCase {
    let n = (GRID * block_size) as usize;
    let input = crate::pseudo_random_i32(0xB170, n, 10_000);
    let mut expected = input.clone();
    for chunk in expected.chunks_mut(block_size as usize) {
        chunk.sort_unstable();
    }
    BenchCase {
        name: format!("BIT{block_size}"),
        func: build_kernel(block_size),
        launch: LaunchConfig::linear(GRID, block_size),
        args: vec![ArgSpec::BufI32(vec![0; n]), ArgSpec::BufI32(input)],
        expected: vec![(0, BufData::I32(expected))],
    }
}

/// Builds the bitonic-sort kernel for one block size (the paper's Fig. 1,
/// with real loops instead of relying on unrolling).
pub fn build_kernel(block_size: u32) -> Function {
    let mut f = Function::new(
        &format!("bitonic_{block_size}"),
        vec![Type::Ptr(AddrSpace::Global), Type::Ptr(AddrSpace::Global)],
        Type::Void,
    );
    let sh = f.add_shared_array("tile", Type::I32, block_size as u64);
    let entry = f.entry();
    let k_hdr = f.add_block("k.hdr");
    let j_hdr = f.add_block("j.hdr");
    let j_body = f.add_block("j.body");
    let guard_then = f.add_block("guard.then");
    let b_asc = f.add_block("asc"); // (tid & k) == 0: sort ascending
    let asc_then = f.add_block("asc.then");
    let asc_join = f.add_block("asc.join");
    let b_desc = f.add_block("desc");
    let desc_then = f.add_block("desc.then");
    let desc_join = f.add_block("desc.join");
    let merge = f.add_block("merge");
    let j_latch = f.add_block("j.latch");
    let k_latch = f.add_block("k.latch");
    let done = f.add_block("done");

    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let bid = b.block_idx(Dim::X);
    let bdim = b.block_dim(Dim::X);
    let off = b.mul(bid, bdim);
    let gid = b.add(off, tid);
    let gin = b.gep(Type::I32, b.param(1), gid);
    let v0 = b.load(Type::I32, gin);
    let base = b.shared_base(sh);
    let sp = b.gep(Type::I32, base, tid);
    b.store(v0, sp);
    b.syncthreads();
    b.jump(k_hdr);

    // for (k = 2; k <= block_size; k *= 2)
    b.switch_to(k_hdr);
    let k = b.phi(Type::I32, &[(entry, Value::I32(2))]);
    let one = b.const_i32(1);
    let k_half = b.ashr(k, one); // initial j for this k iteration
    let kc = b.icmp(IcmpPred::Sle, k, b.const_i32(block_size as i32));
    b.br(kc, j_hdr, done);

    // for (j = k / 2; j > 0; j /= 2)
    b.switch_to(j_hdr);
    let j = b.phi(Type::I32, &[(k_hdr, k_half)]);
    let jc = b.icmp(IcmpPred::Sgt, j, b.const_i32(0));
    b.br(jc, j_body, k_latch);

    // ixj = tid ^ j; if (ixj > tid) { ... }
    b.switch_to(j_body);
    let ixj = b.xor(tid, j);
    let pp = b.gep(Type::I32, base, ixj);
    let gc = b.icmp(IcmpPred::Sgt, ixj, tid);
    b.br(gc, guard_then, merge);

    b.switch_to(guard_then);
    let kbit = b.and(tid, k);
    let dir = b.icmp(IcmpPred::Eq, kbit, b.const_i32(0));
    b.br(dir, b_asc, b_desc);

    // ascending: if (tile[ixj] < tile[tid]) swap
    b.switch_to(b_asc);
    let pa = b.load(Type::I32, pp);
    let va = b.load(Type::I32, sp);
    let ca = b.icmp(IcmpPred::Slt, pa, va);
    b.br(ca, asc_then, asc_join);
    b.switch_to(asc_then);
    b.store(va, pp);
    b.store(pa, sp);
    b.jump(asc_join);
    b.switch_to(asc_join);
    b.jump(merge);

    // descending: if (tile[ixj] > tile[tid]) swap
    b.switch_to(b_desc);
    let pd = b.load(Type::I32, pp);
    let vd = b.load(Type::I32, sp);
    let cd = b.icmp(IcmpPred::Sgt, pd, vd);
    b.br(cd, desc_then, desc_join);
    b.switch_to(desc_then);
    b.store(vd, pp);
    b.store(pd, sp);
    b.jump(desc_join);
    b.switch_to(desc_join);
    b.jump(merge);

    b.switch_to(merge);
    b.syncthreads();
    b.jump(j_latch);

    b.switch_to(j_latch);
    let j_next = b.ashr(j, one);
    b.jump(j_hdr);

    b.switch_to(k_latch);
    let k_next = b.shl(k, one);
    b.jump(k_hdr);

    b.switch_to(done);
    let vout = b.load(Type::I32, sp);
    let gout = b.gep(Type::I32, b.param(0), gid);
    b.store(vout, gout);
    b.ret(None);

    // Patch loop φs with their backedge values.
    let pj = j.as_inst().unwrap();
    f.inst_mut(pj).operands.push(j_next);
    f.inst_mut(pj).phi_blocks.push(j_latch);
    let pk = k.as_inst().unwrap();
    f.inst_mut(pk).operands.push(k_next);
    f.inst_mut(pk).phi_blocks.push(k_latch);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;

    #[test]
    fn sorts_each_block_bucket() {
        for bs in [32, 64] {
            let case = build_case(bs);
            verify_ssa(&case.func).unwrap_or_else(|e| panic!("{e}\n{}", case.func));
            let result = case.execute().unwrap();
            case.check(&result).unwrap();
            assert!(result.stats.shared_mem_insts > 0);
            assert!(result.stats.simd_efficiency() < 1.0, "bitonic must diverge");
        }
    }
}
