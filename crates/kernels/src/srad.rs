//! SRAD — speckle-reducing anisotropic diffusion (Rodinia).
//!
//! One diffusion step over an image. Two divergent regions, as in §VI-B:
//!
//! * **RB** — boundary-handling if-then-else chains when computing
//!   neighbour indices (no shared-memory instructions; melding these does
//!   not pay off),
//! * **RD** — a data-dependent *3-way* branch clamping the diffusion
//!   coefficient, whose arms touch shared memory and whose execution is
//!   biased toward two of the three ways.

use crate::{ArgSpec, BenchCase, BufData};
use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, Dim, FcmpPred, Function, IcmpPred, Type};
use darm_simt::LaunchConfig;

/// Image width/height.
pub const DIM: u32 = 64;

/// Builds an `SRAD<bx>x<by>` case over a `DIM`×`DIM` image.
pub fn build_case(block: (u32, u32)) -> BenchCase {
    let n = (DIM * DIM) as usize;
    let input: Vec<f32> = crate::pseudo_random_i32(0x52AD, n, 900)
        .into_iter()
        .map(|v| 1.0 + (v.unsigned_abs() as f32) / 100.0)
        .collect();
    let expected = reference(&input);
    BenchCase {
        name: format!("SRAD{}x{}", block.0, block.1),
        func: build_kernel(block),
        launch: LaunchConfig::grid2d((DIM / block.0, DIM / block.1), block),
        args: vec![ArgSpec::BufF32(vec![0.0; n]), ArgSpec::BufF32(input)],
        expected: vec![(0, BufData::F32(expected))],
    }
}

/// CPU reference of one diffusion step (mirrors the kernel's operation
/// order exactly so f32 results match).
pub fn reference(img: &[f32]) -> Vec<f32> {
    let w = DIM as usize;
    let h = DIM as usize;
    let mut out = vec![0.0f32; img.len()];
    for y in 0..h {
        for x in 0..w {
            let xw = if x == 0 { x } else { x - 1 };
            let xe = if x == w - 1 { x } else { x + 1 };
            let yn = if y == 0 { y } else { y - 1 };
            let ys = if y == h - 1 { y } else { y + 1 };
            let c = img[y * w + x];
            let n = img[yn * w + x];
            let s = img[ys * w + x];
            let wv = img[y * w + xw];
            let e = img[y * w + xe];
            let d = n + s + wv + e - 4.0 * c;
            let q = d / (c + 1.0);
            #[allow(clippy::manual_clamp)] // mirrors the kernel's 3-way branch order
            let coef = if q < 0.0 {
                0.0
            } else if q > 1.0 {
                1.0
            } else {
                q
            };
            out[y * w + x] = c + 0.25 * coef * d;
        }
    }
    out
}

/// Builds the kernel `srad(out, in)` for a 2-D block size.
pub fn build_kernel(block: (u32, u32)) -> Function {
    let mut f = Function::new(
        &format!("srad_{}x{}", block.0, block.1),
        vec![Type::Ptr(AddrSpace::Global), Type::Ptr(AddrSpace::Global)],
        Type::Void,
    );
    let lanes = (block.0 * block.1) as u64;
    let sh = f.add_shared_array("coef", Type::F32, lanes);
    let entry = f.entry();
    // RB: four boundary diamonds
    let xw_t = f.add_block("xw.t");
    let xw_e = f.add_block("xw.e");
    let xw_j = f.add_block("xw.j");
    let xe_t = f.add_block("xe.t");
    let xe_e = f.add_block("xe.e");
    let xe_j = f.add_block("xe.j");
    let yn_t = f.add_block("yn.t");
    let yn_e = f.add_block("yn.e");
    let yn_j = f.add_block("yn.j");
    let ys_t = f.add_block("ys.t");
    let ys_e = f.add_block("ys.e");
    let ys_j = f.add_block("ys.j");
    // RD: 3-way clamp
    let neg = f.add_block("q.neg");
    let chk_hi = f.add_block("q.chk_hi");
    let hi = f.add_block("q.hi");
    let mid = f.add_block("q.mid");
    let j_hi = f.add_block("q.jhi");
    let join = f.add_block("q.join");

    let mut b = FunctionBuilder::new(&mut f, entry);
    let tx = b.thread_idx(Dim::X);
    let ty = b.thread_idx(Dim::Y);
    let bx = b.block_idx(Dim::X);
    let by = b.block_idx(Dim::Y);
    let ntx = b.block_dim(Dim::X);
    let nty = b.block_dim(Dim::Y);
    let gx0 = b.mul(bx, ntx);
    let x = b.add(gx0, tx);
    let gy0 = b.mul(by, nty);
    let y = b.add(gy0, ty);
    let width = b.const_i32(DIM as i32);
    let wm1 = b.const_i32(DIM as i32 - 1);
    let one = b.const_i32(1);

    // RB region (divergent at image boundaries; no shared memory).
    let cxw = b.icmp(IcmpPred::Eq, x, b.const_i32(0));
    b.br(cxw, xw_t, xw_e);
    b.switch_to(xw_t);
    b.jump(xw_j);
    b.switch_to(xw_e);
    let xm1 = b.sub(x, one);
    b.jump(xw_j);
    b.switch_to(xw_j);
    let xw = b.phi(Type::I32, &[(xw_t, x), (xw_e, xm1)]);
    let cxe = b.icmp(IcmpPred::Eq, x, wm1);
    b.br(cxe, xe_t, xe_e);
    b.switch_to(xe_t);
    b.jump(xe_j);
    b.switch_to(xe_e);
    let xp1 = b.add(x, one);
    b.jump(xe_j);
    b.switch_to(xe_j);
    let xe = b.phi(Type::I32, &[(xe_t, x), (xe_e, xp1)]);
    let cyn = b.icmp(IcmpPred::Eq, y, b.const_i32(0));
    b.br(cyn, yn_t, yn_e);
    b.switch_to(yn_t);
    b.jump(yn_j);
    b.switch_to(yn_e);
    let ym1 = b.sub(y, one);
    b.jump(yn_j);
    b.switch_to(yn_j);
    let yn = b.phi(Type::I32, &[(yn_t, y), (yn_e, ym1)]);
    let cys = b.icmp(IcmpPred::Eq, y, wm1);
    b.br(cys, ys_t, ys_e);
    b.switch_to(ys_t);
    b.jump(ys_j);
    b.switch_to(ys_e);
    let yp1 = b.add(y, one);
    b.jump(ys_j);
    b.switch_to(ys_j);
    let ys = b.phi(Type::I32, &[(ys_t, y), (ys_e, yp1)]);

    // Load the 5-point stencil.
    let img = b.param(1);
    let idx_row = b.mul(y, width);
    let idx = b.add(idx_row, x);
    let pc = b.gep(Type::F32, img, idx);
    let c = b.load(Type::F32, pc);
    let n_row = b.mul(yn, width);
    let n_idx = b.add(n_row, x);
    let pn = b.gep(Type::F32, img, n_idx);
    let nv = b.load(Type::F32, pn);
    let s_row = b.mul(ys, width);
    let s_idx = b.add(s_row, x);
    let ps = b.gep(Type::F32, img, s_idx);
    let sv = b.load(Type::F32, ps);
    let w_idx = b.add(idx_row, xw);
    let pw = b.gep(Type::F32, img, w_idx);
    let wv = b.load(Type::F32, pw);
    let e_idx = b.add(idx_row, xe);
    let pe = b.gep(Type::F32, img, e_idx);
    let ev = b.load(Type::F32, pe);

    let ns = b.fadd(nv, sv);
    let we = b.fadd(wv, ev);
    let sum = b.fadd(ns, we);
    let four = b.const_f32(4.0);
    let c4 = b.fmul(four, c);
    let d = b.fsub(sum, c4);
    let cp1 = b.fadd(c, b.const_f32(1.0));
    let q = b.fdiv(d, cp1);

    // RD region: 3-way clamp with shared-memory traffic on every arm.
    let lrow = b.mul(ty, ntx);
    let lid = b.add(lrow, tx);
    let base = b.shared_base(sh);
    let sp = b.gep(Type::F32, base, lid);
    let cneg = b.fcmp(FcmpPred::Olt, q, b.const_f32(0.0));
    b.br(cneg, neg, chk_hi);

    b.switch_to(neg);
    b.store(b.const_f32(0.0), sp);
    let coef_n = b.load(Type::F32, sp);
    b.jump(join);

    b.switch_to(chk_hi);
    let chi = b.fcmp(FcmpPred::Ogt, q, b.const_f32(1.0));
    b.br(chi, hi, mid);

    b.switch_to(hi);
    b.store(b.const_f32(1.0), sp);
    let coef_h = b.load(Type::F32, sp);
    b.jump(j_hi);

    b.switch_to(mid);
    b.store(q, sp);
    let coef_m = b.load(Type::F32, sp);
    b.jump(j_hi);

    b.switch_to(j_hi);
    let coef_hm = b.phi(Type::F32, &[(hi, coef_h), (mid, coef_m)]);
    b.jump(join);

    b.switch_to(join);
    let coef = b.phi(Type::F32, &[(neg, coef_n), (j_hi, coef_hm)]);
    let quarter = b.const_f32(0.25);
    let cd = b.fmul(coef, d);
    let upd = b.fmul(quarter, cd);
    let res = b.fadd(c, upd);
    let pout = b.gep(Type::F32, b.param(0), idx);
    b.store(res, pout);
    b.ret(None);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;

    #[test]
    fn diffusion_step_matches_reference() {
        for block in [(16, 16), (32, 32)] {
            let case = build_case(block);
            verify_ssa(&case.func).unwrap_or_else(|e| panic!("{e}\n{}", case.func));
            let result = case.execute().unwrap();
            case.check(&result).unwrap();
            assert!(result.stats.shared_mem_insts > 0);
        }
    }
}
