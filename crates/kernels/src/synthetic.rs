//! The synthetic benchmarks SB1–SB4 and their `-R` variants (Fig. 7).
//!
//! Each kernel has two nested loops; the inner loop body contains a
//! divergent region of the pattern's shape, computing on the thread's slot
//! of a shared-memory tile:
//!
//! * **SB1** — diamond (`A2`/`A3`) with identical computations,
//! * **SB2** — if-then *regions* on both sides with identical then-blocks,
//! * **SB3** — two consecutive if-then regions on each side,
//! * **SB4** — three-way divergence (`if-else-if-else`) with identical
//!   blocks `D2`/`D4`/`D5` (exercises region replication),
//! * the `-R` variants use non-identical instruction sequences on the
//!   paths, so instructions only partially align.

use crate::{ArgSpec, BenchCase, BufData};
use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, BlockId, Dim, Function, IcmpPred, Type, Value};
use darm_simt::LaunchConfig;

/// Which synthetic pattern to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticKind {
    /// Diamond, identical arms.
    Sb1,
    /// Diamond, non-identical arms.
    Sb1R,
    /// If-then regions, identical then-blocks.
    Sb2,
    /// If-then regions, non-identical then-blocks.
    Sb2R,
    /// Two if-then regions per side, identical.
    Sb3,
    /// Two if-then regions per side, non-identical.
    Sb3R,
    /// Three-way divergence, identical blocks.
    Sb4,
    /// Three-way divergence, non-identical blocks.
    Sb4R,
}

impl SyntheticKind {
    /// All kinds in Fig. 8's order.
    pub fn all() -> [SyntheticKind; 8] {
        use SyntheticKind::*;
        [Sb1, Sb1R, Sb2, Sb2R, Sb3, Sb3R, Sb4, Sb4R]
    }

    /// Display name (`SB1`, `SB1-R`, ...).
    pub fn name(self) -> &'static str {
        use SyntheticKind::*;
        match self {
            Sb1 => "SB1",
            Sb1R => "SB1-R",
            Sb2 => "SB2",
            Sb2R => "SB2-R",
            Sb3 => "SB3",
            Sb3R => "SB3-R",
            Sb4 => "SB4",
            Sb4R => "SB4-R",
        }
    }
}

const OUTER: i32 = 2;
const INNER: i32 = 4;
const GRID: u32 = 2;

/// The two per-path computations used throughout: `f1` is the "identical"
/// computation, `f2` the deliberately different one for `-R` variants.
fn f1(v: i32, i: i32) -> i32 {
    v.wrapping_mul(3).wrapping_add(i)
}
fn f2(v: i32, i: i32) -> i32 {
    (v << 1) ^ i.wrapping_add(7)
}

/// Emits `f1` on the builder.
fn emit_f1(b: &mut FunctionBuilder<'_>, v: Value, i: Value) -> Value {
    let three = b.const_i32(3);
    let m = b.mul(v, three);
    b.add(m, i)
}
/// Emits `f2` on the builder.
fn emit_f2(b: &mut FunctionBuilder<'_>, v: Value, i: Value) -> Value {
    let one = b.const_i32(1);
    let s = b.shl(v, one);
    let seven = b.const_i32(7);
    let i7 = b.add(i, seven);
    b.xor(s, i7)
}

/// Builds a synthetic benchmark case at the given block size.
pub fn build_case(kind: SyntheticKind, block_size: u32) -> BenchCase {
    let n = (GRID * block_size) as usize;
    let input = crate::pseudo_random_i32(kind as u64 + 1, n, 1001);
    let func = build_kernel(kind, block_size);
    let expected = reference(kind, &input, block_size);
    BenchCase {
        name: format!("{}-{}", kind.name(), block_size),
        func,
        launch: LaunchConfig::linear(GRID, block_size),
        args: vec![ArgSpec::BufI32(vec![0; n]), ArgSpec::BufI32(input)],
        expected: vec![(0, BufData::I32(expected))],
    }
}

/// CPU reference: replays the same per-element computation.
pub fn reference(kind: SyntheticKind, input: &[i32], block_size: u32) -> Vec<i32> {
    let mut out = input.to_vec();
    for (gid, v) in out.iter_mut().enumerate() {
        let tid = (gid % block_size as usize) as i32;
        for _o in 0..OUTER {
            for i in 0..INNER {
                *v = step(kind, *v, tid, i);
            }
        }
    }
    out
}

#[allow(clippy::if_same_then_else)] // SB1's identical arms are the benchmark's point
fn step(kind: SyntheticKind, v: i32, tid: i32, i: i32) -> i32 {
    use SyntheticKind::*;
    let even = tid & 1 == 0;
    match kind {
        Sb1 => {
            if even {
                f1(v, i)
            } else {
                f1(v, i)
            }
        }
        Sb1R => {
            if even {
                f1(v, i)
            } else {
                f2(v, i)
            }
        }
        Sb2 => {
            if even {
                if v > 0 {
                    f1(v, i)
                } else {
                    v
                }
            } else if v < 0 {
                f1(v, i)
            } else {
                v
            }
        }
        Sb2R => {
            if even {
                if v > 0 {
                    f1(v, i)
                } else {
                    v
                }
            } else if v < 0 {
                f2(v, i)
            } else {
                v
            }
        }
        Sb3 | Sb3R => {
            let alt = kind == Sb3R;
            let mut x = v;
            if even {
                if x > 0 {
                    x = f1(x, i);
                }
                if x & 1 != 0 {
                    x = x.wrapping_add(i);
                }
            } else {
                if x < 0 {
                    x = if alt { f2(x, i) } else { f1(x, i) };
                }
                if x & 1 == 0 {
                    x = if alt {
                        x.wrapping_sub(i.wrapping_mul(3))
                    } else {
                        x.wrapping_add(i)
                    };
                }
            }
            x
        }
        Sb4 => match tid.rem_euclid(3) {
            0 => f1(v, i),
            1 => f1(v, i),
            _ => f1(v, i),
        },
        Sb4R => match tid.rem_euclid(3) {
            0 => f1(v, i),
            1 => f2(v, i),
            _ => f1(v, i).wrapping_add(5),
        },
    }
}

/// Emits an `if (cond) { slot = f(slot, i) }` region; returns its entry
/// block. The continuation is `cont`.
#[allow(clippy::too_many_arguments)]
fn emit_if_then(
    b: &mut FunctionBuilder<'_>,
    name: &str,
    sp: Value,
    i_val: Value,
    cont: BlockId,
    cond_of: impl FnOnce(&mut FunctionBuilder<'_>, Value) -> Value,
    body: impl FnOnce(&mut FunctionBuilder<'_>, Value, Value) -> Value,
) -> BlockId {
    let entry = b.add_block(&format!("{name}.hdr"));
    let then = b.add_block(&format!("{name}.then"));
    let join = b.add_block(&format!("{name}.join"));
    b.switch_to(entry);
    let v = b.load(Type::I32, sp);
    let c = cond_of(b, v);
    b.br(c, then, join);
    b.switch_to(then);
    let v2 = body(b, v, i_val);
    b.store(v2, sp);
    b.jump(join);
    b.switch_to(join);
    b.jump(cont);
    entry
}

/// Builds the IR kernel for a pattern.
pub fn build_kernel(kind: SyntheticKind, block_size: u32) -> Function {
    use SyntheticKind::*;
    let mut f = Function::new(
        &format!(
            "{}_{}",
            kind.name().to_lowercase().replace('-', "_"),
            block_size
        ),
        vec![Type::Ptr(AddrSpace::Global), Type::Ptr(AddrSpace::Global)],
        Type::Void,
    );
    let sh = f.add_shared_array("tile", Type::I32, block_size as u64);
    let entry = f.entry();
    let o_hdr = f.add_block("outer.hdr");
    let i_hdr = f.add_block("inner.hdr");
    let body = f.add_block("body");
    let i_latch = f.add_block("inner.latch");
    let o_latch = f.add_block("outer.latch");
    let done = f.add_block("done");

    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let bid = b.block_idx(Dim::X);
    let bdim = b.block_dim(Dim::X);
    let off = b.mul(bid, bdim);
    let gid = b.add(off, tid);
    let gin = b.gep(Type::I32, b.param(1), gid);
    let v0 = b.load(Type::I32, gin);
    let base = b.shared_base(sh);
    let sp = b.gep(Type::I32, base, tid);
    b.store(v0, sp);
    b.syncthreads();
    b.jump(o_hdr);

    // outer loop
    b.switch_to(o_hdr);
    let o = b.phi(Type::I32, &[(entry, Value::I32(0))]);
    let oc = b.icmp(IcmpPred::Slt, o, b.const_i32(OUTER));
    b.br(oc, i_hdr, done);

    // inner loop
    b.switch_to(i_hdr);
    let i = b.phi(Type::I32, &[(o_hdr, Value::I32(0))]);
    let ic = b.icmp(IcmpPred::Slt, i, b.const_i32(INNER));
    b.br(ic, body, o_latch);

    // divergent region
    b.switch_to(body);
    let one = b.const_i32(1);
    let parity = b.and(tid, one);
    match kind {
        Sb1 | Sb1R => {
            let t = b.add_block("t");
            let e = b.add_block("e");
            let c = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
            b.br(c, t, e);
            b.switch_to(t);
            let v = b.load(Type::I32, sp);
            let r = emit_f1(&mut b, v, i);
            b.store(r, sp);
            b.jump(i_latch);
            b.switch_to(e);
            let v = b.load(Type::I32, sp);
            let r = if kind == Sb1 {
                emit_f1(&mut b, v, i)
            } else {
                emit_f2(&mut b, v, i)
            };
            b.store(r, sp);
            b.jump(i_latch);
        }
        Sb2 | Sb2R => {
            let c = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
            let cur = b.current_block();
            let lt = emit_if_then(
                &mut b,
                "t",
                sp,
                i,
                i_latch,
                |b, v| b.icmp(IcmpPred::Sgt, v, b.const_i32(0)),
                emit_f1,
            );
            let alt = kind == Sb2R;
            let le = emit_if_then(
                &mut b,
                "e",
                sp,
                i,
                i_latch,
                |b, v| b.icmp(IcmpPred::Slt, v, b.const_i32(0)),
                move |b, v, i| {
                    if alt {
                        emit_f2(b, v, i)
                    } else {
                        emit_f1(b, v, i)
                    }
                },
            );
            b.switch_to(cur);
            b.br(c, lt, le);
        }
        Sb3 | Sb3R => {
            let c = b.icmp(IcmpPred::Eq, parity, b.const_i32(0));
            let cur = b.current_block();
            let alt = kind == Sb3R;
            // true path: two consecutive if-then regions
            let t2 = emit_if_then(
                &mut b,
                "t2",
                sp,
                i,
                i_latch,
                |b, v| {
                    let one = b.const_i32(1);
                    let a = b.and(v, one);
                    b.icmp(IcmpPred::Ne, a, b.const_i32(0))
                },
                |b, v, i| b.add(v, i),
            );
            let t1 = emit_if_then(
                &mut b,
                "t1",
                sp,
                i,
                t2,
                |b, v| b.icmp(IcmpPred::Sgt, v, b.const_i32(0)),
                emit_f1,
            );
            // false path: two consecutive if-then regions
            let e2 = emit_if_then(
                &mut b,
                "e2",
                sp,
                i,
                i_latch,
                |b, v| {
                    let one = b.const_i32(1);
                    let a = b.and(v, one);
                    b.icmp(IcmpPred::Eq, a, b.const_i32(0))
                },
                move |b, v, i| {
                    if alt {
                        let three = b.const_i32(3);
                        let m = b.mul(i, three);
                        b.sub(v, m)
                    } else {
                        b.add(v, i)
                    }
                },
            );
            let e1 = emit_if_then(
                &mut b,
                "e1",
                sp,
                i,
                e2,
                |b, v| b.icmp(IcmpPred::Slt, v, b.const_i32(0)),
                move |b, v, i| {
                    if alt {
                        emit_f2(b, v, i)
                    } else {
                        emit_f1(b, v, i)
                    }
                },
            );
            b.switch_to(cur);
            b.br(c, t1, e1);
        }
        Sb4 | Sb4R => {
            let three = b.const_i32(3);
            let m = b.srem(tid, three);
            let c0 = b.icmp(IcmpPred::Eq, m, b.const_i32(0));
            let d2 = b.add_block("d2");
            let sel = b.add_block("sel");
            let d4 = b.add_block("d4");
            let d5 = b.add_block("d5");
            let j45 = b.add_block("j45");
            b.br(c0, d2, sel);
            b.switch_to(d2);
            let v = b.load(Type::I32, sp);
            let r = emit_f1(&mut b, v, i);
            b.store(r, sp);
            b.jump(i_latch);
            b.switch_to(sel);
            let c1 = b.icmp(IcmpPred::Eq, m, b.const_i32(1));
            b.br(c1, d4, d5);
            b.switch_to(d4);
            let v = b.load(Type::I32, sp);
            let r = if kind == Sb4 {
                emit_f1(&mut b, v, i)
            } else {
                emit_f2(&mut b, v, i)
            };
            b.store(r, sp);
            b.jump(j45);
            b.switch_to(d5);
            let v = b.load(Type::I32, sp);
            let r = emit_f1(&mut b, v, i);
            let r = if kind == Sb4 {
                r
            } else {
                let five = b.const_i32(5);
                b.add(r, five)
            };
            b.store(r, sp);
            b.jump(j45);
            b.switch_to(j45);
            b.jump(i_latch);
        }
    }

    // inner latch
    b.switch_to(i_latch);
    let i_next = b.add(i, b.const_i32(1));
    b.jump(i_hdr);

    // outer latch
    b.switch_to(o_latch);
    let o_next = b.add(o, b.const_i32(1));
    b.jump(o_hdr);

    // write back
    b.switch_to(done);
    b.syncthreads();
    let vout = b.load(Type::I32, sp);
    let gout = b.gep(Type::I32, b.param(0), gid);
    b.store(vout, gout);
    b.ret(None);

    // patch loop phis
    let pi = i.as_inst().unwrap();
    f.inst_mut(pi).operands.push(i_next);
    f.inst_mut(pi).phi_blocks.push(i_latch);
    let po = o.as_inst().unwrap();
    f.inst_mut(po).operands.push(o_next);
    f.inst_mut(po).phi_blocks.push(o_latch);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;

    #[test]
    fn all_kinds_verify_and_match_reference() {
        for kind in SyntheticKind::all() {
            let case = build_case(kind, 32);
            verify_ssa(&case.func).unwrap_or_else(|e| panic!("{}: {e}\n{}", case.name, case.func));
            let result = case
                .execute()
                .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            case.check(&result).unwrap();
        }
    }

    #[test]
    fn divergent_patterns_underutilize_simd() {
        let case = build_case(SyntheticKind::Sb1, 64);
        let result = case.execute().unwrap();
        assert!(result.stats.simd_efficiency() < 1.0);
    }
}
