//! DCT — in-place quantization of a DCT coefficient plane.
//!
//! The quantization rounds *away from zero*, so positive and negative
//! coefficients take different paths (§VI-A: "the quantization process is
//! different for positive and negative values resulting in data-dependent
//! divergence"). Both paths contain the same expensive division — a
//! high-profit diamond meld.

use crate::{ArgSpec, BenchCase, BufData};
use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, Dim, Function, IcmpPred, Type};
use darm_simt::LaunchConfig;

/// Plane width/height used by the cases.
pub const PLANE: u32 = 64;
/// Quantization parameter.
pub const QP: i32 = 10;

/// Builds a `DCT<bx>x<by>` case over a `PLANE`×`PLANE` coefficient plane.
pub fn build_case(block: (u32, u32)) -> BenchCase {
    let n = (PLANE * PLANE) as usize;
    let input = crate::pseudo_random_i32(0xDC7, n, 2_000);
    let expected: Vec<i32> = input.iter().map(|&v| reference(v)).collect();
    BenchCase {
        name: format!("DCT{}x{}", block.0, block.1),
        func: build_kernel(),
        launch: LaunchConfig::grid2d((PLANE / block.0, PLANE / block.1), block),
        args: vec![ArgSpec::BufI32(input), ArgSpec::I32(QP)],
        expected: vec![(0, BufData::I32(expected))],
    }
}

/// CPU reference for one coefficient.
pub fn reference(v: i32) -> i32 {
    if v < 0 {
        let q = ((-v) * 2 + QP) / (2 * QP);
        -(q * QP)
    } else {
        let q = (v * 2 + QP) / (2 * QP);
        q * QP
    }
}

/// Builds the quantization kernel `dct(plane, qp)` (2-D launch).
pub fn build_kernel() -> Function {
    let mut f = Function::new(
        "dct_quant",
        vec![Type::Ptr(AddrSpace::Global), Type::I32],
        Type::Void,
    );
    let entry = f.entry();
    let neg = f.add_block("neg");
    let pos = f.add_block("pos");
    let join = f.add_block("join");

    let mut b = FunctionBuilder::new(&mut f, entry);
    let tx = b.thread_idx(Dim::X);
    let ty = b.thread_idx(Dim::Y);
    let bx = b.block_idx(Dim::X);
    let by = b.block_idx(Dim::Y);
    let ntx = b.block_dim(Dim::X);
    let nty = b.block_dim(Dim::Y);
    let gx0 = b.mul(bx, ntx);
    let gx = b.add(gx0, tx);
    let gy0 = b.mul(by, nty);
    let gy = b.add(gy0, ty);
    let width = b.const_i32(PLANE as i32);
    let row = b.mul(gy, width);
    let idx = b.add(row, gx);
    let p = b.gep(Type::I32, b.param(0), idx);
    let v = b.load(Type::I32, p);
    let qp = b.param(1);
    let two = b.const_i32(2);
    let qp2 = b.mul(qp, two);
    let c = b.icmp(IcmpPred::Slt, v, b.const_i32(0));
    b.br(c, neg, pos);

    // negative: q = ((-v)*2 + qp) / (2*qp); r = -(q*qp)
    b.switch_to(neg);
    let nv = b.sub(b.const_i32(0), v);
    let nv2 = b.mul(nv, two);
    let num_n = b.add(nv2, qp);
    let q_n = b.sdiv(num_n, qp2);
    let r_n0 = b.mul(q_n, qp);
    let r_n = b.sub(b.const_i32(0), r_n0);
    b.jump(join);

    // positive: q = (v*2 + qp) / (2*qp); r = q*qp
    b.switch_to(pos);
    let v2 = b.mul(v, two);
    let num_p = b.add(v2, qp);
    let q_p = b.sdiv(num_p, qp2);
    let r_p = b.mul(q_p, qp);
    b.jump(join);

    b.switch_to(join);
    let r = b.phi(Type::I32, &[(neg, r_n), (pos, r_p)]);
    b.store(r, p);
    b.ret(None);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;

    #[test]
    fn quantizes_the_plane() {
        for block in [(4, 4), (8, 8), (16, 16)] {
            let case = build_case(block);
            verify_ssa(&case.func).unwrap();
            let result = case.execute().unwrap();
            case.check(&result).unwrap();
        }
    }

    #[test]
    fn rounds_away_from_zero_symmetrically() {
        assert_eq!(reference(15), 20);
        assert_eq!(reference(-15), -20);
        assert_eq!(reference(4), 0);
        assert_eq!(reference(-4), 0);
    }
}
