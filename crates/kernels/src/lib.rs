#![warn(missing_docs)]

//! # darm-kernels
//!
//! The benchmark kernels of the DARM paper, rebuilt against `darm-ir`:
//!
//! * [`synthetic`] — the four control-flow patterns SB1–SB4 of Fig. 7 and
//!   their `-R` (non-identical instruction) variants,
//! * [`bitonic`] — bitonic sort (BIT), the paper's running example (Fig. 1),
//! * [`pcm`] — partition & concurrent merge, odd-even merging with nested
//!   data-dependent branches,
//! * [`mergesort`] — bottom-up merge sort step (MS),
//! * [`lud`] — LU-decomposition perimeter kernel (LUD, Rodinia-style) with
//!   block-size-dependent divergence,
//! * [`nqueens`] — N-queens backtracking (NQU) with a divergent
//!   if-then-elseif loop body,
//! * [`srad`] — speckle-reducing anisotropic diffusion (SRAD) with both
//!   block-size-dependent and data-dependent divergent regions,
//! * [`dct`] — DCT plane quantization (DCT) with sign-dependent paths.
//!
//! Every kernel comes as a [`BenchCase`]: the IR function, a launch
//! geometry, concrete input buffers, and the CPU reference output, so the
//! harness can check that any transformed variant still computes the same
//! result.

pub mod bitonic;
pub mod dct;
pub mod lud;
pub mod mergesort;
pub mod nqueens;
pub mod pcm;
pub mod srad;
pub mod synthetic;

use darm_ir::Function;
use darm_simt::{Gpu, GpuConfig, KernelArg, KernelStats, LaunchConfig, PreparedKernel, SimError};

/// One kernel launch argument with its backing data.
#[derive(Debug, Clone)]
pub enum ArgSpec {
    /// An `i32` buffer initialized with the given contents.
    BufI32(Vec<i32>),
    /// An `f32` buffer initialized with the given contents.
    BufF32(Vec<f32>),
    /// A scalar `i32`.
    I32(i32),
    /// A scalar `f32`.
    F32(f32),
}

/// Buffer contents read back after a run.
#[derive(Debug, Clone, PartialEq)]
pub enum BufData {
    /// `i32` contents.
    I32(Vec<i32>),
    /// `f32` contents.
    F32(Vec<f32>),
}

/// A self-contained benchmark instance: kernel + inputs + expected outputs.
#[derive(Debug, Clone)]
pub struct BenchCase {
    /// Display name, e.g. `"BIT-64"`.
    pub name: String,
    /// The kernel.
    pub func: Function,
    /// Launch geometry.
    pub launch: LaunchConfig,
    /// Arguments (buffers are freshly allocated per run).
    pub args: Vec<ArgSpec>,
    /// Expected contents of selected argument buffers after the launch,
    /// computed by a CPU reference implementation.
    pub expected: Vec<(usize, BufData)>,
}

/// Result of executing a [`BenchCase`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Read-back contents of every buffer argument (None for scalars).
    pub buffers: Vec<Option<BufData>>,
    /// Performance counters.
    pub stats: KernelStats,
}

impl BenchCase {
    /// Executes the case's own kernel.
    ///
    /// # Errors
    ///
    /// Propagates any simulator error.
    pub fn execute(&self) -> Result<RunResult, SimError> {
        self.execute_fn(&self.func)
    }

    /// Executes an alternative (e.g. melded) kernel on this case's inputs.
    ///
    /// # Errors
    ///
    /// Propagates any simulator error.
    pub fn execute_fn(&self, func: &Function) -> Result<RunResult, SimError> {
        self.execute_prepared(&PreparedKernel::new(func))
    }

    /// Executes an already-decoded kernel on this case's inputs. Preparing
    /// once (see [`darm_simt::PreparedKernel::new`]) and re-running via this
    /// amortizes the decode across repeated launches — the pattern the
    /// benchmark harness uses for its baseline/DARM/BF variants.
    ///
    /// # Errors
    ///
    /// Propagates any simulator error.
    pub fn execute_prepared(&self, kernel: &PreparedKernel) -> Result<RunResult, SimError> {
        self.execute_compiled(kernel)
    }

    /// Executes a kernel compiled for any [`darm_simt::Backend`] tier on
    /// this case's inputs — the [`darm_simt::CompiledKernel`] analogue of
    /// [`BenchCase::execute_prepared`]; all tiers produce bit-identical
    /// results.
    ///
    /// # Errors
    ///
    /// Propagates any simulator error.
    pub fn execute_compiled(
        &self,
        kernel: &dyn darm_simt::CompiledKernel,
    ) -> Result<RunResult, SimError> {
        self.execute_compiled_with(kernel, GpuConfig::default())
    }

    /// [`BenchCase::execute_compiled`] on a caller-supplied [`GpuConfig`] —
    /// how the harness switches on the cycle-level timing observer
    /// (`config.timing.enabled`) without touching the default fast path.
    ///
    /// # Errors
    ///
    /// Propagates any simulator error.
    pub fn execute_compiled_with(
        &self,
        kernel: &dyn darm_simt::CompiledKernel,
        config: GpuConfig,
    ) -> Result<RunResult, SimError> {
        let mut gpu = Gpu::new(config);
        let (kargs, bufs) = self.alloc_args(&mut gpu);
        let stats = kernel.execute(&mut gpu, &self.launch, &kargs)?;
        let buffers = bufs
            .into_iter()
            .map(|b| {
                b.map(|(id, is_f32)| {
                    if is_f32 {
                        BufData::F32(gpu.read_f32(id))
                    } else {
                        BufData::I32(gpu.read_i32(id))
                    }
                })
            })
            .collect();
        Ok(RunResult { buffers, stats })
    }

    /// Allocates this case's input buffers on `gpu` and builds the launch
    /// argument list. Returns the arguments plus, per argument, the buffer
    /// id and whether it holds `f32` data (`None` for scalars). The single
    /// source of truth for [`ArgSpec`] → [`KernelArg`] conversion, shared by
    /// the harness, the differential test and the throughput bench.
    pub fn alloc_args(
        &self,
        gpu: &mut Gpu,
    ) -> (Vec<KernelArg>, Vec<Option<(darm_simt::BufferId, bool)>>) {
        let mut kargs = Vec::new();
        let mut bufs = Vec::new();
        for arg in &self.args {
            match arg {
                ArgSpec::BufI32(data) => {
                    let b = gpu.alloc_i32(data);
                    bufs.push(Some((b, false)));
                    kargs.push(KernelArg::Buffer(b));
                }
                ArgSpec::BufF32(data) => {
                    let b = gpu.alloc_f32(data);
                    bufs.push(Some((b, true)));
                    kargs.push(KernelArg::Buffer(b));
                }
                ArgSpec::I32(x) => {
                    bufs.push(None);
                    kargs.push(KernelArg::I32(*x));
                }
                ArgSpec::F32(x) => {
                    bufs.push(None);
                    kargs.push(KernelArg::F32(*x));
                }
            }
        }
        (kargs, bufs)
    }

    /// Checks a run result against the CPU reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn check(&self, result: &RunResult) -> Result<(), String> {
        for (idx, want) in &self.expected {
            let got = result.buffers[*idx]
                .as_ref()
                .ok_or_else(|| format!("{}: arg {idx} is not a buffer", self.name))?;
            match (want, got) {
                (BufData::I32(w), BufData::I32(g)) => {
                    if w != g {
                        let pos = w.iter().zip(g).position(|(a, b)| a != b).unwrap_or(0);
                        return Err(format!(
                            "{}: arg {idx} mismatch at {pos}: expected {} got {}",
                            self.name, w[pos], g[pos]
                        ));
                    }
                }
                (BufData::F32(w), BufData::F32(g)) => {
                    for (pos, (a, b)) in w.iter().zip(g).enumerate() {
                        if (a - b).abs() > 1e-4 * (1.0 + a.abs()) {
                            return Err(format!(
                                "{}: arg {idx} mismatch at {pos}: expected {a} got {b}",
                                self.name
                            ));
                        }
                    }
                }
                _ => return Err(format!("{}: arg {idx} buffer type mismatch", self.name)),
            }
        }
        Ok(())
    }

    /// Executes and checks in one call, panicking with context on failure.
    /// Intended for tests and the experiment harness.
    pub fn run_checked(&self, func: &Function) -> RunResult {
        let result = self
            .execute_fn(func)
            .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", self.name));
        self.check(&result).unwrap_or_else(|e| panic!("{e}"));
        result
    }

    /// [`BenchCase::run_checked`] for an already-decoded kernel.
    pub fn run_checked_prepared(&self, kernel: &PreparedKernel) -> RunResult {
        self.run_checked_compiled_with(kernel, GpuConfig::default())
    }

    /// [`BenchCase::run_checked_prepared`] for any compiled tier on a
    /// caller-supplied [`GpuConfig`] — the harness path that collects
    /// simulated cycles by enabling `config.timing`.
    pub fn run_checked_compiled_with(
        &self,
        kernel: &dyn darm_simt::CompiledKernel,
        config: GpuConfig,
    ) -> RunResult {
        let result = self
            .execute_compiled_with(kernel, config)
            .unwrap_or_else(|e| panic!("{}: simulation failed: {e}", self.name));
        self.check(&result).unwrap_or_else(|e| panic!("{e}"));
        result
    }
}

/// Deterministic pseudo-random i32 generator used by the workloads
/// (xorshift; avoids pulling rand into the kernel definitions).
pub fn pseudo_random_i32(seed: u64, n: usize, modulus: i32) -> Vec<i32> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
        | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 33) as i32).rem_euclid(modulus) - modulus / 2
        })
        .collect()
}
