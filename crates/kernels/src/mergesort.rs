//! MS — bottom-up merge sort.
//!
//! One merge step: the input contains sorted runs of width `w`; each thread
//! merges one pair of runs into the output. The `in[i] <= in[j]` comparison
//! inside the merge loop is data-dependent and divergent, and its two sides
//! (take-left / take-right) are meldable; the run-exhausted checks add an
//! if-then-elseif chain around it (§VI-A).

use crate::{ArgSpec, BenchCase, BufData};
use darm_ir::builder::FunctionBuilder;
use darm_ir::{AddrSpace, Dim, Function, IcmpPred, Type};
use darm_simt::LaunchConfig;

/// Sorted-run width of the merge step.
pub const RUN_WIDTH: u32 = 8;

/// Builds an `MS<block_size>` case: `block_size` threads each merge a pair
/// of `RUN_WIDTH`-element sorted runs.
pub fn build_case(block_size: u32) -> BenchCase {
    let n = (block_size * 2 * RUN_WIDTH) as usize;
    let mut input = crate::pseudo_random_i32(0x4D53, n, 100_000);
    for run in input.chunks_mut(RUN_WIDTH as usize) {
        run.sort_unstable();
    }
    let mut expected = vec![0; n];
    for (t, chunk) in input.chunks(2 * RUN_WIDTH as usize).enumerate() {
        let mut merged = chunk.to_vec();
        merged.sort_unstable();
        expected[t * 2 * RUN_WIDTH as usize..(t + 1) * 2 * RUN_WIDTH as usize]
            .copy_from_slice(&merged);
    }
    BenchCase {
        name: format!("MS{block_size}"),
        func: build_kernel(),
        launch: LaunchConfig::linear(1, block_size),
        args: vec![
            ArgSpec::BufI32(vec![0; n]),
            ArgSpec::BufI32(input),
            ArgSpec::I32(RUN_WIDTH as i32),
        ],
        expected: vec![(0, BufData::I32(expected))],
    }
}

/// Builds the merge-step kernel `merge(out, in, w)`.
pub fn build_kernel() -> Function {
    let mut f = Function::new(
        "mergesort_step",
        vec![
            Type::Ptr(AddrSpace::Global),
            Type::Ptr(AddrSpace::Global),
            Type::I32,
        ],
        Type::Void,
    );
    let entry = f.entry();
    let hdr = f.add_block("hdr");
    let body = f.add_block("body");
    let left_done = f.add_block("left.done"); // i >= mid: must take right
    let chk_right = f.add_block("chk.right");
    let right_done = f.add_block("right.done"); // j >= end: must take left
    let cmp = f.add_block("cmp");
    let take_l = f.add_block("take.l");
    let take_r = f.add_block("take.r");
    let join = f.add_block("join");
    let exit = f.add_block("exit");

    let mut b = FunctionBuilder::new(&mut f, entry);
    let tid = b.thread_idx(Dim::X);
    let bid = b.block_idx(Dim::X);
    let bdim = b.block_dim(Dim::X);
    let off = b.mul(bid, bdim);
    let t = b.add(off, tid);
    let w = b.param(2);
    let two = b.const_i32(2);
    let w2 = b.mul(w, two);
    let base = b.mul(t, w2);
    let mid = b.add(base, w);
    let end = b.add(base, w2);
    b.jump(hdr);

    // while (k < end)
    b.switch_to(hdr);
    let i = b.phi(Type::I32, &[(entry, base)]);
    let j = b.phi(Type::I32, &[(entry, mid)]);
    let kk = b.phi(Type::I32, &[(entry, base)]);
    let kc = b.icmp(IcmpPred::Slt, kk, end);
    b.br(kc, body, exit);

    b.switch_to(body);
    let li_done = b.icmp(IcmpPred::Sge, i, mid);
    b.br(li_done, left_done, chk_right);

    // left run exhausted: take right
    b.switch_to(left_done);
    let pr0 = b.gep(Type::I32, b.param(1), j);
    let vr0 = b.load(Type::I32, pr0);
    let j0 = b.add(j, b.const_i32(1));
    b.jump(join);

    b.switch_to(chk_right);
    let rj_done = b.icmp(IcmpPred::Sge, j, end);
    b.br(rj_done, right_done, cmp);

    // right run exhausted: take left
    b.switch_to(right_done);
    let pl0 = b.gep(Type::I32, b.param(1), i);
    let vl0 = b.load(Type::I32, pl0);
    let i0 = b.add(i, b.const_i32(1));
    b.jump(join);

    // both live: data-dependent comparison
    b.switch_to(cmp);
    let pl = b.gep(Type::I32, b.param(1), i);
    let vl = b.load(Type::I32, pl);
    let pr = b.gep(Type::I32, b.param(1), j);
    let vr = b.load(Type::I32, pr);
    let cle = b.icmp(IcmpPred::Sle, vl, vr);
    b.br(cle, take_l, take_r);

    b.switch_to(take_l);
    let i1 = b.add(i, b.const_i32(1));
    b.jump(join);

    b.switch_to(take_r);
    let j1 = b.add(j, b.const_i32(1));
    b.jump(join);

    b.switch_to(join);
    let v = b.phi(
        Type::I32,
        &[
            (left_done, vr0),
            (right_done, vl0),
            (take_l, vl),
            (take_r, vr),
        ],
    );
    let i_next = b.phi(
        Type::I32,
        &[(left_done, i), (right_done, i0), (take_l, i1), (take_r, i)],
    );
    let j_next = b.phi(
        Type::I32,
        &[(left_done, j0), (right_done, j), (take_l, j), (take_r, j1)],
    );
    let pout = b.gep(Type::I32, b.param(0), kk);
    b.store(v, pout);
    let k_next = b.add(kk, b.const_i32(1));
    b.jump(hdr);

    b.switch_to(exit);
    b.ret(None);

    for (phi, backedge) in [(i, i_next), (j, j_next), (kk, k_next)] {
        let id = phi.as_inst().unwrap();
        f.inst_mut(id).operands.push(backedge);
        f.inst_mut(id).phi_blocks.push(join);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_analysis::verify_ssa;

    #[test]
    fn merges_sorted_runs() {
        let case = build_case(32);
        verify_ssa(&case.func).unwrap_or_else(|e| panic!("{e}\n{}", case.func));
        let result = case.execute().unwrap();
        case.check(&result).unwrap();
        assert!(
            result.stats.simd_efficiency() < 1.0,
            "data-dependent merge must diverge"
        );
    }
}
