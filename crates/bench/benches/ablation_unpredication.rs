//! Ablation of §IV-E: DARM with and without unpredication. Without it,
//! unaligned stores are fully predicated (load + select + store), which
//! costs extra memory traffic exactly as the paper describes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darm_kernels::synthetic::{build_case, SyntheticKind};
use darm_melding::{meld_function, MeldConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_unpredication");
    group.sample_size(10);
    for kind in [SyntheticKind::Sb1R, SyntheticKind::Sb2R] {
        let case = build_case(kind, 64);
        let mut with_unpred = case.func.clone();
        meld_function(&mut with_unpred, &MeldConfig::default());
        let mut without = case.func.clone();
        meld_function(
            &mut without,
            &MeldConfig {
                unpredicate: false,
                ..MeldConfig::default()
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unpredicated", kind.name()),
            &case,
            |b, case| b.iter(|| case.run_checked(&with_unpred)),
        );
        group.bench_with_input(
            BenchmarkId::new("predicated", kind.name()),
            &case,
            |b, case| b.iter(|| case.run_checked(&without)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
