//! Criterion bench behind Fig. 12: end-to-end (pass + simulation) time at
//! different melding-profitability thresholds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darm_kernels::bitonic;
use darm_melding::{meld_function, MeldConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_threshold");
    group.sample_size(10);
    let case = bitonic::build_case(64);
    for t in [0.1, 0.2, 0.3, 0.4, 0.5] {
        group.bench_with_input(BenchmarkId::new("BIT64", format!("{t}")), &t, |b, &t| {
            b.iter(|| {
                let mut f = case.func.clone();
                meld_function(&mut f, &MeldConfig::with_threshold(t));
                case.run_checked(&f)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
