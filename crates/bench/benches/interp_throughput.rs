//! Interpreter-throughput microbenchmark across all three execution
//! backends — flat register bytecode vs the pre-decoded warp-vectorized
//! engine vs the original per-lane reference interpreter — on the fig. 9
//! real-world kernel set.
//!
//! Reports per-case criterion timings for every engine plus a summary
//! table of simulated thread-instructions per second and the geomean
//! speedups. Acceptance targets, asserted on full runs: the decoded
//! engine at **≥2×** the reference, and the bytecode engine at **≥1.3×**
//! the decoded engine.
//!
//! `cargo bench --bench interp_throughput` — measure.
//! `cargo bench --bench interp_throughput -- --test` — smoke mode: each
//! engine runs every case once and the stats are cross-checked, then
//! quick min-estimator ratios are recorded through
//! [`darm_bench::perfjson`] (keys `interp_throughput/bytecode_vs_reference`
//! and `interp_throughput/bytecode_vs_prepared`) for the perf gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darm_bench::{fig9_cases, geomean, perfjson};
use darm_kernels::BenchCase;
use darm_simt::{BytecodeKernel, Gpu, GpuConfig, KernelStats, PreparedKernel};
use std::time::Instant;

/// Runs `case` on the reference (per-lane, arena-walking) interpreter.
/// Like the two helpers below: fresh buffers, no readback, so timings
/// compare launch cost alone, symmetrically across engines.
fn run_reference(case: &BenchCase) -> KernelStats {
    let mut gpu = Gpu::new(GpuConfig::default());
    let (kargs, _bufs) = case.alloc_args(&mut gpu);
    gpu.launch_reference(&case.func, &case.launch, &kargs)
        .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", case.name))
}

/// Runs `case` on the decoded engine.
fn run_prepared(case: &BenchCase, pk: &PreparedKernel) -> KernelStats {
    let mut gpu = Gpu::new(GpuConfig::default());
    let (kargs, _bufs) = case.alloc_args(&mut gpu);
    gpu.launch_prepared(pk, &case.launch, &kargs)
        .unwrap_or_else(|e| panic!("{}: decoded run failed: {e}", case.name))
}

/// Runs `case` on the bytecode engine.
fn run_bytecode(case: &BenchCase, bk: &BytecodeKernel) -> KernelStats {
    let mut gpu = Gpu::new(GpuConfig::default());
    let (kargs, _bufs) = case.alloc_args(&mut gpu);
    gpu.launch_bytecode(bk, &case.launch, &kargs)
        .unwrap_or_else(|e| panic!("{}: bytecode run failed: {e}", case.name))
}

/// Times `f` over enough repetitions to fill roughly `budget` seconds,
/// returning seconds per call.
fn time_per_call_budget(budget: f64, mut f: impl FnMut()) -> f64 {
    // Warm up and size the batch.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-6);
    let reps = ((budget / once).ceil() as usize).clamp(3, 200);
    let t1 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t1.elapsed().as_secs_f64() / reps as f64
}

/// Full-run timing: ~100 ms per measurement.
fn time_per_call(f: impl FnMut()) -> f64 {
    time_per_call_budget(0.1, f)
}

fn bench(c: &mut Criterion) {
    let test_mode = c.is_test_mode();
    let cases = fig9_cases();

    // Criterion-style per-case timings.
    let mut group = c.benchmark_group("interp_throughput");
    group.sample_size(10);
    for case in &cases {
        let pk = PreparedKernel::new(&case.func);
        let bk = BytecodeKernel::from_prepared(&pk);
        group.bench_with_input(BenchmarkId::new("bytecode", &case.name), case, |b, case| {
            b.iter(|| run_bytecode(case, &bk))
        });
        group.bench_with_input(BenchmarkId::new("decoded", &case.name), case, |b, case| {
            b.iter(|| run_prepared(case, &pk))
        });
        group.bench_with_input(
            BenchmarkId::new("reference", &case.name),
            case,
            |b, case| b.iter(|| run_reference(case)),
        );
    }
    group.finish();

    if test_mode {
        // Smoke mode: one untimed cross-check per engine, then quick
        // min-estimator ratios for the perf gate.
        let (mut bc_vs_ref, mut bc_vs_dec) = (Vec::new(), Vec::new());
        for case in &cases {
            let pk = PreparedKernel::new(&case.func);
            let bk = BytecodeKernel::from_prepared(&pk);
            let stats = run_prepared(case, &pk);
            assert_eq!(
                stats,
                run_reference(case),
                "{}: decoded vs reference disagree",
                case.name
            );
            assert_eq!(
                stats,
                run_bytecode(case, &bk),
                "{}: bytecode vs decoded disagree",
                case.name
            );
            let t_bc = time_per_call_budget(0.03, || {
                run_bytecode(case, &bk);
            });
            let t_dec = time_per_call_budget(0.03, || {
                run_prepared(case, &pk);
            });
            let t_ref = time_per_call_budget(0.03, || {
                run_reference(case);
            });
            println!(
                "interp_throughput smoke: {:<10} bytecode {:.2}x reference, {:.2}x decoded",
                case.name,
                t_ref / t_bc,
                t_dec / t_bc
            );
            bc_vs_ref.push(t_ref / t_bc);
            bc_vs_dec.push(t_dec / t_bc);
        }
        let gm_ref = geomean(bc_vs_ref.iter().copied());
        let gm_dec = geomean(bc_vs_dec.iter().copied());
        println!("interp_throughput: smoke mode — all three engines agree on all fig9 cases");
        println!(
            "interp_throughput smoke: bytecode at {gm_ref:.2}x reference, {gm_dec:.2}x decoded"
        );
        perfjson::record("interp_throughput/bytecode_vs_reference", gm_ref);
        perfjson::record("interp_throughput/bytecode_vs_prepared", gm_dec);
        return;
    }

    // Summary: simulated thread-instructions per second for all three
    // engines, and the geomean speedups the tentpoles are accountable for.
    let (mut dec_vs_ref, mut bc_vs_dec, mut bc_vs_ref) = (Vec::new(), Vec::new(), Vec::new());
    println!();
    println!(
        "| case | static insts | regs | bytecode Minstr/s | decoded Minstr/s | reference Minstr/s | bc/dec | dec/ref |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for case in &cases {
        let pk = PreparedKernel::new(&case.func);
        let bk = BytecodeKernel::from_prepared(&pk);
        let stats = run_prepared(case, &pk);
        let insts = stats.thread_instructions as f64;
        let bc = insts
            / time_per_call(|| {
                run_bytecode(case, &bk);
            });
        let dec = insts
            / time_per_call(|| {
                run_prepared(case, &pk);
            });
        let refc = insts
            / time_per_call(|| {
                run_reference(case);
            });
        println!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.2}x | {:.2}x |",
            case.name,
            pk.decoded_inst_count(),
            pk.register_slots(),
            bc / 1e6,
            dec / 1e6,
            refc / 1e6,
            bc / dec,
            dec / refc
        );
        dec_vs_ref.push(dec / refc);
        bc_vs_dec.push(bc / dec);
        bc_vs_ref.push(bc / refc);
    }
    let gm_dec_ref = geomean(dec_vs_ref.iter().copied());
    let gm_bc_dec = geomean(bc_vs_dec.iter().copied());
    let gm_bc_ref = geomean(bc_vs_ref.iter().copied());
    println!("| **GM** | | | | | | **{gm_bc_dec:.2}x** | **{gm_dec_ref:.2}x** |");
    println!("bytecode vs reference geomean: {gm_bc_ref:.2}x");
    perfjson::record(
        "measured/interp_throughput/bytecode_vs_reference",
        gm_bc_ref,
    );
    perfjson::record("measured/interp_throughput/bytecode_vs_prepared", gm_bc_dec);
    assert!(
        gm_dec_ref >= 2.0,
        "decoded engine geomean speedup {gm_dec_ref:.2}x is below the 2x acceptance target"
    );
    assert!(
        gm_bc_dec >= 1.3,
        "bytecode engine geomean speedup {gm_bc_dec:.2}x over the decoded engine is below the \
         1.3x acceptance target"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
