//! Interpreter-throughput microbenchmark: the pre-decoded warp-vectorized
//! engine vs the original per-lane reference interpreter, on the fig. 9
//! real-world kernel set.
//!
//! Reports per-case criterion timings for both engines plus a summary table
//! of simulated thread-instructions per second and the geomean speedup.
//! The acceptance target for the decode/execute split is a **≥2× geomean**
//! throughput improvement; full bench runs assert it.
//!
//! `cargo bench --bench interp_throughput` — measure.
//! `cargo bench --bench interp_throughput -- --test` — smoke mode: each
//! engine runs every case once and the stats are cross-checked, untimed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darm_bench::{fig9_cases, geomean};
use darm_kernels::BenchCase;
use darm_simt::{Gpu, GpuConfig, KernelStats, PreparedKernel};
use std::time::Instant;

/// Runs `case` on the reference (per-lane, arena-walking) interpreter.
fn run_reference(case: &BenchCase) -> KernelStats {
    let mut gpu = Gpu::new(GpuConfig::default());
    let (kargs, _bufs) = case.alloc_args(&mut gpu);
    gpu.launch_reference(&case.func, &case.launch, &kargs)
        .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", case.name))
}

/// Times `f` over enough repetitions to fill ~100 ms, returning seconds per
/// call.
fn time_per_call(mut f: impl FnMut()) -> f64 {
    // Warm up and size the batch.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-6);
    let reps = ((0.1 / once).ceil() as usize).clamp(3, 200);
    let t1 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t1.elapsed().as_secs_f64() / reps as f64
}

fn bench(c: &mut Criterion) {
    let test_mode = c.is_test_mode();
    let cases = fig9_cases();

    // Criterion-style per-case timings.
    let mut group = c.benchmark_group("interp_throughput");
    group.sample_size(10);
    for case in &cases {
        let pk = PreparedKernel::new(&case.func);
        group.bench_with_input(BenchmarkId::new("decoded", &case.name), case, |b, case| {
            b.iter(|| case.execute_prepared(&pk).unwrap().stats)
        });
        group.bench_with_input(
            BenchmarkId::new("reference", &case.name),
            case,
            |b, case| b.iter(|| run_reference(case)),
        );
    }
    group.finish();

    // Summary: simulated thread-instructions per second, decoded vs
    // reference, and the geomean speedup the tentpole is accountable for.
    let mut speedups = Vec::new();
    println!();
    println!("| case | static insts | regs | decoded Minstr/s | reference Minstr/s | speedup |");
    println!("|---|---|---|---|---|---|");
    for case in &cases {
        let pk = PreparedKernel::new(&case.func);
        let stats = case.execute_prepared(&pk).unwrap().stats;
        if test_mode {
            // Smoke mode: one untimed cross-check per engine.
            assert_eq!(
                stats,
                run_reference(case),
                "{}: engines disagree",
                case.name
            );
            continue;
        }
        let insts = stats.thread_instructions as f64;
        let dec = insts
            / time_per_call(|| {
                case.execute_prepared(&pk).unwrap();
            });
        let refc = insts
            / time_per_call(|| {
                run_reference(case);
            });
        println!(
            "| {} | {} | {} | {:.1} | {:.1} | {:.2}x |",
            case.name,
            pk.decoded_inst_count(),
            pk.register_slots(),
            dec / 1e6,
            refc / 1e6,
            dec / refc
        );
        speedups.push(dec / refc);
    }
    if test_mode {
        println!("interp_throughput: smoke mode — engines agree on all fig9 cases");
        return;
    }
    let gm = geomean(speedups.iter().copied());
    println!("| **GM** | | | | | **{gm:.2}x** |");
    assert!(
        gm >= 2.0,
        "decoded engine geomean speedup {gm:.2}x is below the 2x acceptance target"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
