//! Criterion bench behind Fig. 9: simulation time of representative
//! real-world kernels, baseline vs DARM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darm_kernels::{bitonic, dct, pcm};
use darm_melding::{meld_function, MeldConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_realworld");
    group.sample_size(10);
    let cases = vec![
        bitonic::build_case(64),
        pcm::build_case(64),
        dct::build_case((8, 8)),
    ];
    for case in &cases {
        let mut darm_fn = case.func.clone();
        meld_function(&mut darm_fn, &MeldConfig::default());
        group.bench_with_input(BenchmarkId::new("baseline", &case.name), case, |b, case| {
            b.iter(|| case.run_checked(&case.func))
        });
        group.bench_with_input(BenchmarkId::new("darm", &case.name), case, |b, case| {
            b.iter(|| case.run_checked(&darm_fn))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
