//! Module-batch compile-time benchmark: the full fig. 8 + fig. 9 kernel
//! suite melded as one `darm_ir::Module` through one `ModulePassManager`,
//! serial (`jobs = 1`) vs parallel (all cores), with a determinism guard —
//! the parallel module must print bit-identical to the serial one.
//!
//! Methodology mirrors `meld_pipeline`: interleaved rounds with the
//! *minimum* wall-clock as the estimator (noise only ever adds time), the
//! `Module::clone` cost measured separately and excluded from the ratio.
//!
//! `cargo bench --bench module_batch` — measure serial vs parallel.
//! `cargo bench --bench module_batch -- --test` — smoke mode (the CI
//! gate): one serial and one `--jobs 2` run over the whole suite, asserted
//! bit-identical, plus a check that the worker pool's schedule really is
//! largest-kernel-first. With `DARM_BENCH_JSON=path` both modes record
//! the serial-vs-parallel wall ratio for the perf-gate trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use darm_bench::{fig8_cases, fig9_cases, perfjson, suite_module};
use darm_ir::Module;
use darm_kernels::BenchCase;
use darm_melding::MeldConfig;
use darm_pipeline::{ModuleOptions, ModulePassManager, PassRegistry, PipelineOptions};
use std::time::Instant;

fn all_cases() -> Vec<BenchCase> {
    let mut cases = fig8_cases();
    cases.extend(fig9_cases());
    cases
}

/// Melds a clone of `module` with `jobs` workers; returns the transformed
/// module and the wall-clock seconds of the pipeline run alone (the clone
/// is excluded).
fn meld_with_jobs(registry: &PassRegistry, module: &Module, jobs: usize) -> (Module, f64) {
    let mpm = ModulePassManager::new(
        registry,
        "meld",
        ModuleOptions {
            pipeline: PipelineOptions::default(),
            jobs,
            ..ModuleOptions::default()
        },
    )
    .expect("the meld spec is valid");
    let mut m = module.clone();
    let t0 = Instant::now();
    let report = mpm.run(&mut m).expect("suite melds cleanly");
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.functions.len(), module.len());
    (m, wall)
}

fn bench(c: &mut Criterion) {
    let cases = all_cases();
    let module = suite_module("fig8+fig9", &cases);
    let registry = darm_melding::registry(&MeldConfig::default());

    // Cross-kernel scheduling guard, in both modes: the worker pool must
    // claim kernels largest-first (descending live block + inst count,
    // input order breaking ties) — the fig8+fig9 suite is size-skewed, so
    // a sorted schedule is a real reordering here.
    {
        let mpm = ModulePassManager::new(&registry, "meld", ModuleOptions::default())
            .expect("the meld spec is valid");
        let order = mpm.scheduled_order(&module);
        let size = |i: usize| {
            let f = &module.functions()[i];
            f.live_block_count() + f.live_inst_count()
        };
        for w in order.windows(2) {
            assert!(
                size(w[0]) > size(w[1]) || (size(w[0]) == size(w[1]) && w[0] < w[1]),
                "schedule not largest-first: {:?} (sizes {} vs {})",
                w,
                size(w[0]),
                size(w[1])
            );
        }
        assert_ne!(
            order,
            (0..module.len()).collect::<Vec<_>>(),
            "suite is size-skewed; a largest-first schedule must reorder it"
        );
    }

    // Determinism guard, in both modes: a parallel run must produce a
    // module that prints bit-identical to the serial run's despite the
    // out-of-input-order schedule.
    let (serial, _) = meld_with_jobs(&registry, &module, 1);
    let (parallel2, _) = meld_with_jobs(&registry, &module, 2);
    assert_eq!(
        serial.to_string(),
        parallel2.to_string(),
        "--jobs 2 output diverged from --jobs 1"
    );

    if c.is_test_mode() {
        println!(
            "module_batch guard: {} kernels, --jobs 2 bit-identical to serial (largest-first schedule)",
            module.len()
        );
        // Interleaved min over a few rounds: single-shot wall ratios are
        // too noisy to gate on.
        let (mut t1, mut t2) = (f64::MAX, f64::MAX);
        for _ in 0..3 {
            t1 = t1.min(meld_with_jobs(&registry, &module, 1).1);
            t2 = t2.min(meld_with_jobs(&registry, &module, 2).1);
        }
        println!("module_batch smoke: --jobs 2 at {:.2}x of serial", t1 / t2);
        perfjson::record("module_batch/jobs2_vs_serial", t1 / t2);
        return;
    }

    let jobs = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let (parallel_n, _) = meld_with_jobs(&registry, &module, jobs);
    assert_eq!(
        serial.to_string(),
        parallel_n.to_string(),
        "--jobs {jobs} output diverged from --jobs 1"
    );

    // Interleaved min-estimator comparison.
    let rounds = 6;
    let mut t_serial = f64::MAX;
    let mut t_parallel = f64::MAX;
    for _ in 0..rounds {
        t_serial = t_serial.min(meld_with_jobs(&registry, &module, 1).1);
        t_parallel = t_parallel.min(meld_with_jobs(&registry, &module, jobs).1);
    }
    println!();
    println!("module_batch: {} kernels (fig8+fig9)", module.len());
    println!("| jobs | wall (ms) |");
    println!("|---|---|");
    println!("| 1 | {:.3} |", t_serial * 1e3);
    println!("| {jobs} | {:.3} |", t_parallel * 1e3);
    println!(
        "parallel speedup: {:.2}x on {jobs} workers (output bit-identical to serial)",
        t_serial / t_parallel
    );
    perfjson::record(
        "measured/module_batch/parallel_vs_serial",
        t_serial / t_parallel,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
