//! Compile-time benchmark for the incremental-analysis rework: end-to-end
//! meld compile time (the full Algorithm 1 fixpoint with cleanups) on the
//! synthetic fig. 8 kernel sweep, the incremental driver vs the frozen
//! PR 2 driver ([`meld_function_pr2`]) — the pass-manager-era architecture
//! with invalidate-everything analysis management, divergence rebuilding
//! its own post-dominator tree, and whole-function round-based cleanup
//! scans, kept verbatim for differential timing.
//!
//! Methodology: the two drivers are timed interleaved (per case, per
//! round) with the *minimum* over rounds as the estimator — scheduler and
//! frequency noise only ever add time — and the harness's `Function::clone`
//! cost measured separately and excluded, so the ratio reflects meld
//! compile time alone.
//!
//! Bounds (asserted in measured mode):
//! * **Hard floor ≥ 1.15×** geomean — the incremental rework must beat the
//!   PR 2 driver by a clear margin even on a noisy machine.
//! * **Target 1.25×** — printed against the measurement, and reached on a
//!   quiet machine since the deletion-capable dominator work: reconcile-
//!   on-read analysis management (each cached entry revalidates against
//!   its own journal window at query time, so mutation stretches coalesce)
//!   plus in-place dominator/post-dominator updates for deletion batches
//!   small enough to win (profitability-gated — see
//!   `darm_analysis::dom`). The remaining gap to the PR 2 driver is the
//!   melding planner/codegen shared by both (Amdahl); the phases this
//!   line of work attacked measure ~1.7× on their own (the no-op rescan
//!   figure below, floor ≥ 1.50×).
//!
//! `cargo bench --bench meld_pipeline` — measure.
//! `cargo bench --bench meld_pipeline -- --test` — smoke mode: bit-identity
//! cross-check of the incremental driver vs the frozen PR 2 driver vs the
//! pre-pipeline reference oracle on every fig8 kernel × {DARM, BF}, a
//! reduced-iteration no-regression guard (geomean ≥ 1.0× with a 5%
//! timer-noise allowance), and an `in_place_deletion_updates > 0` check
//! that deletion windows really do update trees in place — the CI gate.
//! With `DARM_BENCH_JSON=path` both modes also record their ratios for
//! the perf-gate trajectory (see `darm_bench::perfjson`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darm_bench::{fig8_cases, geomean, perfjson};
use darm_kernels::BenchCase;
use darm_melding::{
    meld_function, meld_function_pr2, meld_function_reference, run_meld_pipeline, MeldConfig,
};
use darm_pipeline::PipelineOptions;
use std::time::Instant;

/// Times `f` over enough repetitions to fill ~20 ms, returning seconds per
/// call.
fn time_per_call(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-6);
    let reps = ((0.02 / once).ceil() as usize).clamp(3, 500);
    let t1 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t1.elapsed().as_secs_f64() / reps as f64
}

/// Interleaved min-estimator comparison of the incremental driver vs the
/// frozen PR 2 driver over `cases`, clone cost excluded. Returns per-case
/// speedups.
fn compare(cases: &[BenchCase], config: &MeldConfig, rounds: usize) -> Vec<f64> {
    let big = f64::MAX;
    let mut t_inc = vec![big; cases.len()];
    let mut t_pr2 = vec![big; cases.len()];
    let mut t_clone = vec![big; cases.len()];
    for _ in 0..rounds {
        for (i, case) in cases.iter().enumerate() {
            let f = &case.func;
            t_clone[i] = t_clone[i].min(time_per_call(|| {
                std::hint::black_box(f.clone());
            }));
            t_inc[i] = t_inc[i].min(time_per_call(|| {
                let mut g = f.clone();
                meld_function(&mut g, config);
            }));
            t_pr2[i] = t_pr2[i].min(time_per_call(|| {
                let mut g = f.clone();
                meld_function_pr2(&mut g, config);
            }));
        }
    }
    (0..cases.len())
        .map(|i| (t_pr2[i] - t_clone[i]) / (t_inc[i] - t_clone[i]))
        .collect()
}

fn bench(c: &mut Criterion) {
    let test_mode = c.is_test_mode();
    let cases = fig8_cases();
    let config = MeldConfig::default();

    // Correctness first, in both modes: the incremental driver, the frozen
    // PR 2 driver and the pre-pipeline reference oracle must be
    // bit-identical (printed IR and statistics) on the whole sweep, under
    // both DARM and branch fusion, before any time means anything.
    for case in &cases {
        for cfg in [MeldConfig::default(), MeldConfig::branch_fusion()] {
            let mut a = case.func.clone();
            let sa = meld_function(&mut a, &cfg);
            let mut b = case.func.clone();
            let sb = meld_function_pr2(&mut b, &cfg);
            let mut r = case.func.clone();
            let sr = meld_function_reference(&mut r, &cfg);
            assert_eq!(
                a.to_string(),
                b.to_string(),
                "{}: incremental and PR 2 drivers disagree",
                case.name
            );
            assert_eq!(
                a.to_string(),
                r.to_string(),
                "{}: incremental and reference drivers disagree",
                case.name
            );
            assert_eq!(
                format!("{sa:?}"),
                format!("{sb:?}"),
                "{}: statistics disagree (pr2)",
                case.name
            );
            assert_eq!(
                format!("{sa:?}"),
                format!("{sr:?}"),
                "{}: statistics disagree (reference)",
                case.name
            );
        }
    }

    // Deletion windows must actually update trees in place somewhere on
    // the sweep — the `--time-passes` counter the deletion-capable
    // dominator work is measured by.
    let deletion_updates: usize = cases
        .iter()
        .map(|case| {
            let mut f = case.func.clone();
            let out = run_meld_pipeline(
                &mut f,
                &config,
                PipelineOptions {
                    time_passes: true,
                    ..PipelineOptions::default()
                },
            )
            .expect("meld pipeline runs");
            out.report
                .passes
                .iter()
                .map(|p| p.analysis.in_place_deletion_updates)
                .sum::<usize>()
        })
        .sum();
    println!("in-place deletion updates across the fig8 sweep: {deletion_updates}");
    assert!(
        deletion_updates > 0,
        "no deletion-containing window updated a dominator tree in place"
    );

    if test_mode {
        // Smoke-sized no-regression guard: the incremental driver must not
        // be slower than the PR 2 driver (5% timer-noise allowance).
        let speedups = compare(&cases, &config, 2);
        let gm = geomean(speedups.iter().copied());
        println!("meld_pipeline guard: smoke geomean {gm:.3}x vs PR 2 driver (bound: >= 0.95)");
        perfjson::record("meld_pipeline/smoke_vs_pr2", gm);
        assert!(
            gm >= 0.95,
            "incremental driver regressed below the PR 2 driver ({gm:.3}x)"
        );
        return;
    }

    // Criterion-style timings per synthetic kind at block size 32.
    let mut group = c.benchmark_group("meld_pipeline");
    group.sample_size(10);
    for case in cases.iter().filter(|c| c.name.ends_with("-32")) {
        group.bench_with_input(
            BenchmarkId::new("incremental", &case.name),
            case,
            |b, case| {
                b.iter(|| {
                    let mut f = case.func.clone();
                    meld_function(&mut f, &config)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("pr2", &case.name), case, |b, case| {
            b.iter(|| {
                let mut f = case.func.clone();
                meld_function_pr2(&mut f, &config)
            })
        });
    }
    group.finish();

    // Summary over the full sweep.
    let speedups = compare(&cases, &config, 6);
    println!();
    println!("| case | speedup vs PR 2 driver |");
    println!("|---|---|");
    for (case, s) in cases.iter().zip(&speedups) {
        println!("| {} | {s:.2}x |", case.name);
    }
    let gm = geomean(speedups.iter().copied());
    println!("| **GM** | **{gm:.2}x** |");

    // The phase this rework attacked, isolated: a full no-op rescan on the
    // already-melded function (analyses + detection + zero melds).
    let mut rescans = Vec::new();
    for case in &cases {
        let mut melded = case.func.clone();
        meld_function(&mut melded, &config);
        let mut t_inc = f64::MAX;
        let mut t_pr2 = f64::MAX;
        let mut t_clone = f64::MAX;
        for _ in 0..4 {
            t_clone = t_clone.min(time_per_call(|| {
                std::hint::black_box(melded.clone());
            }));
            t_inc = t_inc.min(time_per_call(|| {
                let mut g = melded.clone();
                meld_function(&mut g, &config);
            }));
            t_pr2 = t_pr2.min(time_per_call(|| {
                let mut g = melded.clone();
                meld_function_pr2(&mut g, &config);
            }));
        }
        rescans.push((t_pr2 - t_clone) / (t_inc - t_clone));
    }
    let gm_rescan = geomean(rescans.iter().copied());
    println!("no-op rescan geomean (the attacked phase): {gm_rescan:.2}x");
    perfjson::record("measured/meld_pipeline/end_to_end_vs_pr2", gm);
    perfjson::record("measured/meld_pipeline/rescan_vs_pr2", gm_rescan);
    println!("hard floor: >= 1.15x end-to-end geomean, >= 1.50x on the rescan phase");
    println!("target: >= 1.25x — measured {gm:.2}x end-to-end; the remainder is the");
    println!("melding planner/codegen shared by both drivers (Amdahl), not recompute");
    assert!(
        gm >= 1.15,
        "incremental driver fell below the hard floor vs the PR 2 driver ({gm:.2}x)"
    );
    assert!(
        gm_rescan >= 1.50,
        "incremental rescan phase fell below its bound ({gm_rescan:.2}x)"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
