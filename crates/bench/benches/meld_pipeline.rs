//! Compile-time benchmark for the incremental-analysis rework: end-to-end
//! meld compile time (the full Algorithm 1 fixpoint with cleanups) on the
//! synthetic fig. 8 kernel sweep, the incremental driver vs the frozen
//! PR 2 driver ([`meld_function_pr2`]) — the pass-manager-era architecture
//! with invalidate-everything analysis management, divergence rebuilding
//! its own post-dominator tree, and whole-function round-based cleanup
//! scans, kept verbatim for differential timing.
//!
//! Methodology: the two drivers are timed interleaved (per case, per
//! round) with the *minimum* over rounds as the estimator — scheduler and
//! frequency noise only ever add time — and the harness's `Function::clone`
//! cost measured separately and excluded, so the ratio reflects meld
//! compile time alone.
//!
//! Bounds (asserted in measured mode):
//! * **Hard floor ≥ 1.10×** geomean — the incremental rework must beat the
//!   PR 2 driver by a clear margin even on a noisy machine.
//! * **Target 1.25×** — printed against the measurement. Quiet-machine
//!   runs land around 1.2×: the remaining gap is Amdahl's law, not
//!   recompute — the melding planner/codegen shared by both drivers
//!   dominates these paper-sized kernels, while the phases this rework
//!   attacked (analysis recompute, cleanup rescans) measure ~1.6× on
//!   their own (see the no-op rescan figure the bench prints).
//!
//! `cargo bench --bench meld_pipeline` — measure.
//! `cargo bench --bench meld_pipeline -- --test` — smoke mode: bit-identity
//! cross-check of the incremental driver vs the frozen PR 2 driver vs the
//! pre-pipeline reference oracle on every fig8 kernel × {DARM, BF}, plus a
//! reduced-iteration no-regression guard (geomean ≥ 1.0× with a 5%
//! timer-noise allowance) — the CI gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darm_bench::{fig8_cases, geomean};
use darm_kernels::BenchCase;
use darm_melding::{meld_function, meld_function_pr2, meld_function_reference, MeldConfig};
use std::time::Instant;

/// Times `f` over enough repetitions to fill ~20 ms, returning seconds per
/// call.
fn time_per_call(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-6);
    let reps = ((0.02 / once).ceil() as usize).clamp(3, 500);
    let t1 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t1.elapsed().as_secs_f64() / reps as f64
}

/// Interleaved min-estimator comparison of the incremental driver vs the
/// frozen PR 2 driver over `cases`, clone cost excluded. Returns per-case
/// speedups.
fn compare(cases: &[BenchCase], config: &MeldConfig, rounds: usize) -> Vec<f64> {
    let big = f64::MAX;
    let mut t_inc = vec![big; cases.len()];
    let mut t_pr2 = vec![big; cases.len()];
    let mut t_clone = vec![big; cases.len()];
    for _ in 0..rounds {
        for (i, case) in cases.iter().enumerate() {
            let f = &case.func;
            t_clone[i] = t_clone[i].min(time_per_call(|| {
                std::hint::black_box(f.clone());
            }));
            t_inc[i] = t_inc[i].min(time_per_call(|| {
                let mut g = f.clone();
                meld_function(&mut g, config);
            }));
            t_pr2[i] = t_pr2[i].min(time_per_call(|| {
                let mut g = f.clone();
                meld_function_pr2(&mut g, config);
            }));
        }
    }
    (0..cases.len())
        .map(|i| (t_pr2[i] - t_clone[i]) / (t_inc[i] - t_clone[i]))
        .collect()
}

fn bench(c: &mut Criterion) {
    let test_mode = c.is_test_mode();
    let cases = fig8_cases();
    let config = MeldConfig::default();

    // Correctness first, in both modes: the incremental driver, the frozen
    // PR 2 driver and the pre-pipeline reference oracle must be
    // bit-identical (printed IR and statistics) on the whole sweep, under
    // both DARM and branch fusion, before any time means anything.
    for case in &cases {
        for cfg in [MeldConfig::default(), MeldConfig::branch_fusion()] {
            let mut a = case.func.clone();
            let sa = meld_function(&mut a, &cfg);
            let mut b = case.func.clone();
            let sb = meld_function_pr2(&mut b, &cfg);
            let mut r = case.func.clone();
            let sr = meld_function_reference(&mut r, &cfg);
            assert_eq!(
                a.to_string(),
                b.to_string(),
                "{}: incremental and PR 2 drivers disagree",
                case.name
            );
            assert_eq!(
                a.to_string(),
                r.to_string(),
                "{}: incremental and reference drivers disagree",
                case.name
            );
            assert_eq!(
                format!("{sa:?}"),
                format!("{sb:?}"),
                "{}: statistics disagree (pr2)",
                case.name
            );
            assert_eq!(
                format!("{sa:?}"),
                format!("{sr:?}"),
                "{}: statistics disagree (reference)",
                case.name
            );
        }
    }

    if test_mode {
        // Smoke-sized no-regression guard: the incremental driver must not
        // be slower than the PR 2 driver (5% timer-noise allowance).
        let speedups = compare(&cases, &config, 2);
        let gm = geomean(speedups.iter().copied());
        println!("meld_pipeline guard: smoke geomean {gm:.3}x vs PR 2 driver (bound: >= 0.95)");
        assert!(
            gm >= 0.95,
            "incremental driver regressed below the PR 2 driver ({gm:.3}x)"
        );
        return;
    }

    // Criterion-style timings per synthetic kind at block size 32.
    let mut group = c.benchmark_group("meld_pipeline");
    group.sample_size(10);
    for case in cases.iter().filter(|c| c.name.ends_with("-32")) {
        group.bench_with_input(
            BenchmarkId::new("incremental", &case.name),
            case,
            |b, case| {
                b.iter(|| {
                    let mut f = case.func.clone();
                    meld_function(&mut f, &config)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("pr2", &case.name), case, |b, case| {
            b.iter(|| {
                let mut f = case.func.clone();
                meld_function_pr2(&mut f, &config)
            })
        });
    }
    group.finish();

    // Summary over the full sweep.
    let speedups = compare(&cases, &config, 6);
    println!();
    println!("| case | speedup vs PR 2 driver |");
    println!("|---|---|");
    for (case, s) in cases.iter().zip(&speedups) {
        println!("| {} | {s:.2}x |", case.name);
    }
    let gm = geomean(speedups.iter().copied());
    println!("| **GM** | **{gm:.2}x** |");

    // The phase this rework attacked, isolated: a full no-op rescan on the
    // already-melded function (analyses + detection + zero melds).
    let mut rescans = Vec::new();
    for case in &cases {
        let mut melded = case.func.clone();
        meld_function(&mut melded, &config);
        let mut t_inc = f64::MAX;
        let mut t_pr2 = f64::MAX;
        let mut t_clone = f64::MAX;
        for _ in 0..4 {
            t_clone = t_clone.min(time_per_call(|| {
                std::hint::black_box(melded.clone());
            }));
            t_inc = t_inc.min(time_per_call(|| {
                let mut g = melded.clone();
                meld_function(&mut g, &config);
            }));
            t_pr2 = t_pr2.min(time_per_call(|| {
                let mut g = melded.clone();
                meld_function_pr2(&mut g, &config);
            }));
        }
        rescans.push((t_pr2 - t_clone) / (t_inc - t_clone));
    }
    let gm_rescan = geomean(rescans.iter().copied());
    println!("no-op rescan geomean (the attacked phase): {gm_rescan:.2}x");
    println!("hard floor: >= 1.10x end-to-end geomean");
    println!("target: >= 1.25x — measured {gm:.2}x end-to-end; the remainder is the");
    println!("melding planner/codegen shared by both drivers (Amdahl), not recompute");
    assert!(
        gm >= 1.10,
        "incremental driver fell below the hard floor vs the PR 2 driver ({gm:.2}x)"
    );
    assert!(
        gm_rescan >= 1.25,
        "incremental rescan phase fell below its bound ({gm_rescan:.2}x)"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
