//! Compile-time benchmark for the pass-manager refactor: end-to-end meld
//! compile time (the full Algorithm 1 fixpoint with cleanups) on the
//! synthetic fig. 8 kernel sweep, cached-analysis pipeline vs the
//! pre-refactor driver kept in `darm_melding::reference`.
//!
//! The acceptance bound is **no slower than the pre-refactor driver**
//! (asserted with a 5% timer-noise allowance); the aspirational target of
//! ≥1.3× from analysis reuse is printed against the measured ratio. The
//! honest finding, phase-profiled: most per-iteration analysis recompute
//! in Algorithm 1 is *semantically required* (every meld changes the CFG,
//! invalidating dominators and divergence), so caching alone buys the few
//! percent the no-op queries cost — the headroom to 1.3× needs
//! incremental analysis updates and dirty-block cleanup passes (ROADMAP
//! open items seeded by this refactor).
//!
//! `cargo bench --bench meld_pipeline` — measure.
//! `cargo bench --bench meld_pipeline -- --test` — smoke mode: one
//! pipeline and one reference meld per case, cross-checked bit-identical,
//! untimed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darm_bench::{fig8_cases, geomean};
use darm_melding::{meld_function, meld_function_reference, MeldConfig};
use std::time::Instant;

/// Times `f` over enough repetitions to fill ~100 ms, returning seconds per
/// call.
fn time_per_call(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-6);
    let reps = ((0.1 / once).ceil() as usize).clamp(3, 1000);
    let t1 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t1.elapsed().as_secs_f64() / reps as f64
}

fn bench(c: &mut Criterion) {
    let test_mode = c.is_test_mode();
    let cases = fig8_cases();
    let config = MeldConfig::default();

    // Correctness first, in both modes: the pipeline must be bit-identical
    // to the reference on the whole sweep before its time means anything.
    for case in &cases {
        let mut a = case.func.clone();
        meld_function(&mut a, &config);
        let mut b = case.func.clone();
        meld_function_reference(&mut b, &config);
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "{}: drivers disagree",
            case.name
        );
    }
    if test_mode {
        println!("meld_pipeline: smoke mode — pipeline and reference drivers agree on fig8");
        return;
    }

    // Criterion-style timings per synthetic kind at block size 32.
    let mut group = c.benchmark_group("meld_pipeline");
    group.sample_size(10);
    for case in cases.iter().filter(|c| c.name.ends_with("-32")) {
        group.bench_with_input(BenchmarkId::new("pipeline", &case.name), case, |b, case| {
            b.iter(|| {
                let mut f = case.func.clone();
                meld_function(&mut f, &config)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("reference", &case.name),
            case,
            |b, case| {
                b.iter(|| {
                    let mut f = case.func.clone();
                    meld_function_reference(&mut f, &config)
                })
            },
        );
    }
    group.finish();

    // Summary over the full sweep (all kinds × all block sizes), with the
    // two drivers' measurements interleaved across rounds so clock drift
    // and frequency scaling cancel instead of biasing one side.
    const ROUNDS: usize = 4;
    let mut t_pipe = vec![0.0f64; cases.len()];
    let mut t_ref = vec![0.0f64; cases.len()];
    for _ in 0..ROUNDS {
        for (i, case) in cases.iter().enumerate() {
            t_pipe[i] += time_per_call(|| {
                let mut f = case.func.clone();
                meld_function(&mut f, &config);
            });
            t_ref[i] += time_per_call(|| {
                let mut f = case.func.clone();
                meld_function_reference(&mut f, &config);
            });
        }
    }
    println!();
    println!("| case | pipeline µs | reference µs | speedup |");
    println!("|---|---|---|---|");
    let mut speedups = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        println!(
            "| {} | {:.1} | {:.1} | {:.2}x |",
            case.name,
            t_pipe[i] / ROUNDS as f64 * 1e6,
            t_ref[i] / ROUNDS as f64 * 1e6,
            t_ref[i] / t_pipe[i]
        );
        speedups.push(t_ref[i] / t_pipe[i]);
    }
    let gm = geomean(speedups.iter().copied());
    println!("| **GM** | | | **{gm:.2}x** |");
    println!("hard bound: no regression (>= 0.95x with timer-noise allowance)");
    println!("target: >= 1.3x from analysis reuse — measured {gm:.2}x; the gap is the");
    println!("semantically-required recompute after CFG surgery (see ROADMAP open items)");
    assert!(
        gm >= 0.95,
        "cached-analysis pipeline regressed vs the pre-refactor driver ({gm:.2}x)"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
