//! Compile-time benchmark for the incremental-analysis rework: end-to-end
//! meld compile time (the full Algorithm 1 fixpoint with cleanups) on the
//! synthetic fig. 8 kernel sweep, the incremental driver vs the frozen
//! PR 2 driver ([`meld_function_pr2`]) — the pass-manager-era architecture
//! with invalidate-everything analysis management, divergence rebuilding
//! its own post-dominator tree, and whole-function round-based cleanup
//! scans, kept verbatim for differential timing.
//!
//! Methodology: the two drivers are timed interleaved (per case, per
//! round) with the *minimum* over rounds as the estimator — scheduler and
//! frequency noise only ever add time — and the harness's `Function::clone`
//! cost measured separately and excluded, so the ratio reflects meld
//! compile time alone.
//!
//! Bounds (asserted in measured mode):
//! * **Hard floor ≥ 1.20×** geomean — raised from 1.15 once the last two
//!   eager analyses went incremental: `Cfg` splices its RPO below the edit
//!   window's DFS-tree anchor instead of rebuilding, and
//!   `DivergenceAnalysis` re-derives only the window's changed closure,
//!   both behind profitability gates and both bit-identical to fresh
//!   recomputes. Together with the reconcile-on-read manager (each cached
//!   entry revalidates against its own journal window at query time) and
//!   the deletion-capable dominator updates, no analysis is
//!   unconditionally dropped anymore. Measured ≈1.25× end-to-end; the
//!   remaining gap to the PR 2 driver is the melding planner/codegen
//!   shared by both (Amdahl) — on the 32–85-instruction paper kernels the
//!   profitability gates rightly choose the plain recompute for most
//!   windows, so the floor stays below the aspirational 1.35×. The phases
//!   this line of work attacked measure on their own as the no-op rescan
//!   figure below (≈1.6×, floor ≥ 1.50×).
//!
//! `cargo bench --bench meld_pipeline` — measure.
//! `cargo bench --bench meld_pipeline -- --test` — smoke mode: bit-identity
//! cross-check of the incremental driver vs the frozen PR 2 driver vs the
//! pre-pipeline reference oracle on every fig8 kernel × {DARM, BF}, a
//! reduced-iteration no-regression guard (geomean ≥ 1.0× with a 5%
//! timer-noise allowance), an in-place-update check (deletion windows
//! patch dominator trees, shape windows splice the `Cfg`, and divergence
//! reconciles over changed closures — all three counters must be nonzero
//! on the sweep), and a smoke-sized rescan ratio — the CI gate records
//! `meld_pipeline/smoke_vs_pr2` and `meld_pipeline/rescan_vs_pr2` for the
//! perf-gate trajectory. With `DARM_BENCH_JSON=path` both modes record
//! their ratios (see `darm_bench::perfjson`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darm_bench::{fig8_cases, fig9_cases, geomean, perfjson};
use darm_kernels::BenchCase;
use darm_melding::{
    meld_function, meld_function_pr2, meld_function_reference, run_meld_pipeline, MeldConfig,
};
use darm_pipeline::PipelineOptions;
use std::time::Instant;

/// Times `f` over enough repetitions to fill ~20 ms, returning seconds per
/// call.
fn time_per_call(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-6);
    let reps = ((0.02 / once).ceil() as usize).clamp(3, 500);
    let t1 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t1.elapsed().as_secs_f64() / reps as f64
}

/// Interleaved min-estimator comparison of the incremental driver vs the
/// frozen PR 2 driver over `cases`, clone cost excluded. Returns per-case
/// speedups.
fn compare(cases: &[BenchCase], config: &MeldConfig, rounds: usize) -> Vec<f64> {
    let big = f64::MAX;
    let mut t_inc = vec![big; cases.len()];
    let mut t_pr2 = vec![big; cases.len()];
    let mut t_clone = vec![big; cases.len()];
    for _ in 0..rounds {
        for (i, case) in cases.iter().enumerate() {
            let f = &case.func;
            t_clone[i] = t_clone[i].min(time_per_call(|| {
                std::hint::black_box(f.clone());
            }));
            t_inc[i] = t_inc[i].min(time_per_call(|| {
                let mut g = f.clone();
                meld_function(&mut g, config);
            }));
            t_pr2[i] = t_pr2[i].min(time_per_call(|| {
                let mut g = f.clone();
                meld_function_pr2(&mut g, config);
            }));
        }
    }
    (0..cases.len())
        .map(|i| (t_pr2[i] - t_clone[i]) / (t_inc[i] - t_clone[i]))
        .collect()
}

/// Per-case no-op-rescan speedups vs the PR 2 driver: re-meld the
/// already-melded function (analyses + detection + zero melds), clone
/// cost excluded.
fn rescan_ratios(cases: &[BenchCase], config: &MeldConfig, rounds: usize) -> Vec<f64> {
    let mut ratios = Vec::new();
    for case in cases {
        let mut melded = case.func.clone();
        meld_function(&mut melded, config);
        let mut t_inc = f64::MAX;
        let mut t_pr2 = f64::MAX;
        let mut t_clone = f64::MAX;
        for _ in 0..rounds {
            t_clone = t_clone.min(time_per_call(|| {
                std::hint::black_box(melded.clone());
            }));
            t_inc = t_inc.min(time_per_call(|| {
                let mut g = melded.clone();
                meld_function(&mut g, config);
            }));
            t_pr2 = t_pr2.min(time_per_call(|| {
                let mut g = melded.clone();
                meld_function_pr2(&mut g, config);
            }));
        }
        ratios.push((t_pr2 - t_clone) / (t_inc - t_clone));
    }
    ratios
}

fn bench(c: &mut Criterion) {
    let test_mode = c.is_test_mode();
    let cases = fig8_cases();
    let config = MeldConfig::default();

    // Correctness first, in both modes: the incremental driver, the frozen
    // PR 2 driver and the pre-pipeline reference oracle must be
    // bit-identical (printed IR and statistics) on the whole sweep, under
    // both DARM and branch fusion, before any time means anything.
    for case in &cases {
        for cfg in [MeldConfig::default(), MeldConfig::branch_fusion()] {
            let mut a = case.func.clone();
            let sa = meld_function(&mut a, &cfg);
            let mut b = case.func.clone();
            let sb = meld_function_pr2(&mut b, &cfg);
            let mut r = case.func.clone();
            let sr = meld_function_reference(&mut r, &cfg);
            assert_eq!(
                a.to_string(),
                b.to_string(),
                "{}: incremental and PR 2 drivers disagree",
                case.name
            );
            assert_eq!(
                a.to_string(),
                r.to_string(),
                "{}: incremental and reference drivers disagree",
                case.name
            );
            assert_eq!(
                format!("{sa:?}"),
                format!("{sb:?}"),
                "{}: statistics disagree (pr2)",
                case.name
            );
            assert_eq!(
                format!("{sa:?}"),
                format!("{sr:?}"),
                "{}: statistics disagree (reference)",
                case.name
            );
        }
    }

    // The in-place machinery must actually fire somewhere on the sweep —
    // the `--time-passes` counters the incremental work is measured by:
    // deletion windows patching dominator trees, shape windows splicing
    // the Cfg RPO, and divergence reconciling over changed closures. The
    // sweep includes the fig. 9 real kernels: the fig. 8 synthetics meld
    // at the function entry, where the RPO splice correctly declines
    // (anchor covers everything), so the Cfg counter only fires on
    // kernels whose melds sit below the entry.
    let (mut deletion_updates, mut cfg_updates, mut divergence_updates) = (0usize, 0usize, 0usize);
    for case in cases.iter().chain(&fig9_cases()) {
        let mut f = case.func.clone();
        let out = run_meld_pipeline(
            &mut f,
            &config,
            PipelineOptions {
                time_passes: true,
                ..PipelineOptions::default()
            },
        )
        .expect("meld pipeline runs");
        for p in &out.report.passes {
            deletion_updates += p.analysis.in_place_deletion_updates;
            cfg_updates += p.analysis.in_place_cfg_updates;
            divergence_updates += p.analysis.in_place_divergence_updates;
        }
    }
    println!(
        "in-place updates across the fig8 sweep: {deletion_updates} deletion-batch tree, \
         {cfg_updates} cfg splice, {divergence_updates} divergence closure"
    );
    assert!(
        deletion_updates > 0,
        "no deletion-containing window updated a dominator tree in place"
    );
    assert!(cfg_updates > 0, "no shape window spliced the Cfg in place");
    assert!(
        divergence_updates > 0,
        "no window reconciled DivergenceAnalysis in place"
    );

    if test_mode {
        // Smoke-sized no-regression guard: the incremental driver must not
        // be slower than the PR 2 driver (5% timer-noise allowance). The
        // committed floors live in BENCH_meld.json; the perf gate compares
        // the recorded ratios against them.
        let speedups = compare(&cases, &config, 2);
        let gm = geomean(speedups.iter().copied());
        println!("meld_pipeline guard: smoke geomean {gm:.3}x vs PR 2 driver (bound: >= 0.95)");
        perfjson::record("meld_pipeline/smoke_vs_pr2", gm);
        assert!(
            gm >= 0.95,
            "incremental driver regressed below the PR 2 driver ({gm:.3}x)"
        );
        // Smoke-sized rescan ratio (the attacked phase, isolated): a no-op
        // rescan of the already-melded function is almost pure analysis
        // recompute, which the incremental stack now reconciles in place.
        let gm_rescan = geomean(rescan_ratios(&cases, &config, 2));
        println!("meld_pipeline guard: smoke rescan geomean {gm_rescan:.3}x vs PR 2 driver");
        perfjson::record("meld_pipeline/rescan_vs_pr2", gm_rescan);
        return;
    }

    // Criterion-style timings per synthetic kind at block size 32.
    let mut group = c.benchmark_group("meld_pipeline");
    group.sample_size(10);
    for case in cases.iter().filter(|c| c.name.ends_with("-32")) {
        group.bench_with_input(
            BenchmarkId::new("incremental", &case.name),
            case,
            |b, case| {
                b.iter(|| {
                    let mut f = case.func.clone();
                    meld_function(&mut f, &config)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("pr2", &case.name), case, |b, case| {
            b.iter(|| {
                let mut f = case.func.clone();
                meld_function_pr2(&mut f, &config)
            })
        });
    }
    group.finish();

    // Summary over the full sweep.
    let speedups = compare(&cases, &config, 6);
    println!();
    println!("| case | speedup vs PR 2 driver |");
    println!("|---|---|");
    for (case, s) in cases.iter().zip(&speedups) {
        println!("| {} | {s:.2}x |", case.name);
    }
    let gm = geomean(speedups.iter().copied());
    println!("| **GM** | **{gm:.2}x** |");

    // The phase this rework attacked, isolated: a full no-op rescan on the
    // already-melded function (analyses + detection + zero melds).
    let gm_rescan = geomean(rescan_ratios(&cases, &config, 4));
    println!("no-op rescan geomean (the attacked phase): {gm_rescan:.2}x");
    perfjson::record("measured/meld_pipeline/end_to_end_vs_pr2", gm);
    perfjson::record("measured/meld_pipeline/rescan_vs_pr2", gm_rescan);
    println!("hard floor: >= 1.20x end-to-end geomean, >= 1.50x on the rescan phase");
    println!("measured {gm:.2}x end-to-end; the remainder is the melding");
    println!("planner/codegen shared by both drivers (Amdahl), not recompute");
    assert!(
        gm >= 1.20,
        "incremental driver fell below the hard floor vs the PR 2 driver ({gm:.2}x)"
    );
    assert!(
        gm_rescan >= 1.50,
        "incremental rescan phase fell below its bound ({gm_rescan:.2}x)"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
