//! Criterion bench behind Fig. 8: wall-clock simulation time of the
//! synthetic kernels, baseline vs DARM vs BF. Simulated-cycle speedups (the
//! paper's metric) are printed by `--bin fig8`; wall time of the simulator
//! tracks issued warp instructions and therefore moves the same way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darm_kernels::synthetic::{build_case, SyntheticKind};
use darm_melding::{meld_function, MeldConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_synthetic");
    group.sample_size(10);
    for kind in [SyntheticKind::Sb1, SyntheticKind::Sb2R, SyntheticKind::Sb4] {
        let case = build_case(kind, 64);
        let mut darm_fn = case.func.clone();
        meld_function(&mut darm_fn, &MeldConfig::default());
        let mut bf_fn = case.func.clone();
        meld_function(&mut bf_fn, &MeldConfig::branch_fusion());
        group.bench_with_input(
            BenchmarkId::new("baseline", kind.name()),
            &case,
            |b, case| b.iter(|| case.run_checked(&case.func)),
        );
        group.bench_with_input(BenchmarkId::new("darm", kind.name()), &case, |b, case| {
            b.iter(|| case.run_checked(&darm_fn))
        });
        group.bench_with_input(BenchmarkId::new("bf", kind.name()), &case, |b, case| {
            b.iter(|| case.run_checked(&bf_fn))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
