//! Criterion bench behind Table II: compile-time cost of the DARM pass per
//! benchmark kernel (the paper reports ~1-5% overhead on total device
//! compilation; here we isolate pass runtime).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use darm_melding::{meld_function, MeldConfig};
use darm_transforms::{run_dce, simplify_cfg};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_compile_time");
    for case in darm_bench::counter_cases() {
        group.bench_with_input(BenchmarkId::new("o3", &case.name), &case, |b, case| {
            b.iter(|| {
                let mut f = case.func.clone();
                simplify_cfg(&mut f);
                run_dce(&mut f);
                f
            })
        });
        group.bench_with_input(BenchmarkId::new("o3+darm", &case.name), &case, |b, case| {
            b.iter(|| {
                let mut f = case.func.clone();
                simplify_cfg(&mut f);
                run_dce(&mut f);
                meld_function(&mut f, &MeldConfig::default());
                f
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
