//! `darm serve` replay benchmark: the fig. 8 + fig. 9 kernel suite as a
//! compile-request stream with mutation churn, replayed against one
//! persistent engine — cold (empty cache) vs warm (primed cache).
//!
//! The stream is three rounds over every suite kernel; each round a
//! rotating quarter of the kernels "mutates" (new content hash, here a
//! version-suffixed name), the rest replay unchanged — the incremental
//! rebuild shape the serve cache exists for. The cold pass replays the
//! stream against a fresh engine (every unique content compiles once);
//! the warm pass replays the *same* stream against the now-primed
//! engine (every request hits). The gated metric is the wall-clock
//! ratio cold/warm — how much a warm daemon outruns a cold one.
//!
//! A determinism guard runs in both modes: every warm response must be
//! byte-identical to its cold counterpart (modulo the `cached` marker),
//! which exercises the sorted-key JSON rendering end to end.
//!
//! `cargo bench --bench serve_replay` — interleaved min-estimator
//! measurement. `cargo bench --bench serve_replay -- --test` — smoke
//! mode (the CI gate): one cold and one warm replay plus the guards.
//! With `DARM_BENCH_JSON=path` both modes record `serve/warm_vs_cold`.

use criterion::{criterion_group, criterion_main, Criterion};
use darm_bench::{fig8_cases, fig9_cases, perfjson};
use darm_serve::proto::CompileRequest;
use darm_serve::{Engine, Response, ServeConfig};
use std::sync::mpsc;
use std::time::Instant;

/// The replayed request stream: `(id, module text)` per request.
fn build_stream() -> Vec<(u64, String)> {
    let mut cases = fig8_cases();
    cases.extend(fig9_cases());
    let mut stream = Vec::new();
    let mut id = 0u64;
    for round in 0..3usize {
        for (i, case) in cases.iter().enumerate() {
            // Rotating churn: in rounds 1 and 2 a quarter of the
            // kernels carries fresh content (a version-suffixed name
            // changes the content hash exactly like an edit would).
            let version = if round > 0 && (i + round) % 4 == 0 {
                round
            } else {
                0
            };
            let mut func = case.func.clone();
            func.set_name(&format!("{}_{i}_v{version}", func.name()));
            stream.push((id, func.to_string()));
            id += 1;
        }
    }
    stream
}

/// Replay the stream sequentially; returns the wall seconds and every
/// response rendered to bytes with the cache marker normalized.
fn replay(engine: &Engine, stream: &[(u64, String)]) -> (f64, Vec<String>) {
    let mut rendered = Vec::with_capacity(stream.len());
    let t0 = Instant::now();
    for (id, ir) in stream {
        let (tx, rx) = mpsc::channel();
        engine.submit(
            CompileRequest {
                id: *id,
                ir: ir.clone(),
                spec: None,
                timeout_ms: None,
                fuel: None,
            },
            Box::new(move |resp| {
                let _ = tx.send(resp);
            }),
        );
        let resp = rx.recv().expect("serve answered");
        assert!(
            matches!(resp, Response::Ok { .. }),
            "suite kernel failed to compile: {resp:?}"
        );
        rendered.push(
            String::from_utf8(resp.to_bytes())
                .unwrap()
                .replace("\"cached\":true", "\"cached\":false"),
        );
    }
    (t0.elapsed().as_secs_f64(), rendered)
}

fn cold_and_warm(stream: &[(u64, String)]) -> (f64, f64) {
    let engine = Engine::new(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let (cold_wall, cold_responses) = replay(&engine, stream);
    let (warm_wall, warm_responses) = replay(&engine, stream);
    assert_eq!(
        cold_responses, warm_responses,
        "warm replay diverged from cold — responses must be bit-identical"
    );
    engine.shutdown();
    assert_eq!(engine.poisoned_locks(), 0);
    (cold_wall, warm_wall)
}

fn bench(c: &mut Criterion) {
    let stream = build_stream();

    if c.is_test_mode() {
        let (cold, warm) = cold_and_warm(&stream);
        let ratio = cold / warm;
        println!(
            "serve_replay smoke: {} requests, cold {:.1} ms, warm {:.1} ms — warm {:.1}x faster",
            stream.len(),
            cold * 1e3,
            warm * 1e3,
            ratio
        );
        perfjson::record("serve/warm_vs_cold", ratio);
        return;
    }

    // Interleaved min-estimator: each round spins up a fresh engine for
    // the cold pass and reuses it primed for the warm pass.
    let rounds = 5;
    let (mut cold_min, mut warm_min) = (f64::MAX, f64::MAX);
    for _ in 0..rounds {
        let (cold, warm) = cold_and_warm(&stream);
        cold_min = cold_min.min(cold);
        warm_min = warm_min.min(warm);
    }
    let ratio = cold_min / warm_min;
    println!();
    println!(
        "serve_replay: {} requests (fig8+fig9 × 3 rounds, 25% churn)",
        stream.len()
    );
    println!("| phase | wall (ms) |");
    println!("|---|---|");
    println!("| cold | {:.3} |", cold_min * 1e3);
    println!("| warm | {:.3} |", warm_min * 1e3);
    println!("warm-vs-cold throughput: {ratio:.1}x");
    perfjson::record("serve/warm_vs_cold", ratio);
}

criterion_group!(benches, bench);
criterion_main!(benches);
