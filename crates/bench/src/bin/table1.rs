//! Regenerates Table I: the capability matrix of tail merging vs branch
//! fusion vs DARM.
fn main() {
    print!("{}", darm_bench::render_capability_matrix());
}
