//! Perf-gate: diffs a freshly generated bench trajectory file against the
//! committed baseline and fails the build on regressions.
//!
//! ```text
//! perf_gate check BENCH_meld.json bench-new.json [--tolerance 0.05]
//! ```
//!
//! The candidate file is produced by running the perf benches in smoke
//! mode with `DARM_BENCH_JSON` pointing at it:
//!
//! ```text
//! DARM_BENCH_JSON=bench-new.json cargo bench -p darm-bench --bench meld_pipeline -- --test
//! DARM_BENCH_JSON=bench-new.json cargo bench -p darm-bench --bench module_batch -- --test
//! ```
//!
//! Every metric is a "higher is better" speedup ratio; a candidate more
//! than the tolerance below its committed baseline fails (exit code 1), as
//! does a metric that vanished from the candidate. New metrics pass and
//! start their trajectory — commit the regenerated file to record them.

use darm_bench::perfjson::{self, Verdict};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: perf_gate check <baseline.json> <candidate.json> [--tolerance FRAC]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    if it.next().map(String::as_str) != Some("check") {
        return usage();
    }
    let (Some(baseline_path), Some(candidate_path)) = (it.next(), it.next()) else {
        return usage();
    };
    let mut tolerance = 0.05;
    while let Some(flag) = it.next() {
        match (flag.as_str(), it.next()) {
            ("--tolerance", Some(v)) => match v.parse() {
                Ok(t) => tolerance = t,
                Err(e) => {
                    eprintln!("bad --tolerance `{v}`: {e}");
                    return ExitCode::from(2);
                }
            },
            _ => return usage(),
        }
    }
    let read = |p: &String| {
        perfjson::read(Path::new(p)).unwrap_or_else(|e| {
            eprintln!("{p}: {e}");
            std::process::exit(2);
        })
    };
    let mut baseline = read(baseline_path);
    let candidate = read(candidate_path);
    // `measured/…` keys come from full (non-smoke) bench runs and are
    // informational: CI's smoke-mode candidate never produces them, so
    // gating on them would fail every run after a local measured-mode
    // regeneration of the baseline.
    baseline.retain(|(k, _)| !k.starts_with("measured/"));
    // The parallel-speedup metric measures two workers against one; on a
    // single-core runner the workers time-slice one CPU and the ratio is
    // noise, not a regression signal. Report it informationally instead of
    // gating on it.
    let single_core = std::thread::available_parallelism()
        .map(|n| n.get() < 2)
        .unwrap_or(true);
    if single_core {
        let parallel: Vec<String> = baseline
            .iter()
            .map(|(k, _)| k.clone())
            .filter(|k| k.ends_with("jobs2_vs_serial"))
            .collect();
        if !parallel.is_empty() {
            baseline.retain(|(k, _)| !k.ends_with("jobs2_vs_serial"));
            println!(
                "note: < 2 CPUs available; parallel-speedup metric(s) not gated: {}",
                parallel.join(", ")
            );
        }
    }
    let verdicts = perfjson::compare(&baseline, &candidate, tolerance);
    let mut failed = false;
    println!("| metric | baseline | candidate | verdict |");
    println!("|---|---|---|---|");
    for (metric, verdict) in &verdicts {
        let base = baseline.iter().find(|(k, _)| k == metric).map(|(_, v)| *v);
        let cand = candidate.iter().find(|(k, _)| k == metric).map(|(_, v)| *v);
        let fmt = |v: Option<f64>| v.map_or("—".to_string(), |v| format!("{v:.3}"));
        let label = match verdict {
            Verdict::Ok { ratio } => format!("ok ({:+.1}%)", (ratio - 1.0) * 100.0),
            Verdict::Regressed { ratio } => {
                failed = true;
                format!("REGRESSED ({:+.1}%)", (ratio - 1.0) * 100.0)
            }
            Verdict::Missing => {
                failed = true;
                "MISSING".to_string()
            }
            Verdict::New => "new".to_string(),
        };
        println!("| {metric} | {} | {} | {label} |", fmt(base), fmt(cand));
    }
    if failed {
        eprintln!(
            "perf gate FAILED: candidate fell more than {:.0}% below the committed baseline \
             (or dropped a metric). If the regression is intended, regenerate and commit \
             {baseline_path}.",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "perf gate passed ({} metric(s), tolerance {:.0}%)",
        verdicts.len(),
        tolerance * 100.0
    );
    ExitCode::SUCCESS
}
