//! Regenerates Fig. 9: real-world benchmark speedups across block sizes.
fn main() {
    let rows: Vec<_> = darm_bench::fig9_cases()
        .iter()
        .map(darm_bench::run_case)
        .collect();
    print!(
        "{}",
        darm_bench::render_speedups("Figure 9 — real-world benchmark speedups", &rows)
    );
}
