//! Regenerates Fig. 9: real-world benchmark speedups across block sizes.
//! All kernels are melded in one module batch on all cores.
fn main() {
    let rows = darm_bench::run_cases(&darm_bench::fig9_cases(), 0);
    print!(
        "{}",
        darm_bench::render_speedups("Figure 9 — real-world benchmark speedups", &rows)
    );
}
