//! Regenerates Fig. 9: real-world benchmark speedups across block sizes.
//! All kernels are melded in one module batch on all cores.
//!
//! With `DARM_BENCH_JSON` set, the sweep's DARM/BF geomean speedups are
//! recorded for the perf gate — simulated-cycle ratios, so the values are
//! deterministic and the committed baselines are exact.

use darm_bench::{fig9_cases, geomean, perfjson, render_speedups, run_cases, VariantStats};

fn main() {
    let rows = run_cases(&fig9_cases(), 0);
    perfjson::record(
        "fig9/darm_geomean",
        geomean(rows.iter().map(VariantStats::darm_speedup)),
    );
    perfjson::record(
        "fig9/bf_geomean",
        geomean(rows.iter().map(VariantStats::bf_speedup)),
    );
    // Geomean ratio of *simulated* cycles (timing model) — the headline
    // number the heuristic warp-cycle ratio above approximates.
    perfjson::record(
        "fig9/cycles_darm_vs_baseline",
        geomean(rows.iter().map(VariantStats::darm_cycle_speedup)),
    );
    print!(
        "{}",
        render_speedups("Figure 9 — real-world benchmark speedups", &rows)
    );
}
