//! Regenerates Fig. 8: synthetic benchmark speedups (SB1–SB4 and -R
//! variants across block sizes), DARM and BF over the baseline. All
//! kernels are melded in one module batch on all cores.
//!
//! With `DARM_BENCH_JSON` set, the sweep's DARM/BF geomean speedups are
//! recorded for the perf gate — simulated-cycle ratios, so the values are
//! deterministic and the committed baselines are exact.

use darm_bench::{fig8_cases, geomean, perfjson, render_speedups, run_cases, VariantStats};

fn main() {
    let rows = run_cases(&fig8_cases(), 0);
    perfjson::record(
        "fig8/darm_geomean",
        geomean(rows.iter().map(VariantStats::darm_speedup)),
    );
    perfjson::record(
        "fig8/bf_geomean",
        geomean(rows.iter().map(VariantStats::bf_speedup)),
    );
    print!(
        "{}",
        render_speedups("Figure 8 — synthetic benchmark speedups", &rows)
    );
}
