//! Regenerates Fig. 8: synthetic benchmark speedups (SB1–SB4 and -R
//! variants across block sizes), DARM and BF over the baseline. All
//! kernels are melded in one module batch on all cores.
fn main() {
    let rows = darm_bench::run_cases(&darm_bench::fig8_cases(), 0);
    print!(
        "{}",
        darm_bench::render_speedups("Figure 8 — synthetic benchmark speedups", &rows)
    );
}
