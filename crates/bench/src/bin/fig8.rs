//! Regenerates Fig. 8: synthetic benchmark speedups (SB1–SB4 and -R
//! variants across block sizes), DARM and BF over the baseline.
fn main() {
    let rows: Vec<_> = darm_bench::fig8_cases()
        .iter()
        .map(darm_bench::run_case)
        .collect();
    print!(
        "{}",
        darm_bench::render_speedups("Figure 8 — synthetic benchmark speedups", &rows)
    );
}
