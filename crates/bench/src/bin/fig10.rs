//! Regenerates Fig. 10: ALU utilization of O3 / DARM / BF.
fn main() {
    let rows = darm_bench::run_cases(&darm_bench::counter_cases(), 0);
    print!("{}", darm_bench::render_alu_utilization(&rows));
}
