//! Regenerates Fig. 10: ALU utilization of O3 / DARM / BF.
fn main() {
    let rows: Vec<_> = darm_bench::counter_cases()
        .iter()
        .map(darm_bench::run_case)
        .collect();
    print!("{}", darm_bench::render_alu_utilization(&rows));
}
