//! Regenerates Table II: compile-time overhead of the DARM pass.
fn main() {
    print!("{}", darm_bench::render_compile_times());
}
