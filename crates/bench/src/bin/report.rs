//! Prints every table and figure of the paper in one run — the source of
//! EXPERIMENTS.md.
fn main() {
    println!("# DARM reproduction — measured results\n");
    println!("Produced by `cargo run --release -p darm-bench --bin report`.\n");
    println!("{}", darm_bench::render_capability_matrix());
    let fig8 = darm_bench::run_cases(&darm_bench::fig8_cases(), 0);
    println!(
        "{}",
        darm_bench::render_speedups("Figure 8 — synthetic benchmark speedups", &fig8)
    );
    let fig9 = darm_bench::run_cases(&darm_bench::fig9_cases(), 0);
    println!(
        "{}",
        darm_bench::render_speedups("Figure 9 — real-world benchmark speedups", &fig9)
    );
    let counters = darm_bench::run_cases(&darm_bench::counter_cases(), 0);
    println!("{}", darm_bench::render_alu_utilization(&counters));
    println!("{}", darm_bench::render_memory_counters(&counters));
    println!(
        "{}",
        darm_bench::render_threshold_sweep(&[0.1, 0.2, 0.3, 0.4, 0.5])
    );
    print!("{}", darm_bench::render_compile_times());
}
