//! Regenerates Fig. 12: melding-profitability threshold sensitivity.
fn main() {
    print!(
        "{}",
        darm_bench::render_threshold_sweep(&[0.1, 0.2, 0.3, 0.4, 0.5])
    );
}
