//! Regenerates Fig. 11: normalized global/shared memory instruction counts.
fn main() {
    let rows = darm_bench::run_cases(&darm_bench::counter_cases(), 0);
    print!("{}", darm_bench::render_memory_counters(&rows));
}
