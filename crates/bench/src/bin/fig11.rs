//! Regenerates Fig. 11: normalized global/shared memory instruction counts.
fn main() {
    let rows: Vec<_> = darm_bench::counter_cases()
        .iter()
        .map(darm_bench::run_case)
        .collect();
    print!("{}", darm_bench::render_memory_counters(&rows));
}
