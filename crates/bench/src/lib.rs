#![warn(missing_docs)]

//! # darm-bench
//!
//! The experiment harness: regenerates every table and figure of the DARM
//! paper's evaluation (§VI) on the SIMT simulator. Each `fig*`/`table*`
//! binary prints one artifact; the `report` binary prints them all (and is
//! the source of EXPERIMENTS.md).
//!
//! Correctness is enforced throughout: every transformed kernel variant is
//! checked against the CPU reference before its numbers are reported.

pub mod perfjson;

use darm_ir::Module;
use darm_kernels::synthetic::SyntheticKind;
use darm_kernels::{bitonic, dct, lud, mergesort, nqueens, pcm, srad, BenchCase};
use darm_melding::{meld_function, MeldConfig, MeldStats};
use darm_pipeline::{ModuleOptions, ModulePassManager, PipelineError, PipelineOptions};
use darm_simt::{GpuConfig, KernelStats, PreparedKernel, TimingConfig};

/// Counters for the three variants of one benchmark case.
#[derive(Debug, Clone)]
pub struct VariantStats {
    /// Case display name (e.g. `BIT64`).
    pub name: String,
    /// Hand-written baseline (the paper's `-O3`).
    pub baseline: KernelStats,
    /// After the DARM pass.
    pub darm: KernelStats,
    /// After the branch-fusion baseline pass.
    pub bf: KernelStats,
    /// DARM melding statistics (subgraphs, replications, ...).
    pub meld: darm_melding::MeldStats,
}

impl VariantStats {
    /// DARM speedup over the baseline (ratio of heuristic warp cycles).
    pub fn darm_speedup(&self) -> f64 {
        self.baseline.cycles as f64 / self.darm.cycles as f64
    }

    /// Branch-fusion speedup over the baseline.
    pub fn bf_speedup(&self) -> f64 {
        self.baseline.cycles as f64 / self.bf.cycles as f64
    }

    /// DARM speedup in *simulated* cycles from the cycle-level timing
    /// model (issue slots + scoreboard stalls + memory occupancy).
    /// `1.0` when the rows were collected without timing enabled.
    pub fn darm_cycle_speedup(&self) -> f64 {
        if self.darm.sim_cycles == 0 {
            1.0
        } else {
            self.baseline.sim_cycles as f64 / self.darm.sim_cycles as f64
        }
    }

    /// Branch-fusion speedup in simulated cycles.
    pub fn bf_cycle_speedup(&self) -> f64 {
        if self.bf.sim_cycles == 0 {
            1.0
        } else {
            self.baseline.sim_cycles as f64 / self.bf.sim_cycles as f64
        }
    }
}

/// The [`GpuConfig`] the harness runs figure cases under: defaults plus
/// the cycle-level timing observer, so every table can report simulated
/// cycles next to the architectural counters.
pub fn timed_gpu_config() -> GpuConfig {
    GpuConfig {
        timing: TimingConfig::on(),
        ..GpuConfig::default()
    }
}

/// The three kernel variants of a case, decoded once each so repeated
/// launches (criterion samples, threshold sweeps, counter reruns) skip the
/// per-launch decode and analysis cost.
#[derive(Debug, Clone)]
pub struct PreparedVariants {
    /// Hand-written baseline, pre-decoded.
    pub baseline: PreparedKernel,
    /// DARM-melded variant, pre-decoded.
    pub darm: PreparedKernel,
    /// Branch-fusion variant, pre-decoded.
    pub bf: PreparedKernel,
    /// DARM melding statistics for the `darm` variant.
    pub meld: darm_melding::MeldStats,
}

/// Melds and decodes the three variants of `case` once, for reuse across
/// launches. Variant construction runs through the module driver
/// ([`prepare_suite`] with a one-kernel suite); use
/// [`prepare_variants_checked`] for pipeline options (e.g. SSA
/// verification between passes).
pub fn prepare_variants(case: &BenchCase, config: &MeldConfig) -> PreparedVariants {
    prepare_variants_checked(case, config, PipelineOptions::default())
        .unwrap_or_else(|e| panic!("{}: meld pipeline failed: {e}", case.name))
}

/// [`prepare_variants`] with explicit pipeline options.
///
/// # Errors
///
/// Propagates pipeline failures (with `verify_each`, SSA violations
/// between passes).
pub fn prepare_variants_checked(
    case: &BenchCase,
    config: &MeldConfig,
    options: PipelineOptions,
) -> Result<PreparedVariants, PipelineError> {
    let mut variants = prepare_suite(std::slice::from_ref(case), config, options, 1)?;
    Ok(variants.pop().expect("one case in, one variant set out"))
}

/// Collects every case's kernel into one [`Module`], with names
/// uniquified by case index (block-size sweeps reuse kernel names). The
/// one module-construction path shared by [`prepare_suite`], the
/// threshold sweep and the `module_batch` bench.
pub fn suite_module(name: &str, cases: &[BenchCase]) -> Module {
    let mut m = Module::new(name);
    for (i, case) in cases.iter().enumerate() {
        let mut f = case.func.clone();
        f.set_name(&format!("{}.{i}", f.name()));
        m.add_function(f)
            .expect("index-suffixed kernel names are unique");
    }
    m
}

/// Melds a whole suite in two module batches — all DARM variants, then all
/// BF variants — through one [`ModulePassManager`] each, and decodes every
/// variant. `jobs` is the worker count per batch (`0` = all cores, `1` =
/// serial); the result is bit-identical regardless.
///
/// # Errors
///
/// Propagates the first (in suite order) pipeline failure.
pub fn prepare_suite(
    cases: &[BenchCase],
    config: &MeldConfig,
    options: PipelineOptions,
    jobs: usize,
) -> Result<Vec<PreparedVariants>, PipelineError> {
    let module_options = ModuleOptions {
        pipeline: options,
        jobs,
        ..ModuleOptions::default()
    };
    let registry = darm_melding::registry(config);
    let mut darm_module = suite_module("suite-darm", cases);
    let darm_report =
        ModulePassManager::compile(&registry, "meld", module_options.clone(), &mut darm_module)?;
    // The BF baseline always runs the paper's branch-fusion configuration,
    // independent of the DARM config under study.
    let bf_registry = darm_melding::registry(&MeldConfig::branch_fusion());
    let mut bf_module = suite_module("suite-bf", cases);
    ModulePassManager::compile(&bf_registry, "meld", module_options, &mut bf_module)?;

    let darm_fns = darm_module.into_functions();
    let bf_fns = bf_module.into_functions();
    Ok(cases
        .iter()
        .enumerate()
        .map(|(i, case)| {
            // Per-function melding statistics come back through the meld
            // pass's named stat entries in the module report.
            let meld = MeldStats::from_report(&darm_report.functions[i].report);
            PreparedVariants {
                baseline: PreparedKernel::new(&case.func),
                darm: PreparedKernel::new(&darm_fns[i]),
                bf: PreparedKernel::new(&bf_fns[i]),
                meld,
            }
        })
        .collect())
}

/// Runs baseline, DARM and BF variants of a case, checking each against the
/// CPU reference.
pub fn run_case(case: &BenchCase) -> VariantStats {
    run_case_with(case, &MeldConfig::default())
}

/// Same as [`run_case`] with a custom DARM configuration.
pub fn run_case_with(case: &BenchCase, config: &MeldConfig) -> VariantStats {
    let mut rows = run_cases_with(std::slice::from_ref(case), config, 1);
    rows.pop().expect("one case in, one row out")
}

/// Runs a whole suite: melds every kernel in one module batch (see
/// [`prepare_suite`]; `jobs` workers), then executes and checks the three
/// variants of each case against the CPU reference, in suite order.
pub fn run_cases(cases: &[BenchCase], jobs: usize) -> Vec<VariantStats> {
    run_cases_with(cases, &MeldConfig::default(), jobs)
}

/// [`run_cases`] with a custom DARM configuration.
pub fn run_cases_with(cases: &[BenchCase], config: &MeldConfig, jobs: usize) -> Vec<VariantStats> {
    let prepared = prepare_suite(cases, config, PipelineOptions::default(), jobs)
        .unwrap_or_else(|e| panic!("suite meld pipeline failed: {e}"));
    let gpu_config = timed_gpu_config();
    cases
        .iter()
        .zip(prepared)
        .map(|(case, p)| {
            let baseline = case
                .run_checked_compiled_with(&p.baseline, gpu_config)
                .stats;
            let darm = case.run_checked_compiled_with(&p.darm, gpu_config).stats;
            let bf = case.run_checked_compiled_with(&p.bf, gpu_config).stats;
            VariantStats {
                name: case.name.clone(),
                baseline,
                darm,
                bf,
                meld: p.meld,
            }
        })
        .collect()
}

/// Geometric mean. Empty input yields `1.0` (the empty product), so a
/// geomean over a filtered-out row set renders as "no change" rather than
/// `NaN`.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0u32);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// The synthetic benchmark grid of Fig. 8.
pub fn fig8_cases() -> Vec<BenchCase> {
    let mut cases = Vec::new();
    for kind in SyntheticKind::all() {
        for bs in [32, 64, 128, 256] {
            cases.push(darm_kernels::synthetic::build_case(kind, bs));
        }
    }
    cases
}

/// The real-world benchmark grid of Fig. 9 (same block-size sweeps as the
/// paper).
pub fn fig9_cases() -> Vec<BenchCase> {
    let mut cases = Vec::new();
    for bs in [32, 64, 128, 256] {
        cases.push(bitonic::build_case(bs));
    }
    for bs in [32, 64, 128, 256] {
        cases.push(pcm::build_case(bs));
    }
    for bs in [32, 64, 128, 256] {
        cases.push(mergesort::build_case(bs));
    }
    for bs in [16, 32, 64, 128] {
        cases.push(lud::build_case(bs));
    }
    for bs in [64, 96, 128, 256] {
        cases.push(nqueens::build_case(bs));
    }
    for block in [(16, 16), (32, 32)] {
        cases.push(srad::build_case(block));
    }
    for block in [(4, 4), (8, 8), (16, 16)] {
        cases.push(dct::build_case(block));
    }
    cases
}

/// One representative case per real-world benchmark, at the block size the
/// paper focuses its counter analysis on (§VI-C/D: "block sizes where DARM
/// has highest improvement").
pub fn counter_cases() -> Vec<BenchCase> {
    vec![
        bitonic::build_case(64),
        pcm::build_case(64),
        mergesort::build_case(64),
        lud::build_case(32),
        nqueens::build_case(64),
        srad::build_case((16, 16)),
        dct::build_case((8, 8)),
    ]
}

/// Renders a speedup table (Fig. 8 / Fig. 9 style) as markdown-ish text.
/// The first two columns are the paper's heuristic warp-cycle ratio; the
/// "sim-cycle" columns are the cycle-level timing model's verdict on the
/// same runs (IPDOM stack + issue slots + scoreboard + memory occupancy).
pub fn render_speedups(title: &str, rows: &[VariantStats]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n\n"));
    out.push_str(
        "| benchmark | DARM speedup | BF speedup | DARM sim-cycle | BF sim-cycle | melded subgraphs |\n",
    );
    out.push_str("|---|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {} |\n",
            r.name,
            r.darm_speedup(),
            r.bf_speedup(),
            r.darm_cycle_speedup(),
            r.bf_cycle_speedup(),
            r.meld.melded_subgraphs
        ));
    }
    out.push_str(&format!(
        "| **GM** | **{:.3}** | **{:.3}** | **{:.3}** | **{:.3}** | |\n",
        geomean(rows.iter().map(VariantStats::darm_speedup)),
        geomean(rows.iter().map(VariantStats::bf_speedup)),
        geomean(rows.iter().map(VariantStats::darm_cycle_speedup)),
        geomean(rows.iter().map(VariantStats::bf_cycle_speedup)),
    ));
    out
}

/// Fig. 10: ALU utilization (%) for O3 / DARM / BF.
pub fn render_alu_utilization(rows: &[VariantStats]) -> String {
    let mut out = String::new();
    out.push_str("## Figure 10 — ALU utilization (%)\n\n");
    out.push_str("| benchmark | O3 | DARM | BF |\n|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.1} |\n",
            r.name,
            r.baseline.alu_utilization(),
            r.darm.alu_utilization(),
            r.bf.alu_utilization()
        ));
    }
    out
}

/// Fig. 11: memory instruction counters normalized to the baseline.
pub fn render_memory_counters(rows: &[VariantStats]) -> String {
    let norm = |v: u64, base: u64| {
        if base == 0 {
            1.0
        } else {
            v as f64 / base as f64
        }
    };
    let mut out = String::new();
    out.push_str("## Figure 11 — normalized memory instruction counters\n\n");
    out.push_str(
        "| benchmark | vector mem RD+WR (DARM) | vector mem RD+WR (BF) | shared mem (DARM) | shared mem (BF) |\n|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            r.name,
            norm(r.darm.global_mem_insts, r.baseline.global_mem_insts),
            norm(r.bf.global_mem_insts, r.baseline.global_mem_insts),
            norm(r.darm.shared_mem_insts, r.baseline.shared_mem_insts),
            norm(r.bf.shared_mem_insts, r.baseline.shared_mem_insts),
        ));
    }
    out
}

/// Fig. 12: DARM speedup across melding-profitability thresholds.
///
/// Each sweep point is a plain pipeline spec — `meld(threshold=T)` — run
/// over all counter kernels in one module batch, so the ablation needs no
/// Rust-level configuration at all.
pub fn render_threshold_sweep(thresholds: &[f64]) -> String {
    let cases = counter_cases();
    let registry = darm_melding::registry(&MeldConfig::default());
    let baselines: Vec<KernelStats> = cases
        .iter()
        .map(|case| case.run_checked(&case.func).stats)
        .collect();
    // speedups[case][threshold]
    let mut speedups = vec![Vec::with_capacity(thresholds.len()); cases.len()];
    for &t in thresholds {
        let spec = format!("meld(threshold={t})");
        let mut module = suite_module("threshold-sweep", &cases);
        ModulePassManager::compile(
            &registry,
            &spec,
            ModuleOptions::serial(PipelineOptions::default()),
            &mut module,
        )
        .unwrap_or_else(|e| panic!("sweep spec `{spec}`: {e}"));
        for (i, case) in cases.iter().enumerate() {
            let stats = case.run_checked(&module.functions()[i]).stats;
            speedups[i].push(baselines[i].cycles as f64 / stats.cycles as f64);
        }
    }
    let mut out = String::new();
    out.push_str("## Figure 12 — profitability-threshold sensitivity\n\n");
    out.push_str("| benchmark |");
    for t in thresholds {
        out.push_str(&format!(" {t} |"));
    }
    out.push_str("\n|---|");
    for _ in thresholds {
        out.push_str("---|");
    }
    out.push('\n');
    for (case, row) in cases.iter().zip(&speedups) {
        out.push_str(&format!("| {} |", case.name));
        for s in row {
            out.push_str(&format!(" {s:.3} |"));
        }
        out.push('\n');
    }
    out
}

/// Table I: the capability matrix (which technique melds which pattern).
pub fn render_capability_matrix() -> String {
    use darm_melding::tail_merge;
    // A technique "handles" a pattern when it actually reduces simulated
    // cycles (merging empty join blocks does not count).
    let improves = |case: &BenchCase, f: darm_ir::Function| {
        let base = case.run_checked(&case.func).stats.cycles as f64;
        let got = case.run_checked(&f).stats.cycles as f64;
        base / got > 1.02
    };
    let melds = |case: &BenchCase, cfg: &MeldConfig| {
        let mut f = case.func.clone();
        meld_function(&mut f, cfg);
        improves(case, f)
    };
    let tm = |case: &BenchCase| {
        let mut f = case.func.clone();
        tail_merge(&mut f);
        improves(case, f)
    };
    let tick = |b: bool| if b { "yes" } else { "no" };
    let rows: [(&str, BenchCase); 3] = [
        (
            "diamond, identical sequences",
            darm_kernels::synthetic::build_case(SyntheticKind::Sb1, 32),
        ),
        (
            "diamond, distinct sequences",
            darm_kernels::synthetic::build_case(SyntheticKind::Sb1R, 32),
        ),
        (
            "complex control flow",
            darm_kernels::synthetic::build_case(SyntheticKind::Sb2, 32),
        ),
    ];
    let mut out = String::new();
    out.push_str("## Table I — divergence-reduction capability matrix\n\n");
    out.push_str("| control-flow & instruction pattern | tail merging | branch fusion | DARM |\n|---|---|---|---|\n");
    for (label, case) in rows {
        out.push_str(&format!(
            "| {label} | {} | {} | {} |\n",
            tick(tm(&case)),
            tick(melds(&case, &MeldConfig::branch_fusion())),
            tick(melds(&case, &MeldConfig::default())),
        ));
    }
    out
}

/// Table II: compile-time overhead of the DARM pass, normalized against the
/// baseline cleanup pipeline (simplify-cfg + DCE, our `-O3` stand-in).
pub fn render_compile_times() -> String {
    use std::time::Instant;
    let mut out = String::new();
    out.push_str("## Table II — compile time (ms, average of 10 runs)\n\n");
    out.push_str("| benchmark | O3 | O3+DARM | normalized |\n|---|---|---|---|\n");
    for case in counter_cases() {
        let reps = 10;
        let t0 = Instant::now();
        for _ in 0..reps {
            let mut f = case.func.clone();
            darm_transforms::simplify_cfg(&mut f);
            darm_transforms::run_dce(&mut f);
        }
        let base = t0.elapsed().as_secs_f64() / reps as f64;
        let t1 = Instant::now();
        for _ in 0..reps {
            let mut f = case.func.clone();
            darm_transforms::simplify_cfg(&mut f);
            darm_transforms::run_dce(&mut f);
            meld_function(&mut f, &MeldConfig::default());
        }
        let with_darm = t1.elapsed().as_secs_f64() / reps as f64;
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.4} |\n",
            case.name,
            base * 1e3,
            with_darm * 1e3,
            with_darm / base
        ));
    }
    out
}
