//! Machine-readable perf trajectory: a flat `metric name → ratio` JSON
//! file (`BENCH_meld.json` at the repo root) that benches append to and CI
//! regenerates and diffs.
//!
//! The benches call [`record`] for every ratio they measure; with the
//! `DARM_BENCH_JSON` environment variable set to a path the value is
//! upserted there (read-modify-write, so `meld_pipeline` and
//! `module_batch` accumulate into one file), and without it recording is
//! a no-op — plain bench runs stay file-free. The `perf-gate` binary then
//! [`compare`]s a freshly generated file against the committed baseline
//! and fails on regressions beyond the tolerance.
//!
//! The format is a single flat JSON object with float values, written
//! sorted by key:
//!
//! ```json
//! {
//!   "meld_pipeline/smoke_vs_pr2": 1.15,
//!   "module_batch/jobs2_vs_serial": 0.8
//! }
//! ```
//!
//! Two conventions keep the gate honest instead of flaky:
//!
//! * **Committed baselines are floors, not last readings.** Smoke-mode
//!   ratios are min-estimators but still wall-clock on shared runners;
//!   the committed value should sit at (or a little under) the worst
//!   reading observed on a quiet machine, so the ±5% gate trips on real
//!   regressions — the kind that drop a 1.25× driver to 1.05× — rather
//!   than on scheduler noise. Ratcheting the floor *up* after a durable
//!   win is exactly the trajectory the file exists to record. Wall-clock
//!   ratios against a *parallelism* baseline (`jobs2_vs_serial`) are
//!   additionally machine-dependent — a single-core container measures
//!   thread overhead (<1.0) where CI measures real speedup — so their
//!   committed floor asserts "not catastrophically broken anywhere", not
//!   a specific machine's speedup.
//! * **Keys under `measured/` are informational.** Full (non-`--test`)
//!   bench runs record their ratios under that prefix; the `perf-gate`
//!   binary excludes them from gating, so regenerating the committed
//!   file after a measured run cannot poison CI (whose smoke-mode
//!   candidate would otherwise be missing those keys and fail).
//!
//! Hand-rolled (de)serialization — the build is offline and this grammar
//! is three tokens deep; anything the parser does not recognize is a hard
//! error rather than a silently dropped metric.

use std::path::Path;

/// Records `metric = value` into the file named by `DARM_BENCH_JSON`
/// (upserting into existing content), or does nothing when the variable is
/// unset. IO or parse failures panic: a perf-gate run that cannot record
/// its measurement must not pass silently.
pub fn record(metric: &str, value: f64) {
    let Some(path) = std::env::var_os("DARM_BENCH_JSON") else {
        return;
    };
    let path = Path::new(&path);
    let mut entries = if path.exists() {
        read(path).unwrap_or_else(|e| panic!("{}: unreadable bench json: {e}", path.display()))
    } else {
        Vec::new()
    };
    match entries.iter_mut().find(|(k, _)| k == metric) {
        Some((_, v)) => *v = value,
        None => entries.push((metric.to_string(), value)),
    }
    write(path, &entries).unwrap_or_else(|e| panic!("{}: write failed: {e}", path.display()));
    println!(
        "perfjson: recorded {metric} = {value:.4} -> {}",
        path.display()
    );
}

/// Parses a flat `{"name": float, ...}` file.
///
/// # Errors
///
/// IO failure or any token outside the supported grammar.
pub fn read(path: &Path) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse(&text)
}

/// [`read`] on a string, for tests.
///
/// # Errors
///
/// Any token outside the supported grammar.
pub fn parse(text: &str) -> Result<Vec<(String, f64)>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("expected a top-level JSON object")?;
    let mut entries = Vec::new();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue; // trailing comma / empty object
        }
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("bad pair `{pair}`"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key in `{pair}`"))?;
        if key.contains('"') || key.contains('\\') {
            return Err(format!("unsupported escape in key `{key}`"));
        }
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|e| format!("bad value in `{pair}`: {e}"))?;
        entries.push((key.to_string(), value));
    }
    Ok(entries)
}

/// Writes the entries as sorted, pretty-printed JSON.
///
/// # Errors
///
/// IO failure.
pub fn write(path: &Path, entries: &[(String, f64)]) -> Result<(), String> {
    let mut sorted: Vec<&(String, f64)> = entries.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::from("{\n");
    for (i, (k, v)) in sorted.iter().enumerate() {
        let sep = if i + 1 == sorted.len() { "" } else { "," };
        out.push_str(&format!("  \"{k}\": {v:.4}{sep}\n"));
    }
    out.push_str("}\n");
    std::fs::write(path, out).map_err(|e| e.to_string())
}

/// One metric's baseline-vs-candidate verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Candidate within tolerance of (or better than) the baseline.
    Ok {
        /// Candidate / baseline.
        ratio: f64,
    },
    /// Candidate fell more than the tolerance below the baseline.
    Regressed {
        /// Candidate / baseline.
        ratio: f64,
    },
    /// Metric present in the baseline but missing from the candidate —
    /// treated as a regression (a silently dropped measurement must not
    /// pass the gate).
    Missing,
    /// Metric new in the candidate (starts its trajectory).
    New,
}

/// Compares `candidate` against `baseline`: for every metric, the
/// candidate value must be at least `(1 - tolerance) ×` the baseline
/// (higher ratios are better throughout the suite). Returns per-metric
/// verdicts over the union of both key sets.
pub fn compare(
    baseline: &[(String, f64)],
    candidate: &[(String, f64)],
    tolerance: f64,
) -> Vec<(String, Verdict)> {
    let mut out = Vec::new();
    for (k, base) in baseline {
        match candidate.iter().find(|(ck, _)| ck == k) {
            None => out.push((k.clone(), Verdict::Missing)),
            Some((_, cand)) => {
                let ratio = cand / base;
                let verdict = if ratio + 1e-9 >= 1.0 - tolerance {
                    Verdict::Ok { ratio }
                } else {
                    Verdict::Regressed { ratio }
                };
                out.push((k.clone(), verdict));
            }
        }
    }
    for (k, _) in candidate {
        if !baseline.iter().any(|(bk, _)| bk == k) {
            out.push((k.clone(), Verdict::New));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_write() {
        let entries = vec![("b/two".to_string(), 0.98), ("a/one".to_string(), 1.2345)];
        let dir = std::env::temp_dir().join("darm_perfjson_test.json");
        write(&dir, &entries).unwrap();
        let back = read(&dir).unwrap();
        // Written sorted; values rounded to 4 places.
        assert_eq!(
            back,
            vec![("a/one".to_string(), 1.2345), ("b/two".to_string(), 0.98)]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("[1, 2]").is_err());
        assert!(parse("{\"a\": x}").is_err());
        assert!(parse("{a: 1}").is_err());
        assert!(parse("{}").unwrap().is_empty());
    }

    #[test]
    fn compare_flags_regressions_and_missing_metrics() {
        let base = vec![("m".to_string(), 1.20), ("gone".to_string(), 1.0)];
        let cand = vec![("m".to_string(), 1.10), ("new".to_string(), 2.0)];
        let verdicts = compare(&base, &cand, 0.05);
        assert!(matches!(
            verdicts.iter().find(|(k, _)| k == "m").unwrap().1,
            Verdict::Regressed { .. }
        ));
        assert_eq!(
            verdicts.iter().find(|(k, _)| k == "gone").unwrap().1,
            Verdict::Missing
        );
        assert_eq!(
            verdicts.iter().find(|(k, _)| k == "new").unwrap().1,
            Verdict::New
        );
        // 1.15 vs 1.20 is within 5%.
        let ok = compare(&[("m".to_string(), 1.20)], &[("m".to_string(), 1.15)], 0.05);
        assert!(matches!(ok[0].1, Verdict::Ok { .. }));
    }
}
