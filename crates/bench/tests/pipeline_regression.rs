//! Regression net for the pass-manager refactor: the cached-analysis
//! pipeline must be *observationally identical* to the pre-refactor
//! driver, and every kernel variant must stay valid SSA between passes.

use darm_bench::{fig8_cases, fig9_cases, prepare_variants_checked};
use darm_kernels::BenchCase;
use darm_melding::{meld_function, meld_function_reference, MeldConfig};
use darm_pipeline::PipelineOptions;

fn all_cases() -> Vec<BenchCase> {
    let mut cases = fig8_cases();
    cases.extend(fig9_cases());
    cases
}

/// The cached-analysis pipeline produces bit-identical IR (print
/// round-trip) and identical statistics to the pre-refactor driver, on
/// every fig. 8 and fig. 9 kernel, under both DARM and branch fusion.
#[test]
fn pipeline_bit_identical_to_reference() {
    for case in all_cases() {
        for config in [MeldConfig::default(), MeldConfig::branch_fusion()] {
            let mut via_pipeline = case.func.clone();
            let pipeline_stats = meld_function(&mut via_pipeline, &config);
            let mut via_reference = case.func.clone();
            let reference_stats = meld_function_reference(&mut via_reference, &config);
            assert_eq!(
                via_pipeline.to_string(),
                via_reference.to_string(),
                "{} ({:?}): pipeline and reference IR diverge",
                case.name,
                config.mode
            );
            assert_eq!(
                format!("{pipeline_stats:?}"),
                format!("{reference_stats:?}"),
                "{} ({:?}): meld statistics diverge",
                case.name,
                config.mode
            );
        }
    }
}

/// With `verify_each`, every kernel × {baseline cleanup, DARM, BF} passes
/// SSA verification between passes (the acceptance gate of the refactor).
#[test]
fn verify_each_holds_on_every_variant() {
    let options = PipelineOptions {
        verify_each: true,
        ..PipelineOptions::default()
    };
    let registry = darm_melding::registry(&MeldConfig::default());
    for case in all_cases() {
        // DARM + BF variants through the shared driver.
        prepare_variants_checked(&case, &MeldConfig::default(), options.clone())
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        // Baseline through the generic cleanup pipeline.
        let mut pm = registry
            .build("simplify,instcombine,dce,verify", options.clone())
            .expect("cleanup spec parses");
        let mut baseline = case.func.clone();
        pm.run(&mut baseline)
            .unwrap_or_else(|e| panic!("{}: baseline cleanup: {e}", case.name));
    }
}

/// The analysis cache shares snapshots the pre-refactor driver recomputed:
/// post-dominators and divergence are computed exactly once per fixpoint
/// iteration (never inside cleanups), and the dominator tree computed for
/// the scan is the one SSA repair reuses (at most one extra per meld for
/// the post-surgery state). Wall-clock impact is measured by the
/// `meld_pipeline` bench; this pins the sharing structurally.
#[test]
fn cache_shares_analyses_across_the_fixpoint() {
    for case in fig9_cases() {
        let mut func = case.func.clone();
        let outcome = darm_melding::run_meld_pipeline(
            &mut func,
            &MeldConfig::default(),
            PipelineOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        let stats = outcome.stats;
        let count = |name: &str| {
            outcome
                .report
                .analysis_computations
                .iter()
                .find(|&&(n, _)| n == name)
                .map(|&(_, c)| c)
                .unwrap_or(0)
        };
        assert!(
            count("postdomtree") <= stats.iterations,
            "{}: postdomtree computed {} times for {} iterations",
            case.name,
            count("postdomtree"),
            stats.iterations
        );
        assert!(
            count("divergence") <= stats.iterations,
            "{}: divergence computed {} times for {} iterations",
            case.name,
            count("divergence"),
            stats.iterations
        );
        assert!(
            count("domtree") <= stats.iterations + 2 * stats.melded_regions,
            "{}: domtree computed {} times for {} iterations / {} melds",
            case.name,
            count("domtree"),
            stats.iterations,
            stats.melded_regions
        );

        // Melding an already-melded function is a clean single-scan no-op:
        // the pass must report unchanged (so a surrounding pipeline keeps
        // its warm cache) and accumulate no statistics.
        let outcome2 = darm_melding::run_meld_pipeline(
            &mut func,
            &MeldConfig::default(),
            PipelineOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: re-meld: {e}", case.name));
        assert_eq!(
            outcome2.stats.melded_subgraphs, 0,
            "{}: re-meld melded",
            case.name
        );
        assert_eq!(
            outcome2.stats.iterations, 1,
            "{}: re-meld should scan once",
            case.name
        );
        assert_eq!(
            outcome2.report.passes[0].changed_runs, 0,
            "{}: no-op meld scan must report unchanged",
            case.name
        );
    }
}
