//! Pins the `--time-passes` in-place-update counter columns and the
//! in-place `DivergenceAnalysis` refresh on a fig8 kernel.

use darm_analysis::{AnalysisManager, Cfg, DivergenceAnalysis, DomTree, PostDomTree};
use darm_ir::{InstData, Opcode};
use darm_kernels::synthetic::{build_case, SyntheticKind};
use darm_melding::{run_meld_pipeline, MeldConfig};
use darm_pipeline::PipelineOptions;

/// `--time-passes` renders the dedicated CFG/divergence in-place-update
/// columns, and the fig8+fig9 kernel sweep drives every in-place counter
/// class (deletion-batch tree, CFG splice, divergence closure) nonzero.
#[test]
fn time_passes_renders_in_place_update_columns() {
    let config = MeldConfig::default();
    let mut f = build_case(SyntheticKind::Sb1, 32).func;
    let out = run_meld_pipeline(
        &mut f,
        &config,
        PipelineOptions {
            time_passes: true,
            ..PipelineOptions::default()
        },
    )
    .expect("pipeline");
    let rendered = out.report.render();
    assert!(
        rendered.contains("cfg-upd") && rendered.contains("div-upd"),
        "time-passes table must carry the in-place update columns:\n{rendered}"
    );
}

/// A meld-shaped window on a fig8 kernel reconciles `DivergenceAnalysis`
/// in place: collapsing one of SB3's if-then regions (the paper's
/// branch-fusion special case — redirect the header around the then-block
/// and delete it) is exactly the surgery melding performs, and the result
/// must be bit-identical to a fresh recompute.
#[test]
fn fig8_meld_window_updates_divergence_in_place() {
    let mut f = build_case(SyntheticKind::Sb3, 32).func;
    let mut am = AnalysisManager::new();
    // Prime every slot so the surgery below lands in one journal window.
    am.get::<Cfg>(&f);
    am.get::<DomTree>(&f);
    am.get::<PostDomTree>(&f);
    am.get::<DivergenceAnalysis>(&f);

    // Branch-fusion-shaped meld of the `t2` if-then region: jump the
    // header straight to the join and drop the then-block.
    let blocks = f.block_ids();
    let find = |name: &str| {
        *blocks
            .iter()
            .find(|&&b| f.block_name(b) == name)
            .unwrap_or_else(|| panic!("SB3 kernel should have block {name}"))
    };
    let (hdr, then, join) = (find("t2.hdr"), find("t2.then"), find("t2.join"));
    let term = f.terminator(hdr).expect("t2.hdr terminator");
    f.remove_inst(term);
    f.add_inst(hdr, InstData::terminator(Opcode::Jump, vec![], vec![join]));
    f.remove_block(then);

    // The shape analyses reconcile first (the divergence refresh requires
    // its dependencies at the journal head), then divergence absorbs the
    // window in place.
    am.get::<Cfg>(&f);
    am.get::<DomTree>(&f);
    am.get::<PostDomTree>(&f);
    let refreshed = am.get::<DivergenceAnalysis>(&f);
    assert!(
        am.counters().in_place_divergence_updates >= 1,
        "fig8 meld window must drive the in-place divergence update, got {:?}",
        am.counters()
    );

    // Bit-identical to a fresh recompute.
    let cfg = Cfg::new(&f);
    let dt = DomTree::new(&f, &cfg);
    let fresh = DivergenceAnalysis::run(&f, &cfg, &dt);
    for i in 0..f.inst_capacity() {
        let id = darm_ir::InstId::new(i);
        assert_eq!(
            refreshed.is_inst_divergent(id),
            fresh.is_inst_divergent(id),
            "incremental divergence must match fresh at inst {i}"
        );
    }
    for b in 0..f.block_capacity() {
        let bb = darm_ir::BlockId::new(b);
        assert_eq!(
            refreshed.is_divergent_branch(bb),
            fresh.is_divergent_branch(bb),
            "incremental divergent-branch flag must match fresh at block {b}"
        );
    }
}
