//! Differential smoke for the cycle-level timing observer over the real
//! benchmark grids: enabling timing must change *nothing* architectural —
//! buffers, instruction counters, errors — across every figure kernel ×
//! {baseline, DARM, BF} × {decoded, bytecode}, must be deterministic, and
//! DARM must show a simulated-cycle win on the fig9 suite.

use darm_bench::{fig8_cases, fig9_cases, geomean, prepare_suite, timed_gpu_config, VariantStats};
use darm_kernels::BenchCase;
use darm_melding::MeldConfig;
use darm_pipeline::PipelineOptions;
use darm_simt::{BytecodeKernel, CompiledKernel, GpuConfig, PreparedKernel};

/// Runs `kernel` on `case` with and without timing and asserts the pure
/// observer contract: identical buffers, identical stats apart from the
/// sim_* fields, cycles present and repeatable when on.
fn assert_pure_observer(case: &BenchCase, kernel: &dyn CompiledKernel, label: &str) {
    let off = case
        .execute_compiled_with(kernel, GpuConfig::default())
        .unwrap_or_else(|e| panic!("{label}: timing-off run failed: {e}"));
    let on = case
        .execute_compiled_with(kernel, timed_gpu_config())
        .unwrap_or_else(|e| panic!("{label}: timing-on run failed: {e}"));
    assert_eq!(on.buffers, off.buffers, "{label}: buffers changed");
    assert_eq!(
        on.stats.sans_timing(),
        off.stats,
        "{label}: architectural counters changed"
    );
    assert_eq!(off.stats.sim_cycles, 0, "{label}: cycles leak when off");
    assert!(on.stats.sim_cycles > 0, "{label}: no cycles when on");
    let again = case
        .execute_compiled_with(kernel, timed_gpu_config())
        .unwrap_or_else(|e| panic!("{label}: rerun failed: {e}"));
    assert_eq!(on.stats, again.stats, "{label}: timing nondeterministic");
}

fn sweep(cases: &[BenchCase]) {
    let prepared = prepare_suite(cases, &MeldConfig::default(), PipelineOptions::default(), 0)
        .expect("suite melds");
    for (case, p) in cases.iter().zip(&prepared) {
        for (variant, pk) in [("baseline", &p.baseline), ("darm", &p.darm), ("bf", &p.bf)] {
            let label = format!("{}/{variant}", case.name);
            assert_pure_observer(case, pk, &format!("{label}/decoded"));
            let bk = BytecodeKernel::from_prepared(pk);
            assert_pure_observer(case, &bk, &format!("{label}/bytecode"));

            // The two engines must also agree on the simulated timeline.
            let dec = case.execute_compiled_with(pk, timed_gpu_config()).unwrap();
            let byc = case.execute_compiled_with(&bk, timed_gpu_config()).unwrap();
            assert_eq!(dec.stats, byc.stats, "{label}: tiers disagree on cycles");
        }
    }
}

#[test]
fn fig8_timing_is_a_pure_observer() {
    sweep(&fig8_cases());
}

#[test]
fn fig9_timing_is_a_pure_observer() {
    sweep(&fig9_cases());
}

/// DARM melding must pay off in simulated cycles on the real-world grid,
/// not just in the heuristic warp-cycle counter.
#[test]
fn fig9_darm_wins_in_simulated_cycles() {
    let rows = darm_bench::run_cases(&fig9_cases(), 0);
    let gm = geomean(rows.iter().map(VariantStats::darm_cycle_speedup));
    assert!(
        gm > 1.0,
        "DARM geomean simulated-cycle speedup must beat baseline: {gm:.4}"
    );
    for r in &rows {
        assert!(
            r.baseline.sim_cycles > 0 && r.darm.sim_cycles > 0,
            "{}: timing did not run",
            r.name
        );
    }
}

/// The prepared kernel decodes once; the PreparedKernel path must agree
/// with the from-source path under timing (launch-level determinism).
#[test]
fn timing_is_stable_across_prepare_paths() {
    let case = &fig8_cases()[0];
    let pk = PreparedKernel::new(&case.func);
    let via_prepared = case.execute_compiled_with(&pk, timed_gpu_config()).unwrap();
    let via_fn = case
        .execute_compiled_with(&PreparedKernel::new(&case.func), timed_gpu_config())
        .unwrap();
    assert_eq!(via_prepared.stats, via_fn.stats);
}
