//! Sanity tests for the experiment harness itself: every case in every
//! figure grid must execute and validate, and the renderers must produce
//! well-formed tables.

use darm_bench::{
    counter_cases, fig8_cases, geomean, render_capability_matrix, run_case, run_case_with,
    run_cases,
};
use darm_melding::MeldConfig;

#[test]
fn geomean_basics() {
    assert!((geomean([1.0, 1.0]) - 1.0).abs() < 1e-12);
    assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
    assert_eq!(geomean([7.25]), 7.25);
    // Empty input is the empty product — 1.0, never NaN.
    assert_eq!(geomean(std::iter::empty()), 1.0);
}

/// Melding statistics survive the module-report round trip in *both*
/// modes: a branch-fusion config's pass self-names `meld-bf`, and its
/// stats must still be recovered (regression test for the stats lookup).
#[test]
fn bf_mode_configs_still_report_meld_stats() {
    let case = darm_kernels::synthetic::build_case(darm_kernels::synthetic::SyntheticKind::Sb1, 32);
    let darm = run_case_with(&case, &MeldConfig::default());
    assert!(darm.meld.melded_subgraphs > 0, "DARM stats lost");
    let bf = run_case_with(&case, &MeldConfig::branch_fusion());
    assert!(
        bf.meld.melded_subgraphs > 0,
        "branch-fusion stats lost (pass is named meld-bf)"
    );
}

/// The batch path agrees with the per-case path: same checked counters,
/// same melding statistics, row order = input order.
#[test]
fn batched_suite_matches_per_case_runs() {
    let cases = fig8_cases();
    let subset = &cases[..6];
    let batched = run_cases(subset, 2);
    for (case, row) in subset.iter().zip(&batched) {
        let single = run_case(case);
        assert_eq!(row.name, single.name);
        assert_eq!(row.baseline.cycles, single.baseline.cycles, "{}", row.name);
        assert_eq!(row.darm.cycles, single.darm.cycles, "{}", row.name);
        assert_eq!(row.bf.cycles, single.bf.cycles, "{}", row.name);
        assert_eq!(
            format!("{:?}", row.meld),
            format!("{:?}", single.meld),
            "{}",
            row.name
        );
    }
}

#[test]
fn counter_cases_all_run_and_check() {
    for case in counter_cases() {
        let r = run_case(&case);
        assert!(r.baseline.cycles > 0, "{}", r.name);
        assert!(r.darm.cycles > 0);
        assert!(r.darm_speedup() > 0.5, "{}: {}", r.name, r.darm_speedup());
    }
}

#[test]
fn fig8_grid_is_complete() {
    let cases = fig8_cases();
    assert_eq!(cases.len(), 8 * 4, "8 patterns x 4 block sizes");
    // spot-check one case end to end
    let r = run_case(&cases[0]);
    assert!(
        r.darm_speedup() > 1.0,
        "SB1 must improve: {}",
        r.darm_speedup()
    );
}

#[test]
fn capability_matrix_matches_the_paper() {
    let m = render_capability_matrix();
    assert!(
        m.contains("| diamond, identical sequences | yes | yes | yes |"),
        "{m}"
    );
    assert!(
        m.contains("| diamond, distinct sequences | no | yes | yes |"),
        "{m}"
    );
    assert!(
        m.contains("| complex control flow | no | no | yes |"),
        "{m}"
    );
}
