//! Sanity tests for the experiment harness itself: every case in every
//! figure grid must execute and validate, and the renderers must produce
//! well-formed tables.

use darm_bench::{counter_cases, fig8_cases, geomean, render_capability_matrix, run_case};

#[test]
fn geomean_basics() {
    assert!((geomean([1.0, 1.0]) - 1.0).abs() < 1e-12);
    assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
    assert_eq!(geomean(std::iter::empty()), 1.0);
}

#[test]
fn counter_cases_all_run_and_check() {
    for case in counter_cases() {
        let r = run_case(&case);
        assert!(r.baseline.cycles > 0, "{}", r.name);
        assert!(r.darm.cycles > 0);
        assert!(r.darm_speedup() > 0.5, "{}: {}", r.name, r.darm_speedup());
    }
}

#[test]
fn fig8_grid_is_complete() {
    let cases = fig8_cases();
    assert_eq!(cases.len(), 8 * 4, "8 patterns x 4 block sizes");
    // spot-check one case end to end
    let r = run_case(&cases[0]);
    assert!(
        r.darm_speedup() > 1.0,
        "SB1 must improve: {}",
        r.darm_speedup()
    );
}

#[test]
fn capability_matrix_matches_the_paper() {
    let m = render_capability_matrix();
    assert!(
        m.contains("| diamond, identical sequences | yes | yes | yes |"),
        "{m}"
    );
    assert!(
        m.contains("| diamond, distinct sequences | no | yes | yes |"),
        "{m}"
    );
    assert!(
        m.contains("| complex control flow | no | no | yes |"),
        "{m}"
    );
}
