//! Cross-run compile cache keyed by content hash.
//!
//! The key is `fnv1a_64(canonical_spec ∥ 0x00 ∥ printed_function_ir)`:
//! the pass spec is canonicalised (parsed and re-printed) so two
//! spellings of the same pipeline share entries, and the function text
//! is streamed through the hasher without materialising a copy.  Keying
//! is per *function*, not per module, so a warm module that gained one
//! new function only compiles the newcomer.
//!
//! The cache holds both positive entries (optimized IR) and *negative*
//! entries: functions whose compilation failed deterministically (a
//! contained panic or pass error) are remembered as degraded, so a
//! repeat offender fails fast instead of re-tripping the same landmine
//! on every request.  Budget exhaustion (deadline/fuel) is *not*
//! negatively cached — those causes depend on per-request limits and
//! machine load, not on the input.
//!
//! Bounded by entry count and total payload bytes with LRU eviction.

use std::collections::HashMap;
use std::fmt::Write as _;

use darm_ir::hash::Fnv64;
use darm_ir::Function;

/// Compute the cache key for one function under a canonical spec.
pub fn content_key(canonical_spec: &str, func: &Function) -> u64 {
    let mut hasher = Fnv64::new();
    hasher.write(canonical_spec.as_bytes());
    hasher.write_u8(0);
    // Streams the printed IR through the hasher via `fmt::Write`.
    let _ = write!(hasher, "{func}");
    hasher.finish()
}

/// What the cache remembers about a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedOutcome {
    /// The pipeline finished; this is the optimized IR text.
    Optimized { ir: String },
    /// Compilation failed deterministically; the function is pinned to
    /// its baseline IR and the diagnostic is replayed verbatim.
    Degraded { ir: String, diagnostic: String },
}

impl CachedOutcome {
    fn bytes(&self) -> usize {
        match self {
            CachedOutcome::Optimized { ir } => ir.len(),
            CachedOutcome::Degraded { ir, diagnostic } => ir.len() + diagnostic.len(),
        }
    }

    pub fn is_degraded(&self) -> bool {
        matches!(self, CachedOutcome::Degraded { .. })
    }
}

struct Entry {
    outcome: CachedOutcome,
    bytes: usize,
    last_used: u64,
}

/// Monotonic counters exposed through `stats` responses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub negative_hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

pub struct CompileCache {
    entries: HashMap<u64, Entry>,
    max_entries: usize,
    max_bytes: usize,
    bytes: usize,
    tick: u64,
    counters: CacheCounters,
}

impl CompileCache {
    /// `max_entries == 0` disables the cache entirely: every lookup
    /// misses and every insert is dropped.
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        CompileCache {
            entries: HashMap::new(),
            max_entries,
            max_bytes,
            bytes: 0,
            tick: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Look up a key, refreshing its LRU position on a hit.
    ///
    /// The `serve::cache_lookup` fault site fires in the engine
    /// *before* the cache lock is taken, so an injected panic can
    /// never poison the cache mutex mid-mutation.
    pub fn lookup(&mut self, key: u64) -> Option<CachedOutcome> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                if entry.outcome.is_degraded() {
                    self.counters.negative_hits += 1;
                } else {
                    self.counters.hits += 1;
                }
                Some(entry.outcome.clone())
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting least-recently-used
    /// entries until both bounds hold again.
    ///
    /// Like [`CompileCache::lookup`], the `serve::cache_insert` fault
    /// site fires before the lock, never under it.
    pub fn insert(&mut self, key: u64, outcome: CachedOutcome) {
        if self.max_entries == 0 {
            return;
        }
        let bytes = outcome.bytes();
        if bytes > self.max_bytes {
            return; // would evict everything and still not fit
        }
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                outcome,
                bytes,
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.counters.insertions += 1;
        while self.entries.len() > self.max_entries || self.bytes > self.max_bytes {
            // O(n) LRU scan: entry counts are bounded by `max_entries`
            // (thousands), and eviction is off the hot lookup path.
            let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, entry)| entry.last_used)
            else {
                break;
            };
            if let Some(entry) = self.entries.remove(&victim) {
                self.bytes -= entry.bytes;
                self.counters.evictions += 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes currently held — the RSS proxy the soak
    /// test asserts stays bounded.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn counters(&self) -> CacheCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(ir: &str) -> CachedOutcome {
        CachedOutcome::Optimized { ir: ir.into() }
    }

    #[test]
    fn hit_miss_and_negative_counters() {
        let mut cache = CompileCache::new(8, 1024);
        assert_eq!(cache.lookup(1), None);
        cache.insert(1, opt("fn a() {}"));
        cache.insert(
            2,
            CachedOutcome::Degraded {
                ir: "fn b() {}".into(),
                diagnostic: "pass panicked".into(),
            },
        );
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(2).unwrap().is_degraded());
        let c = cache.counters();
        assert_eq!((c.hits, c.negative_hits, c.misses), (1, 1, 1));
        assert_eq!(
            cache.bytes(),
            "fn a() {}".len() + "fn b() {}pass panicked".len()
        );
    }

    #[test]
    fn lru_eviction_respects_entry_bound() {
        let mut cache = CompileCache::new(2, 1024);
        cache.insert(1, opt("a"));
        cache.insert(2, opt("b"));
        cache.lookup(1); // refresh 1; 2 becomes LRU
        cache.insert(3, opt("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(1).is_some());
        assert_eq!(cache.lookup(2), None);
        assert!(cache.lookup(3).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn byte_bound_evicts_and_oversized_payloads_are_dropped() {
        let mut cache = CompileCache::new(64, 10);
        cache.insert(1, opt("aaaa")); // 4 bytes
        cache.insert(2, opt("bbbb")); // 8 bytes
        cache.insert(3, opt("cccc")); // would be 12 → evict LRU (1)
        assert_eq!(cache.bytes(), 8);
        assert_eq!(cache.lookup(1), None);
        // A payload larger than the whole budget is refused outright.
        cache.insert(4, opt("ddddddddddddddd"));
        assert_eq!(cache.lookup(4), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = CompileCache::new(0, 1024);
        cache.insert(1, opt("a"));
        assert_eq!(cache.lookup(1), None);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn reinsert_replaces_bytes_accounting() {
        let mut cache = CompileCache::new(8, 1024);
        cache.insert(1, opt("aaaa"));
        cache.insert(1, opt("bb"));
        assert_eq!(cache.bytes(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn content_key_separates_spec_from_ir() {
        use darm_ir::parser::parse_module;
        let module = parse_module("fn @f() -> void {\nentry:\n  ret\n}").unwrap();
        let func = &module.functions()[0];
        let a = content_key("meld", func);
        let b = content_key("meld,simplify", func);
        assert_ne!(a, b);
        assert_eq!(a, content_key("meld", func));
    }
}
