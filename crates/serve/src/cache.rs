//! Cross-run compile cache keyed by content hash.
//!
//! The key is a 128-bit [`ContentKey`]: two independently seeded
//! FNV-1a-64 streams over `canonical_spec ∥ 0x00 ∥ printed_function_ir`.
//! The pass spec is canonicalised (parsed and re-printed) so two
//! spellings of the same pipeline share entries, and the function text
//! is streamed through both hashers without materialising a copy.
//! FNV-1a is non-cryptographic, so a *single* 64-bit digest admits
//! constructible collisions — and a colliding hit would silently serve
//! another function's compiled IR, since hits skip parse and verify.
//! Requiring two independent 64-bit digests to agree closes that hole
//! for anything short of a deliberate attack on both seeds at once.
//! Keying is per *function*, not per module, so a warm module that
//! gained one new function only compiles the newcomer.
//!
//! The cache holds both positive entries (optimized IR) and *negative*
//! entries: functions whose compilation failed deterministically (a
//! contained panic or pass error) are remembered as degraded, so a
//! repeat offender fails fast instead of re-tripping the same landmine
//! on every request.  Budget exhaustion (deadline/fuel) is *not*
//! negatively cached — those causes depend on per-request limits and
//! machine load, not on the input.
//!
//! Bounded by entry count and total payload bytes with LRU eviction.

use std::collections::HashMap;
use std::fmt::Write as _;

use darm_ir::hash::Fnv64;
use darm_ir::Function;

/// A 128-bit content key: two FNV-1a-64 digests of the same byte
/// stream from independent starting states. Both halves must match for
/// a cache hit, so a collision in one 64-bit hash alone cannot alias
/// two different inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentKey {
    lo: u64,
    hi: u64,
}

/// Streams one byte sequence into both halves of a [`ContentKey`].
struct WideHasher {
    lo: Fnv64,
    hi: Fnv64,
}

impl WideHasher {
    fn new() -> WideHasher {
        let lo = Fnv64::new();
        // Seed the second stream by absorbing a fixed tag byte: after
        // one FNV round its state is decorrelated from `lo`'s, so the
        // two digests of the same input are independent.
        let mut hi = Fnv64::new();
        hi.write_u8(0x9e);
        WideHasher { lo, hi }
    }

    fn write(&mut self, bytes: &[u8]) {
        self.lo.write(bytes);
        self.hi.write(bytes);
    }

    fn finish(&self) -> ContentKey {
        ContentKey {
            lo: self.lo.finish(),
            hi: self.hi.finish(),
        }
    }
}

impl std::fmt::Write for WideHasher {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.write(s.as_bytes());
        Ok(())
    }
}

/// Compute the cache key for one function under a canonical spec.
pub fn content_key(canonical_spec: &str, func: &Function) -> ContentKey {
    let mut hasher = WideHasher::new();
    hasher.write(canonical_spec.as_bytes());
    hasher.write(&[0]);
    // Streams the printed IR through both hashers via `fmt::Write`.
    let _ = write!(hasher, "{func}");
    hasher.finish()
}

/// Compute the whole-request key over the *raw* input text (before any
/// parse), for the engine's whole-request fast path.
pub fn raw_key(canonical_spec: &str, text: &str) -> ContentKey {
    let mut hasher = WideHasher::new();
    hasher.write(canonical_spec.as_bytes());
    hasher.write(&[0]);
    hasher.write(text.as_bytes());
    hasher.finish()
}

/// What the cache remembers about a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CachedOutcome {
    /// The pipeline finished; this is the optimized IR text.
    Optimized { ir: String },
    /// Compilation failed deterministically; the function is pinned to
    /// its baseline IR and the diagnostic is replayed verbatim.
    Degraded { ir: String, diagnostic: String },
}

impl CachedOutcome {
    fn bytes(&self) -> usize {
        match self {
            CachedOutcome::Optimized { ir } => ir.len(),
            CachedOutcome::Degraded { ir, diagnostic } => ir.len() + diagnostic.len(),
        }
    }

    pub fn is_degraded(&self) -> bool {
        matches!(self, CachedOutcome::Degraded { .. })
    }
}

struct Entry {
    outcome: CachedOutcome,
    bytes: usize,
    last_used: u64,
}

/// Monotonic counters exposed through `stats` responses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    pub hits: u64,
    pub negative_hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

pub struct CompileCache {
    entries: HashMap<ContentKey, Entry>,
    max_entries: usize,
    max_bytes: usize,
    bytes: usize,
    tick: u64,
    counters: CacheCounters,
}

impl CompileCache {
    /// `max_entries == 0` disables the cache entirely: every lookup
    /// misses and every insert is dropped.
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        CompileCache {
            entries: HashMap::new(),
            max_entries,
            max_bytes,
            bytes: 0,
            tick: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Look up a key, refreshing its LRU position on a hit.
    ///
    /// The `serve::cache_lookup` fault site fires in the engine
    /// *before* the cache lock is taken, so an injected panic can
    /// never poison the cache mutex mid-mutation.
    pub fn lookup(&mut self, key: ContentKey) -> Option<CachedOutcome> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                if entry.outcome.is_degraded() {
                    self.counters.negative_hits += 1;
                } else {
                    self.counters.hits += 1;
                }
                Some(entry.outcome.clone())
            }
            None => {
                self.counters.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting least-recently-used
    /// entries until both bounds hold again.
    ///
    /// Like [`CompileCache::lookup`], the `serve::cache_insert` fault
    /// site fires before the lock, never under it.
    pub fn insert(&mut self, key: ContentKey, outcome: CachedOutcome) {
        if self.max_entries == 0 {
            return;
        }
        let bytes = outcome.bytes();
        if bytes > self.max_bytes {
            return; // would evict everything and still not fit
        }
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                outcome,
                bytes,
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.counters.insertions += 1;
        while self.entries.len() > self.max_entries || self.bytes > self.max_bytes {
            // O(n) LRU scan: entry counts are bounded by `max_entries`
            // (thousands), and eviction is off the hot lookup path.
            let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, entry)| entry.last_used)
            else {
                break;
            };
            if let Some(entry) = self.entries.remove(&victim) {
                self.bytes -= entry.bytes;
                self.counters.evictions += 1;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes currently held — the RSS proxy the soak
    /// test asserts stays bounded.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn counters(&self) -> CacheCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt(ir: &str) -> CachedOutcome {
        CachedOutcome::Optimized { ir: ir.into() }
    }

    /// A synthetic key for bookkeeping tests that never touch hashing.
    fn key(n: u64) -> ContentKey {
        ContentKey { lo: n, hi: n }
    }

    #[test]
    fn hit_miss_and_negative_counters() {
        let mut cache = CompileCache::new(8, 1024);
        assert_eq!(cache.lookup(key(1)), None);
        cache.insert(key(1), opt("fn a() {}"));
        cache.insert(
            key(2),
            CachedOutcome::Degraded {
                ir: "fn b() {}".into(),
                diagnostic: "pass panicked".into(),
            },
        );
        assert!(cache.lookup(key(1)).is_some());
        assert!(cache.lookup(key(2)).unwrap().is_degraded());
        let c = cache.counters();
        assert_eq!((c.hits, c.negative_hits, c.misses), (1, 1, 1));
        assert_eq!(
            cache.bytes(),
            "fn a() {}".len() + "fn b() {}pass panicked".len()
        );
    }

    #[test]
    fn lru_eviction_respects_entry_bound() {
        let mut cache = CompileCache::new(2, 1024);
        cache.insert(key(1), opt("a"));
        cache.insert(key(2), opt("b"));
        cache.lookup(key(1)); // refresh 1; 2 becomes LRU
        cache.insert(key(3), opt("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(key(1)).is_some());
        assert_eq!(cache.lookup(key(2)), None);
        assert!(cache.lookup(key(3)).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn byte_bound_evicts_and_oversized_payloads_are_dropped() {
        let mut cache = CompileCache::new(64, 10);
        cache.insert(key(1), opt("aaaa")); // 4 bytes
        cache.insert(key(2), opt("bbbb")); // 8 bytes
        cache.insert(key(3), opt("cccc")); // would be 12 → evict LRU (1)
        assert_eq!(cache.bytes(), 8);
        assert_eq!(cache.lookup(key(1)), None);
        // A payload larger than the whole budget is refused outright.
        cache.insert(key(4), opt("ddddddddddddddd"));
        assert_eq!(cache.lookup(key(4)), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = CompileCache::new(0, 1024);
        cache.insert(key(1), opt("a"));
        assert_eq!(cache.lookup(key(1)), None);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn reinsert_replaces_bytes_accounting() {
        let mut cache = CompileCache::new(8, 1024);
        cache.insert(key(1), opt("aaaa"));
        cache.insert(key(1), opt("bb"));
        assert_eq!(cache.bytes(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn content_key_separates_spec_from_ir() {
        use darm_ir::parser::parse_module;
        let module = parse_module("fn @f() -> void {\nentry:\n  ret\n}").unwrap();
        let func = &module.functions()[0];
        let a = content_key("meld", func);
        let b = content_key("meld,simplify", func);
        assert_ne!(a, b);
        assert_eq!(a, content_key("meld", func));
        // The two halves are independently seeded streams over the same
        // bytes — equal halves would mean the widening is a no-op.
        assert_ne!(a.lo, a.hi);
        assert_eq!(raw_key("meld", "x"), raw_key("meld", "x"));
        assert_ne!(raw_key("meld", "x"), raw_key("meld", "y"));
    }
}
