//! A minimal JSON value, parser and serializer for the serve protocol.
//!
//! Hand-rolled for the same reason as `darm_bench::perfjson`: the build
//! environment is offline, and the protocol needs only objects, arrays,
//! strings (with full escape support — IR payloads contain newlines),
//! numbers, booleans and null. Anything outside that grammar is a hard
//! parse error, never a silently coerced value: a daemon must answer a
//! malformed frame with a typed error, not guess.
//!
//! Numbers are kept as `f64`; the protocol's integral fields (ids, fuel,
//! counters) are well within the 2^53 exact-integer range.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use a [`BTreeMap`], so serialization is
/// deterministic (sorted keys) — warm-vs-cold byte-identity of responses
/// relies on it.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (see module docs).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for |n| < 2^53).
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Object field lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integral
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing non-whitespace is an
    /// error).
    ///
    /// # Errors
    ///
    /// A human-readable message with a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser {
            bytes,
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                // Integral values print without a fractional part, so ids
                // and counters round-trip textually.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Maximum container nesting the parser accepts. Recursion depth is
/// bounded by input nesting, so without a cap a frame of densely nested
/// `[` (up to the frame size limit) would overflow the stack — and a
/// stack overflow aborts the process, no `catch_unwind` can contain it.
/// The cap turns such input into an ordinary typed parse error; the
/// protocol itself never nests more than a handful of levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.nested(Self::array),
            Some(b'{') => self.nested(Self::object),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    /// Runs a container parser one nesting level deeper, erroring past
    /// [`MAX_DEPTH`] instead of risking the recursion growing the stack
    /// without bound.
    fn nested(&mut self, parse: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii span");
        let n = text
            .parse::<f64>()
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))?;
        // Out-of-range literals like `1e999` parse to infinity, and
        // `Display` would render non-finite values as invalid JSON —
        // enforce finiteness at the boundary so they can never get in.
        if !n.is_finite() {
            return Err(format!("number `{text}` at byte {start} is out of range"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are not paired — the serializer
                            // never emits them (it escapes only controls).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad codepoint U+{code:04X}"))?,
                            );
                        }
                        other => {
                            return Err(format!(
                                "unknown escape `\\{}` at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values_with_escapes() {
        let v = Json::obj([
            ("id", Json::int(7)),
            ("ir", Json::str("fn @k() -> void {\nentry:\n  ret\n}\n")),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::Num(1.5), Json::str("a\"b\\c\td")]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Deterministic: sorted keys, stable rendering.
        assert_eq!(text, Json::parse(&text).unwrap().to_string());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": }",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"bad \\q escape\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::int(42).to_string(), "42");
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        // Far past the cap: must return a typed error, not abort. A
        // stack overflow here would kill the whole test process, so
        // merely completing proves containment.
        for open in ["[", "{\"k\":"] {
            let bomb = open.repeat(100_000);
            let err = Json::parse(&bomb).unwrap_err();
            assert!(err.contains("nesting"), "unexpected error: {err}");
        }
        // At and below the cap, nesting still parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn out_of_range_numbers_are_rejected() {
        for bad in ["1e999", "-1e999", "1e400"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.contains("out of range"), "unexpected error: {err}");
        }
        assert!(Json::parse("1e308").is_ok());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".to_string())
        );
        // Controls below 0x20 are escaped on output, parsed on input.
        let s = Json::Str("\u{1}".to_string());
        assert_eq!(s.to_string(), "\"\\u0001\"");
        assert_eq!(Json::parse(&s.to_string()).unwrap(), s);
    }
}
