//! `darm serve` — a fault-tolerant persistent compile service with
//! cross-run caching.
//!
//! A `darm serve` daemon keeps a [`ModulePassManager`]-based compiler
//! hot across many module-compile requests: the pass registry is built
//! once, and per-function results are cached across requests keyed by
//! content hash, so a rebuild that re-sends a mostly-unchanged module
//! only pays for the functions that actually changed.
//!
//! [`ModulePassManager`]: darm_pipeline::ModulePassManager
//!
//! # Protocol
//!
//! Both directions speak length-prefixed JSON frames — a 4-byte
//! big-endian `u32` byte count, then that many bytes of UTF-8 JSON
//! (see [`proto`]):
//!
//! ```text
//! frame    := u32_be(len) body
//! body     := request | response          ; UTF-8 JSON, len bytes
//! request  := {"op":"compile","id":N,"ir":S,
//!              "spec":S?,"timeout_ms":N?,"fuel":N?}
//!           | {"op":"ping","id":N}
//!           | {"op":"stats","id":N}
//!           | {"op":"shutdown","id":N}
//! response := {"status":"ok","id":N,"ir":S,"functions":[...]}
//!           | {"status":"error","kind":K,"message":S,"id":N?}
//!           | {"status":"overloaded","id":N,"queue_depth":N}
//!           | {"status":"pong","id":N}
//!           | {"status":"stats","id":N,"stats":{...}}
//!           | {"status":"bye","id":N,"stats":{...}}
//! K        := "protocol" | "parse" | "spec" | "internal"
//! ```
//!
//! Responses are written as workers finish — possibly out of request
//! order — and carry the request `id` for matching. JSON objects are
//! rendered with sorted keys, so a response's byte representation is a
//! pure function of its content: a warm cache hit is *byte-identical*
//! to the cold response it replays.
//!
//! # Cache keying
//!
//! Caching is two-level. Each function is keyed by a 128-bit
//! [`cache::ContentKey`] — two independently seeded FNV-1a-64 streams
//! over `canonical_spec ∥ 0x00 ∥ printed_function_ir` (see
//! [`cache::content_key`]): the spec is parsed and re-printed so
//! equivalent spellings share entries, FNV-1a is stable across
//! processes and platforms so a persisted request stream replays
//! identically anywhere, and requiring both 64-bit digests to agree
//! keeps a constructible single-hash collision from silently serving
//! another function's compiled IR. Deterministic compile faults (contained
//! panics and pass errors) are *negatively* cached — the function is
//! served degraded-to-baseline with its diagnostic, instantly — while
//! budget exhaustion (deadline/fuel) is never cached because it
//! depends on per-request limits, not on the input.
//!
//! In front of the function cache sits a whole-request memo keyed the
//! same way over `canonical_spec ∥ 0x00 ∥ raw_request_ir`: a fully-warm
//! request is answered before its input is even parsed. The memo only
//! holds fully *optimized* responses (degraded and negatively-cached
//! outcomes always route through the function cache, keeping fail-fast
//! semantics observable) and is a pure front — dropping it wholesale
//! changes latency, never results — so it evicts by epoch clear under
//! the same entry/byte bounds as the function cache.
//!
//! # Shedding and degradation
//!
//! Admission never blocks: a full queue answers a typed `overloaded`
//! response ([`queue`]). Each compile attempt runs under a fresh
//! per-request [`Budget`] with `OnError::Fail` first; if it faults,
//! one retry runs under `OnError::Degrade`, pinning only the faulting
//! functions to their baseline IR. A panic anywhere in a request's
//! path is contained to that request — the daemon never exits on a
//! poisoned module — and every engine lock recovers from poisoning.
//! Shutdown (`{"op":"shutdown"}`) drains in-flight requests, flushes
//! stats into the final `bye` frame, and only then exits.
//!
//! [`Budget`]: darm_ir::budget::Budget
//!
//! # Fault-injection sites
//!
//! With the `fault-injection` feature, `DARM_FAULT` reaches four
//! service sites on top of the pipeline's own: `serve::admit` (before
//! queue admission), `serve::worker` (top of each worker iteration),
//! `serve::cache_lookup` and `serve::cache_insert` (before the
//! respective cache lock holds — never under a lock, so injected
//! panics cannot poison the cache). See `darm_ir::fault` for the
//! `DARM_FAULT='<site>[#hit]=<kind>'` grammar.

pub mod cache;
pub mod engine;
pub mod json;
pub mod proto;
pub mod queue;
pub mod transport;

pub use engine::{Engine, Responder, ServeConfig};
pub use proto::{CompileRequest, ErrorKind, Request, Response};
#[cfg(unix)]
pub use transport::serve_unix;
pub use transport::{serve_stream, StreamEnd};
