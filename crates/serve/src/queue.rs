//! Bounded MPMC work queue with non-blocking admission.
//!
//! Admission (`try_push`) never blocks: when the queue is at capacity
//! the job is handed straight back so the caller can answer with a
//! typed `overloaded` response instead of stalling the client.  Workers
//! block in `pop` until a job arrives or the queue is closed and
//! drained.  Every lock acquisition recovers from poisoning — a worker
//! panic must never wedge admission.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why `try_push` handed the item back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; shed the load.
    Full,
    /// The queue has been closed for shutdown.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                high_water: 0,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to enqueue without blocking.  On failure the item comes
    /// back untouched together with the reason.
    pub fn try_push(&self, item: T) -> Result<usize, (T, PushError)> {
        let mut state = self.lock();
        if state.closed {
            return Err((item, PushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        state.high_water = state.high_water.max(depth);
        drop(state);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Block until a job is available.  Returns `None` once the queue
    /// is closed *and* fully drained, which is each worker's signal to
    /// exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Remove one queued job without blocking (used by the shutdown
    /// path to drain inline when no workers remain).
    pub fn try_pop(&self) -> Option<T> {
        self.lock().items.pop_front()
    }

    /// Close the queue: future pushes fail with [`PushError::Closed`],
    /// and workers exit once the backlog drains.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest backlog observed since creation.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Whether the underlying mutex was ever poisoned (the soak test
    /// asserts this stays `false` even under injected worker panics).
    pub fn is_poisoned(&self) -> bool {
        self.state.is_poisoned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_when_full_and_reports_closed() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.try_push(3).unwrap_err(), (3, PushError::Full));
        assert_eq!(q.high_water(), 2);
        q.close();
        assert_eq!(q.try_push(4).unwrap_err(), (4, PushError::Closed));
        // Backlog still drains after close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_item_or_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(42).unwrap();
        assert_eq!(popper.join().unwrap(), Some(42));

        let q2 = Arc::new(BoundedQueue::<u32>::new(4));
        let popper = {
            let q2 = Arc::clone(&q2);
            std::thread::spawn(move || q2.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q2.close();
        assert_eq!(popper.join().unwrap(), None);
    }
}
