//! Transports: run an [`Engine`] over a byte stream.
//!
//! [`serve_stream`] speaks the framed protocol of [`crate::proto`] over
//! any `Read`/`Write` pair — the CLI uses it on stdin/stdout and, on
//! Unix, over accepted socket connections ([`serve_unix`]).
//!
//! Error handling at the transport layer follows the same creed as the
//! engine: a malformed frame (bad JSON, bad request shape, oversized
//! length) gets a typed `protocol` error response and the loop keeps
//! reading; only a truncated stream or a real I/O error ends the
//! connection.  Responses are written as workers finish, so they may
//! arrive out of request order — clients match them by `id`.

use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex, PoisonError};

use crate::engine::Engine;
use crate::json::Json;
use crate::proto::{read_frame, write_frame, ErrorKind, FrameError, Request, Response};

/// Why [`serve_stream`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEnd {
    /// The peer closed the stream (or it truncated mid-frame). The
    /// engine is still running; a socket server keeps accepting.
    Eof,
    /// The peer sent a `shutdown` request: the engine has drained, the
    /// final stats were flushed in the `bye` response, and the daemon
    /// should exit.
    Shutdown,
}

fn send(writer: &Arc<Mutex<impl Write + Send>>, response: &Response) {
    let mut writer = writer.lock().unwrap_or_else(PoisonError::into_inner);
    // A vanished peer must not take the daemon down; responders swallow
    // write errors and the read side notices the closed stream.
    let _ = write_frame(&mut *writer, &response.to_bytes());
}

/// Serve one framed connection until EOF or a `shutdown` request.
///
/// On `shutdown` the engine drains (in-flight requests finish and their
/// responses are written) before the final `bye` frame — which carries
/// the flushed stats snapshot — goes out.
pub fn serve_stream(
    engine: &Engine,
    mut reader: impl Read,
    writer: impl Write + Send + 'static,
    max_frame: usize,
) -> io::Result<StreamEnd> {
    let writer = Arc::new(Mutex::new(writer));
    loop {
        let body = match read_frame(&mut reader, max_frame) {
            Ok(Some(body)) => body,
            Ok(None) => return Ok(StreamEnd::Eof),
            Err(FrameError::Oversized { len, max }) => {
                engine.note_protocol_error();
                send(
                    &writer,
                    &Response::Error {
                        id: None,
                        kind: ErrorKind::Protocol,
                        message: format!("oversized frame: {len} bytes exceeds limit {max}"),
                    },
                );
                continue; // the body was drained; the stream is aligned
            }
            Err(FrameError::Truncated) => {
                engine.note_protocol_error();
                send(
                    &writer,
                    &Response::Error {
                        id: None,
                        kind: ErrorKind::Protocol,
                        message: "truncated frame".to_string(),
                    },
                );
                return Ok(StreamEnd::Eof);
            }
            Err(FrameError::Io(err)) => return Err(err),
        };
        let request = std::str::from_utf8(&body)
            .map_err(|e| format!("frame is not UTF-8: {e}"))
            .and_then(|text| Json::parse(text).map_err(|e| format!("invalid JSON: {e}")))
            .and_then(|json| Request::from_json(&json));
        let request = match request {
            Ok(request) => request,
            Err(message) => {
                engine.note_protocol_error();
                send(
                    &writer,
                    &Response::Error {
                        id: None,
                        kind: ErrorKind::Protocol,
                        message,
                    },
                );
                continue;
            }
        };
        match request {
            Request::Ping { id } => send(&writer, &Response::Pong { id }),
            Request::Stats { id } => send(
                &writer,
                &Response::Stats {
                    id,
                    body: engine.stats_json(),
                },
            ),
            Request::Shutdown { id } => {
                let stats = engine.shutdown();
                send(&writer, &Response::Bye { id, stats });
                return Ok(StreamEnd::Shutdown);
            }
            Request::Compile(req) => {
                let writer = Arc::clone(&writer);
                engine.submit(req, Box::new(move |response| send(&writer, &response)));
            }
        }
    }
}

/// Serve connections from a Unix socket listener concurrently — one
/// handler thread per accepted connection, all sharing the single
/// [`Engine`] (and with it the worker pool and the warm compile cache) —
/// until a client sends `shutdown`. Peer disconnects (EOF) keep the
/// daemon alive for the next connection.
///
/// Handler threads are detached rather than joined: a lingering idle
/// client must not pin the daemon after another client has shut it down.
/// The engine's own `shutdown` drains in-flight work before the `bye`
/// response goes out, so detaching loses nothing — any still-connected
/// peers simply observe EOF when the process exits. The shutdown signal
/// reaches the acceptor through a flag plus a self-connection (the
/// acceptor is otherwise parked in `accept`, which has no timeout on a
/// blocking listener).
#[cfg(unix)]
pub fn serve_unix(
    engine: &Arc<Engine>,
    listener: &std::os::unix::net::UnixListener,
    max_frame: usize,
) -> io::Result<()> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let shutdown = Arc::new(AtomicBool::new(false));
    let wake_path = listener
        .local_addr()
        .ok()
        .and_then(|addr| addr.as_pathname().map(std::path::Path::to_path_buf));
    loop {
        let (stream, _addr) = listener.accept()?;
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let reader = stream.try_clone()?;
        let engine = Arc::clone(engine);
        let shutdown = Arc::clone(&shutdown);
        let wake_path = wake_path.clone();
        std::thread::spawn(move || {
            if let Ok(StreamEnd::Shutdown) = serve_stream(&engine, reader, stream, max_frame) {
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the acceptor; the queued wake connection makes
                // its `accept` return so it can observe the flag.
                if let Some(path) = wake_path {
                    let _ = std::os::unix::net::UnixStream::connect(path);
                }
            }
        });
    }
}
