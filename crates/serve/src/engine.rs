//! The compile engine behind `darm serve`: a bounded work queue, a
//! pool of worker threads, and the cross-run [`CompileCache`].
//!
//! Robustness invariants, in order of importance:
//!
//! 1. **The daemon never dies on a request.** Admission and every
//!    worker iteration run under `catch_unwind`; a panic anywhere in a
//!    request's path (including the injected `serve::*` fault sites)
//!    becomes a typed `internal` error response for that request alone.
//! 2. **Admission never blocks.** A full queue sheds the request with a
//!    typed `overloaded` response; the client decides whether to retry.
//! 3. **Every accepted request is answered.** Workers drain the
//!    backlog after [`Engine::shutdown`] closes the queue, and shutdown
//!    itself drains any leftovers inline — even an engine with zero
//!    workers answers everything it admitted.
//! 4. **Locks are poison-proof.** Every acquisition recovers via
//!    [`PoisonError::into_inner`]; [`Engine::poisoned_locks`] exposes
//!    the poison bits so the soak test can assert they stay clear.
//!
//! Compilation itself follows a fail-then-degrade retry policy: the
//! first attempt runs under [`OnError::Fail`] with a fresh per-request
//! [`Budget`]; if it faults, one retry runs under [`OnError::Degrade`]
//! (again with a fresh budget), pinning only the faulting functions to
//! their baseline IR. Deterministic faults (panics, pass errors) are
//! negatively cached so repeat offenders fail fast; budget exhaustion
//! is never cached.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use darm_analysis::verify_ssa;
use darm_ir::budget::{Budget, Cancelled};
use darm_ir::fault::{self, InjectedFault};
use darm_ir::parser::{fixup_types, parse_module};
use darm_ir::Module;
use darm_melding::MeldConfig;
use darm_pipeline::{
    FaultCause, FunctionOutcome, ModuleOptions, ModulePassManager, OnError, PassRegistry,
    PipelineError, PipelineOptions,
};

use crate::cache::{content_key, raw_key, CacheCounters, CachedOutcome, CompileCache, ContentKey};
use crate::json::Json;
use crate::proto::{CompileRequest, ErrorKind, FunctionResult, Response};
use crate::queue::{BoundedQueue, PushError};

/// Engine knobs. [`Default`] gives a single worker, a 64-deep queue and
/// a 4096-entry / 64 MiB cache compiling under the `meld` spec.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads. `0` spawns none: jobs queue up and are compiled
    /// inline when [`Engine::shutdown`] drains — useful for
    /// deterministic backpressure tests, not for serving.
    pub workers: usize,
    /// Queue capacity; admission beyond it sheds with `overloaded`.
    pub queue_depth: usize,
    /// Cache entry bound; `0` disables caching.
    pub cache_entries: usize,
    /// Cache payload-byte bound.
    pub cache_bytes: usize,
    /// Pass spec for requests that do not carry one.
    pub default_spec: String,
    /// Default wall-clock budget per request, in milliseconds.
    pub default_timeout_ms: Option<u64>,
    /// Default fuel budget per request.
    pub default_fuel: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_depth: 64,
            cache_entries: 4096,
            cache_bytes: 64 * 1024 * 1024,
            default_spec: "meld".to_string(),
            default_timeout_ms: None,
            default_fuel: None,
        }
    }
}

/// Monotonic engine counters (all atomics; read via [`Engine::stats_json`]).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    completed: AtomicU64,
    overloaded: AtomicU64,
    rejected_closed: AtomicU64,
    contained_panics: AtomicU64,
    degraded_retries: AtomicU64,
    protocol_errors: AtomicU64,
    fast_hits: AtomicU64,
}

/// Whole-request memo entry: the response payload of a fully optimized
/// compile, with every `cached` flag pre-set.
struct FastEntry {
    ir: String,
    functions: Vec<FunctionResult>,
}

impl FastEntry {
    /// Approximate heap cost, for the byte bound.
    fn cost(&self) -> usize {
        self.ir.len()
            + self
                .functions
                .iter()
                .map(|f| f.name.len() + f.diagnostic.as_deref().map_or(0, str::len))
                .sum::<usize>()
    }
}

/// Whole-request memo: the 128-bit [`ContentKey`] of
/// `canonical spec ∥ 0x00 ∥ raw input text` → the rendered payload of a
/// fully optimized response. A pure front for the per-function
/// [`CompileCache`]: a hit skips parsing and hashing entirely, and
/// entries can be dropped wholesale at any time without changing any
/// observable result — so eviction is a simple epoch clear rather than
/// LRU bookkeeping. Only fully *optimized* responses are memoized;
/// degraded and negatively-cached outcomes always route through the
/// function cache so fail-fast semantics (and their counters) stay
/// intact.
struct FastCache {
    map: std::collections::HashMap<ContentKey, FastEntry>,
    bytes: usize,
    max_entries: usize,
    max_bytes: usize,
}

impl FastCache {
    fn new(max_entries: usize, max_bytes: usize) -> FastCache {
        FastCache {
            map: std::collections::HashMap::new(),
            bytes: 0,
            max_entries,
            max_bytes,
        }
    }

    fn get(&self, key: ContentKey) -> Option<&FastEntry> {
        self.map.get(&key)
    }

    fn insert(&mut self, key: ContentKey, entry: FastEntry) {
        let cost = entry.cost();
        if self.max_entries == 0 || cost > self.max_bytes {
            return;
        }
        // Reclaim a replaced entry's budget *before* the capacity
        // check, so refreshing an existing key never triggers the
        // epoch clear when the swap itself frees enough room.
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.cost();
        }
        if self.map.len() >= self.max_entries || self.bytes + cost > self.max_bytes {
            self.map.clear();
            self.bytes = 0;
        }
        self.bytes += cost;
        self.map.insert(key, entry);
    }
}

struct Shared {
    config: ServeConfig,
    registry: PassRegistry,
    queue: BoundedQueue<Job>,
    cache: Mutex<CompileCache>,
    /// Memoized spec validation: raw request spelling → canonical form
    /// or the rendered spec error. Validating a spec means driving the
    /// registry's pass factories, which is far too expensive to redo on
    /// every warm hit.
    specs: Mutex<std::collections::HashMap<String, Result<String, String>>>,
    /// Whole-request fast path; shares the function cache's bounds.
    fast: Mutex<FastCache>,
    counters: Counters,
}

/// How a finished [`Response`] gets back to the client.
pub type Responder = Box<dyn FnOnce(Response) + Send + 'static>;

struct Job {
    request: CompileRequest,
    respond: Responder,
}

/// A running compile service.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Quiet hook for *typed, contained* unwinds (budget cancellations and
/// injected faults) so they do not spray "thread panicked" noise;
/// mirrors the pipeline's containment-boundary hook, which only
/// installs itself once a pipeline actually runs.
fn install_quiet_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let contained = p.downcast_ref::<Cancelled>().is_some()
                || p.downcast_ref::<InjectedFault>().is_some();
            if !contained {
                prev(info);
            }
        }));
    });
}

/// Renders a caught unwind payload for an `internal` error message.
fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(inj) = payload.downcast_ref::<InjectedFault>() {
        format!("injected fault at {}", inj.site)
    } else if let Some(c) = payload.downcast_ref::<Cancelled>() {
        format!("budget exhausted at {}", c.site)
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Engine {
    /// Builds the registry, spawns the workers and opens the doors.
    pub fn new(config: ServeConfig) -> Engine {
        install_quiet_panic_hook();
        let shared = Arc::new(Shared {
            registry: darm_melding::registry(&MeldConfig::default()),
            queue: BoundedQueue::new(config.queue_depth.max(1)),
            cache: Mutex::new(CompileCache::new(config.cache_entries, config.cache_bytes)),
            specs: Mutex::new(std::collections::HashMap::new()),
            fast: Mutex::new(FastCache::new(config.cache_entries, config.cache_bytes)),
            counters: Counters::default(),
            config,
        });
        let mut workers = Vec::new();
        for i in 0..shared.config.workers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("darm-serve-{i}"))
                .spawn(move || {
                    while let Some(job) = shared.queue.pop() {
                        Self::process_job(&shared, job);
                    }
                })
                .expect("spawn serve worker");
            workers.push(handle);
        }
        Engine {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Admit one compile request. Never blocks and never panics out:
    /// a full queue answers `overloaded`, a closed queue answers a
    /// typed error, and an injected admission fault answers `internal`.
    pub fn submit(&self, request: CompileRequest, respond: Responder) {
        let shared = &self.shared;
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let id = request.id;
        // The admission fault site fires *before* the job moves into
        // the queue, so on an injected panic the responder is still in
        // hand and the client gets a typed error instead of silence.
        if let Err(payload) = catch_unwind(|| fault::point("serve::admit")) {
            shared
                .counters
                .contained_panics
                .fetch_add(1, Ordering::Relaxed);
            respond(Response::Error {
                id: Some(id),
                kind: ErrorKind::Internal,
                message: describe_panic(payload.as_ref()),
            });
            return;
        }
        match shared.queue.try_push(Job { request, respond }) {
            Ok(_depth) => {}
            Err((job, PushError::Full)) => {
                shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                (job.respond)(Response::Overloaded {
                    id,
                    queue_depth: shared.queue.len(),
                });
            }
            Err((job, PushError::Closed)) => {
                shared
                    .counters
                    .rejected_closed
                    .fetch_add(1, Ordering::Relaxed);
                (job.respond)(Response::Error {
                    id: Some(id),
                    kind: ErrorKind::Internal,
                    message: "service is shutting down".to_string(),
                });
            }
        }
    }

    /// One worker iteration: compile under `catch_unwind`, then always
    /// answer. A panic in the compile path (or an injected
    /// `serve::worker` fault) becomes an `internal` error response.
    fn process_job(shared: &Shared, job: Job) {
        let id = job.request.id;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            fault::point("serve::worker");
            Self::handle_compile(shared, &job.request)
        }));
        let response = match outcome {
            Ok(response) => response,
            Err(payload) => {
                shared
                    .counters
                    .contained_panics
                    .fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    id: Some(id),
                    kind: ErrorKind::Internal,
                    message: describe_panic(payload.as_ref()),
                }
            }
        };
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        // A responder that panics (e.g. the peer vanished mid-write and
        // the transport chose to panic) must not kill the worker.
        let _ = catch_unwind(AssertUnwindSafe(move || (job.respond)(response)));
    }

    fn handle_compile(shared: &Shared, request: &CompileRequest) -> Response {
        let id = request.id;
        let error = |kind: ErrorKind, message: String| Response::Error {
            id: Some(id),
            kind,
            message,
        };

        // Canonicalise and validate the spec up front (memoized): cache
        // keys use the canonical spelling, and a bad spec must fail
        // fast rather than consult the cache.
        let spec_src = request
            .spec
            .as_deref()
            .unwrap_or(&shared.config.default_spec);
        let canonical = {
            let mut specs = shared.specs.lock().unwrap_or_else(PoisonError::into_inner);
            let entry = match specs.get(spec_src) {
                Some(entry) => entry.clone(),
                None => {
                    let validated = darm_pipeline::PassSpec::parse(spec_src)
                        .map_err(|e| format!("invalid pipeline spec: {e}"))
                        .map(|spec| spec.to_string())
                        .and_then(|canonical| {
                            ModulePassManager::new(
                                &shared.registry,
                                &canonical,
                                ModuleOptions::serial(PipelineOptions::default()),
                            )
                            .map(|_| canonical)
                            .map_err(|e| e.to_string())
                        });
                    if specs.len() >= 64 {
                        specs.clear(); // a flood of unique bad specs must not leak
                    }
                    specs.insert(spec_src.to_string(), validated.clone());
                    validated
                }
            };
            match entry {
                Ok(canonical) => canonical,
                Err(message) => return error(ErrorKind::Spec, message),
            }
        };

        // Whole-request fast path: a fully-warm request is answered
        // straight from the memo, before the input is even parsed. The
        // lookup fault site fires here — before either cache lock and
        // outside any lock hold — so an injected panic unwinds to the
        // worker boundary without poisoning anything.
        let fast_key = raw_key(&canonical, &request.ir);
        fault::point("serve::cache_lookup");
        {
            let fast = shared.fast.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(entry) = fast.get(fast_key) {
                shared.counters.fast_hits.fetch_add(1, Ordering::Relaxed);
                return Response::Ok {
                    id,
                    ir: entry.ir.clone(),
                    functions: entry.functions.clone(),
                };
            }
        }

        // Parse the input module. SSA verification is deferred to the
        // cache misses: a hit's content hash equals that of an input
        // that verified and compiled before, so re-verifying it would
        // only tax the warm path.
        let mut module = match parse_module(&request.ir) {
            Ok(module) => module,
            Err(e) => return error(ErrorKind::Parse, e.to_string()),
        };
        for func in module.functions_mut() {
            fixup_types(func);
        }

        // Per-function cache probe, one lock hold for the whole module.
        struct Slot {
            name: String,
            text: String,
            optimized: bool,
            cached: bool,
            diagnostic: Option<String>,
        }
        let mut slots: Vec<Option<Slot>> = Vec::with_capacity(module.functions().len());
        let mut misses: Vec<(usize, ContentKey)> = Vec::new();
        {
            // (The `serve::cache_lookup` fault site already fired above,
            // before the fast-path probe — once per request, outside
            // every lock hold.)
            let mut cache = shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
            for (index, func) in module.functions().iter().enumerate() {
                let key = content_key(&canonical, func);
                match cache.lookup(key) {
                    Some(CachedOutcome::Optimized { ir }) => slots.push(Some(Slot {
                        name: func.name().to_string(),
                        text: ir,
                        optimized: true,
                        cached: true,
                        diagnostic: None,
                    })),
                    Some(CachedOutcome::Degraded { ir, diagnostic }) => slots.push(Some(Slot {
                        name: func.name().to_string(),
                        text: ir,
                        optimized: false,
                        cached: true,
                        diagnostic: Some(diagnostic),
                    })),
                    None => {
                        slots.push(None);
                        misses.push((index, key));
                    }
                }
            }
        }

        // Verify only the misses: a hit's content hash matches an input
        // that already passed verification on its first compile, so the
        // warm path skips straight to the cached payload.
        for &(index, _) in &misses {
            let func = &module.functions()[index];
            if let Err(e) = verify_ssa(func) {
                return error(ErrorKind::Parse, format!("function @{}: {e}", func.name()));
            }
        }

        // Compile the misses: OnError::Fail first, one retry under
        // OnError::Degrade, each attempt with a fresh budget.
        if !misses.is_empty() {
            let miss_funcs: Vec<darm_ir::Function> = misses
                .iter()
                .map(|&(index, _)| module.functions()[index].clone())
                .collect();
            let budget = || {
                Budget::new(
                    request
                        .timeout_ms
                        .or(shared.config.default_timeout_ms)
                        .map(Duration::from_millis),
                    request.fuel.or(shared.config.default_fuel),
                )
            };
            let options = |on_error: OnError| ModuleOptions {
                pipeline: PipelineOptions {
                    budget: budget(),
                    ..PipelineOptions::default()
                },
                jobs: 1,
                on_error,
            };
            let build = |funcs: &[darm_ir::Function]| {
                Module::from_functions("serve", funcs.iter().cloned())
                    .expect("input module had unique names")
            };

            let mut compiled = build(&miss_funcs);
            let report = match ModulePassManager::compile(
                &shared.registry,
                &canonical,
                options(OnError::Fail),
                &mut compiled,
            ) {
                Ok(report) => report,
                Err(
                    e @ (PipelineError::Spec(_)
                    | PipelineError::UnknownPass { .. }
                    | PipelineError::BadParameter { .. }
                    | PipelineError::EmptySpec),
                ) => return error(ErrorKind::Spec, e.to_string()),
                Err(_faulted) => {
                    // Retry the whole miss set under degradation with a
                    // fresh budget; only the faulting functions end up
                    // pinned to baseline IR.
                    shared
                        .counters
                        .degraded_retries
                        .fetch_add(1, Ordering::Relaxed);
                    compiled = build(&miss_funcs);
                    match ModulePassManager::compile(
                        &shared.registry,
                        &canonical,
                        options(OnError::Degrade),
                        &mut compiled,
                    ) {
                        Ok(report) => report,
                        Err(e) => return error(ErrorKind::Internal, e.to_string()),
                    }
                }
            };

            // Same discipline as the lookup: fire the fault site
            // outside the lock hold.
            fault::point("serve::cache_insert");
            let mut cache = shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
            for (slot_pos, &(index, key)) in misses.iter().enumerate() {
                let func = &compiled.functions()[slot_pos];
                let func_report = &report.functions[slot_pos];
                let text = func.to_string();
                let slot = match &func_report.outcome {
                    FunctionOutcome::Optimized => {
                        cache.insert(key, CachedOutcome::Optimized { ir: text.clone() });
                        Slot {
                            name: func.name().to_string(),
                            text,
                            optimized: true,
                            cached: false,
                            diagnostic: None,
                        }
                    }
                    FunctionOutcome::Degraded(diag) => {
                        let rendered = diag.to_string();
                        // Negative-cache only deterministic causes: a
                        // panic or pass error will recur on the same
                        // input, budget exhaustion may not.
                        if matches!(diag.cause, FaultCause::Panic(_) | FaultCause::Error(_)) {
                            cache.insert(
                                key,
                                CachedOutcome::Degraded {
                                    ir: text.clone(),
                                    diagnostic: rendered.clone(),
                                },
                            );
                        }
                        Slot {
                            name: func.name().to_string(),
                            text,
                            optimized: false,
                            cached: false,
                            diagnostic: Some(rendered),
                        }
                    }
                };
                slots[index] = Some(slot);
            }
        }

        let slots: Vec<Slot> = slots
            .into_iter()
            .map(|slot| slot.expect("every function slot filled"))
            .collect();
        // Reassemble the module text exactly as `Module`'s `Display`
        // would print it: function texts separated by one blank line.
        let ir = slots
            .iter()
            .map(|slot| slot.text.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        let functions: Vec<FunctionResult> = slots
            .into_iter()
            .map(|slot| FunctionResult {
                name: slot.name,
                optimized: slot.optimized,
                cached: slot.cached,
                diagnostic: slot.diagnostic,
            })
            .collect();
        // Memoize fully optimized responses for the whole-request fast
        // path, with the `cached` flags pre-set the way a warm hit must
        // report them.
        if functions.iter().all(|f| f.optimized) {
            let memo = FastEntry {
                ir: ir.clone(),
                functions: functions
                    .iter()
                    .map(|f| FunctionResult {
                        cached: true,
                        ..f.clone()
                    })
                    .collect(),
            };
            shared
                .fast
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(fast_key, memo);
        }
        Response::Ok { id, ir, functions }
    }

    /// Counted by the transport when it answers a malformed frame.
    pub fn note_protocol_error(&self) {
        self.shared
            .counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of every counter, cache gauge and queue gauge.
    pub fn stats_json(&self) -> Json {
        let c = &self.shared.counters;
        let (cache_counters, cache_entries, cache_bytes) = {
            let cache = self
                .shared
                .cache
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            (cache.counters(), cache.len(), cache.bytes())
        };
        let cc = cache_counters;
        Json::obj([
            ("requests", Json::int(c.requests.load(Ordering::Relaxed))),
            ("completed", Json::int(c.completed.load(Ordering::Relaxed))),
            (
                "overloaded",
                Json::int(c.overloaded.load(Ordering::Relaxed)),
            ),
            (
                "rejected_closed",
                Json::int(c.rejected_closed.load(Ordering::Relaxed)),
            ),
            (
                "contained_panics",
                Json::int(c.contained_panics.load(Ordering::Relaxed)),
            ),
            (
                "degraded_retries",
                Json::int(c.degraded_retries.load(Ordering::Relaxed)),
            ),
            (
                "protocol_errors",
                Json::int(c.protocol_errors.load(Ordering::Relaxed)),
            ),
            (
                "cache",
                Json::obj([
                    ("fast_hits", Json::int(c.fast_hits.load(Ordering::Relaxed))),
                    ("fast_entries", Json::int(self.fast_entries() as u64)),
                    ("hits", Json::int(cc.hits)),
                    ("negative_hits", Json::int(cc.negative_hits)),
                    ("misses", Json::int(cc.misses)),
                    ("insertions", Json::int(cc.insertions)),
                    ("evictions", Json::int(cc.evictions)),
                    ("entries", Json::int(cache_entries as u64)),
                    ("bytes", Json::int(cache_bytes as u64)),
                ]),
            ),
            (
                "queue",
                Json::obj([
                    ("depth", Json::int(self.shared.queue.len() as u64)),
                    (
                        "high_water",
                        Json::int(self.shared.queue.high_water() as u64),
                    ),
                    (
                        "capacity",
                        Json::int(self.shared.config.queue_depth.max(1) as u64),
                    ),
                ]),
            ),
            ("workers", Json::int(self.shared.config.workers as u64)),
        ])
    }

    /// Cache counters for tests (hits/misses/insertions/evictions).
    pub fn cache_counters(&self) -> CacheCounters {
        self.shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .counters()
    }

    /// Current cache payload bytes — the soak test's RSS proxy.
    pub fn cache_bytes(&self) -> usize {
        self.shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .bytes()
    }

    /// Current cache entry count.
    pub fn cache_entries(&self) -> usize {
        self.shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whole-request fast-path hits.
    pub fn fast_hits(&self) -> u64 {
        self.shared.counters.fast_hits.load(Ordering::Relaxed)
    }

    /// Current whole-request memo entry count (bounded like the cache).
    pub fn fast_entries(&self) -> usize {
        self.shared
            .fast
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .len()
    }

    /// How many engine locks are poisoned (must be 0 even after
    /// injected panics — containment happens *outside* lock holds).
    pub fn poisoned_locks(&self) -> usize {
        usize::from(self.shared.cache.is_poisoned())
            + usize::from(self.shared.fast.is_poisoned())
            + usize::from(self.shared.specs.is_poisoned())
            + usize::from(self.shared.queue.is_poisoned())
            + usize::from(self.workers.is_poisoned())
    }

    /// Graceful drain: close the queue, let the workers finish the
    /// backlog, join them, then compile anything still queued inline
    /// (relevant only for zero-worker engines — with live workers the
    /// backlog is empty once they exit). Idempotent; returns the final
    /// stats snapshot for the transport to flush.
    pub fn shutdown(&self) -> Json {
        self.shared.queue.close();
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in handles {
            let _ = handle.join();
        }
        while let Some(job) = self.shared.queue.try_pop() {
            Self::process_job(&self.shared, job);
        }
        self.stats_json()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}
