//! Wire protocol for `darm serve`.
//!
//! Every message — in both directions — is a *frame*: a 4-byte
//! big-endian `u32` byte length followed by exactly that many bytes of
//! UTF-8 JSON.  Framing keeps the stream self-synchronising: a reader
//! always knows how many bytes belong to the current message, and an
//! oversized length can be skipped without losing frame alignment.
//!
//! Requests are JSON objects with an `"op"` discriminator:
//!
//! ```text
//! {"op":"compile","id":1,"ir":"fn f() { ... }","spec":"meld",
//!  "timeout_ms":2000,"fuel":1000000}
//! {"op":"ping","id":2}
//! {"op":"stats","id":3}
//! {"op":"shutdown","id":4}
//! ```
//!
//! Only `op` and `id` are mandatory (`ir` too, for `compile`); the
//! remaining fields fall back to the daemon's configured defaults.
//! Responses echo the request `id` and carry a `"status"`
//! discriminator: `ok`, `error`, `overloaded`, `pong`, `stats` or
//! `bye`.  See [`Response`] for the exact payloads.

use std::io::{self, Read, Write};

use crate::json::Json;

/// Hard ceiling on the frame length a reader will accept by default:
/// 16 MiB, far above any realistic module while still bounding memory.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Errors surfaced by [`read_frame`].
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended in the middle of a length prefix or body.
    Truncated,
    /// The declared length exceeds the reader's limit.  The body has
    /// already been consumed and discarded, so the stream remains
    /// aligned on the next frame.
    Oversized { len: usize, max: usize },
    /// An underlying I/O error other than clean end-of-stream.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds limit {max}")
            }
            FrameError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body exceeds u32"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Read one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF exactly at a frame
/// boundary).  EOF inside a prefix or body is [`FrameError::Truncated`];
/// a length above `max` drains the body and reports
/// [`FrameError::Oversized`] so the caller can answer with a typed
/// error and keep reading.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(FrameError::Io(err)),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max {
        // Drain and discard the oversized body so the next frame stays
        // aligned; truncation while draining is still truncation.
        let mut remaining = len as u64;
        while remaining > 0 {
            let take = remaining.min(64 * 1024);
            let copied =
                io::copy(&mut r.by_ref().take(take), &mut io::sink()).map_err(FrameError::Io)?;
            if copied == 0 {
                return Err(FrameError::Truncated);
            }
            remaining -= copied;
        }
        return Err(FrameError::Oversized { len, max });
    }
    let mut body = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut body[got..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(FrameError::Io(err)),
        }
    }
    Ok(Some(body))
}

/// A compile job: one module of textual IR plus per-request overrides.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    pub id: u64,
    pub ir: String,
    /// Pass spec; `None` falls back to the daemon default (`meld`).
    pub spec: Option<String>,
    /// Wall-clock budget override in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Fuel budget override (number of budget polls).
    pub fuel: Option<u64>,
}

/// A decoded client request.
#[derive(Debug, Clone)]
pub enum Request {
    Compile(CompileRequest),
    Ping { id: u64 },
    Stats { id: u64 },
    Shutdown { id: u64 },
}

impl Request {
    /// Decode a request from parsed JSON.  The error string is safe to
    /// echo back to the client in a `protocol` error response.
    pub fn from_json(json: &Json) -> Result<Request, String> {
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"op\"".to_string())?;
        let id = json
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing integer field \"id\"".to_string())?;
        match op {
            "compile" => {
                let ir = json
                    .get("ir")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "compile request missing string field \"ir\"".to_string())?
                    .to_string();
                let spec = json.get("spec").and_then(Json::as_str).map(str::to_string);
                let timeout_ms = json.get("timeout_ms").and_then(Json::as_u64);
                let fuel = json.get("fuel").and_then(Json::as_u64);
                Ok(Request::Compile(CompileRequest {
                    id,
                    ir,
                    spec,
                    timeout_ms,
                    fuel,
                }))
            }
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    pub fn id(&self) -> u64 {
        match self {
            Request::Compile(req) => req.id,
            Request::Ping { id } | Request::Stats { id } | Request::Shutdown { id } => *id,
        }
    }
}

/// Error categories carried on `status: "error"` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed frame or JSON, or a request that does not follow the
    /// protocol grammar.
    Protocol,
    /// The input IR failed to parse or verify.
    Parse,
    /// The pass spec was rejected (unknown pass, bad parameter, ...).
    Spec,
    /// A contained internal failure (panic or pipeline error that
    /// survived the degradation retry).
    Internal,
}

impl ErrorKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Parse => "parse",
            ErrorKind::Spec => "spec",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Per-function outcome attached to an `ok` response.
#[derive(Debug, Clone)]
pub struct FunctionResult {
    pub name: String,
    /// `true` when the pipeline finished; `false` when the function was
    /// degraded to its baseline IR.
    pub optimized: bool,
    /// `true` when this result was served from the cross-run cache.
    pub cached: bool,
    /// Human-readable diagnostic for degraded functions.
    pub diagnostic: Option<String>,
}

/// A server reply.  `to_json` renders the stable wire shape; key order
/// is deterministic (objects sort their keys), which is what makes the
/// warm-vs-cold byte-identity checks possible.
#[derive(Debug)]
pub enum Response {
    Ok {
        id: u64,
        ir: String,
        functions: Vec<FunctionResult>,
    },
    Error {
        /// `None` when the request was too malformed to carry an id.
        id: Option<u64>,
        kind: ErrorKind,
        message: String,
    },
    Overloaded {
        id: u64,
        queue_depth: usize,
    },
    Pong {
        id: u64,
    },
    Stats {
        id: u64,
        body: Json,
    },
    Bye {
        id: u64,
        /// Final stats snapshot, flushed after the drain.
        stats: Json,
    },
}

impl Response {
    pub fn to_json(&self) -> Json {
        match self {
            Response::Ok { id, ir, functions } => {
                let funcs = functions
                    .iter()
                    .map(|f| {
                        let mut pairs = vec![
                            ("name", Json::str(&f.name)),
                            (
                                "outcome",
                                Json::str(if f.optimized { "optimized" } else { "degraded" }),
                            ),
                            ("cached", Json::Bool(f.cached)),
                        ];
                        if let Some(diag) = &f.diagnostic {
                            pairs.push(("diagnostic", Json::str(diag)));
                        }
                        Json::obj(pairs)
                    })
                    .collect();
                Json::obj([
                    ("status", Json::str("ok")),
                    ("id", Json::int(*id)),
                    ("ir", Json::str(ir)),
                    ("functions", Json::Arr(funcs)),
                ])
            }
            Response::Error { id, kind, message } => {
                let mut pairs = vec![
                    ("status", Json::str("error")),
                    ("kind", Json::str(kind.as_str())),
                    ("message", Json::str(message)),
                ];
                if let Some(id) = id {
                    pairs.push(("id", Json::int(*id)));
                }
                Json::obj(pairs)
            }
            Response::Overloaded { id, queue_depth } => Json::obj([
                ("status", Json::str("overloaded")),
                ("id", Json::int(*id)),
                ("queue_depth", Json::int(*queue_depth as u64)),
            ]),
            Response::Pong { id } => {
                Json::obj([("status", Json::str("pong")), ("id", Json::int(*id))])
            }
            Response::Stats { id, body } => Json::obj([
                ("status", Json::str("stats")),
                ("id", Json::int(*id)),
                ("stats", body.clone()),
            ]),
            Response::Bye { id, stats } => Json::obj([
                ("status", Json::str("bye")),
                ("id", Json::int(*id)),
                ("stats", stats.clone()),
            ]),
        }
    }

    /// Render straight to frame-ready bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_json().to_string().into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b""
        );
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .is_none());
    }

    #[test]
    fn truncated_prefix_and_body_are_detected() {
        let mut cursor = Cursor::new(vec![0u8, 0, 0]);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Err(FrameError::Truncated)
        ));
        let mut body = Vec::new();
        write_frame(&mut body, b"full message").unwrap();
        body.truncate(8);
        let mut cursor = Cursor::new(body);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn oversized_frame_is_drained_and_stream_stays_aligned() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[b'x'; 100]).unwrap();
        write_frame(&mut buf, b"next").unwrap();
        let mut cursor = Cursor::new(buf);
        match read_frame(&mut cursor, 10) {
            Err(FrameError::Oversized { len: 100, max: 10 }) => {}
            other => panic!("expected oversized, got {other:?}"),
        }
        assert_eq!(read_frame(&mut cursor, 10).unwrap().unwrap(), b"next");
    }

    #[test]
    fn request_decoding() {
        let json =
            Json::parse(r#"{"op":"compile","id":7,"ir":"fn f() {}","spec":"meld","fuel":10}"#)
                .unwrap();
        match Request::from_json(&json).unwrap() {
            Request::Compile(req) => {
                assert_eq!(req.id, 7);
                assert_eq!(req.spec.as_deref(), Some("meld"));
                assert_eq!(req.fuel, Some(10));
                assert_eq!(req.timeout_ms, None);
            }
            other => panic!("expected compile, got {other:?}"),
        }
        let ping = Json::parse(r#"{"op":"ping","id":1}"#).unwrap();
        assert!(matches!(
            Request::from_json(&ping).unwrap(),
            Request::Ping { id: 1 }
        ));
        let bad = Json::parse(r#"{"op":"fly","id":1}"#).unwrap();
        assert!(Request::from_json(&bad).unwrap_err().contains("unknown op"));
        let no_id = Json::parse(r#"{"op":"ping"}"#).unwrap();
        assert!(Request::from_json(&no_id).unwrap_err().contains("\"id\""));
    }

    #[test]
    fn response_rendering_is_deterministic() {
        let resp = Response::Ok {
            id: 3,
            ir: "fn f() {}".into(),
            functions: vec![FunctionResult {
                name: "f".into(),
                optimized: false,
                cached: true,
                diagnostic: Some("pass panicked".into()),
            }],
        };
        let text = resp.to_json().to_string();
        assert_eq!(
            text,
            "{\"functions\":[{\"cached\":true,\"diagnostic\":\"pass panicked\",\
             \"name\":\"f\",\"outcome\":\"degraded\"}],\"id\":3,\
             \"ir\":\"fn f() {}\",\"status\":\"ok\"}"
        );
        assert_eq!(text, resp.to_json().to_string());
    }
}
