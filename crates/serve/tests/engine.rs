//! Engine-level integration tests: admission backpressure, drain
//! shutdown, cache behavior across requests, and warm-vs-cold
//! byte-identity of rendered responses.

use std::sync::mpsc;

use darm_serve::proto::CompileRequest;
use darm_serve::{Engine, Response, ServeConfig};

const KERNEL: &str = r#"
fn @cli_demo(ptr(global) %arg0) -> void {
entry:
  %0 = tid.x
  %1 = and %0, 1
  %2 = icmp eq %1, 0
  br %2, t, e
t:
  %3 = mul %0, 3
  %4 = add %3, 10
  %5 = gep i32 %arg0, %0
  store %4, %5
  jump x
e:
  %6 = mul %0, 5
  %7 = add %6, 77
  %8 = gep i32 %arg0, %0
  store %7, %8
  jump x
x:
  ret
}
"#;

fn request(id: u64, ir: &str) -> CompileRequest {
    CompileRequest {
        id,
        ir: ir.to_string(),
        spec: None,
        timeout_ms: None,
        fuel: None,
    }
}

/// Submit and wait for the response (requires a live worker).
fn compile(engine: &Engine, req: CompileRequest) -> Response {
    let (tx, rx) = mpsc::channel();
    engine.submit(req, Box::new(move |resp| tx.send(resp).unwrap()));
    rx.recv().expect("engine answered")
}

#[test]
fn warm_hit_is_byte_identical_to_cold_response() {
    let engine = Engine::new(ServeConfig::default());
    let cold = compile(&engine, request(1, KERNEL));
    let warm = compile(&engine, request(1, KERNEL));
    let (cold_bytes, warm_bytes) = (cold.to_bytes(), warm.to_bytes());
    match (&cold, &warm) {
        (
            Response::Ok {
                ir: cold_ir,
                functions: cold_fns,
                ..
            },
            Response::Ok {
                ir: warm_ir,
                functions: warm_fns,
                ..
            },
        ) => {
            assert_eq!(cold_ir, warm_ir);
            assert!(cold_ir.contains("select"), "expected melded output");
            assert!(!cold_fns[0].cached);
            assert!(warm_fns[0].cached);
        }
        other => panic!("expected ok responses, got {other:?}"),
    }
    // The `cached` flag is metadata, not payload: strip it and the
    // responses must be byte-identical. (Same id on purpose.)
    let strip = |bytes: &[u8]| {
        String::from_utf8(bytes.to_vec())
            .unwrap()
            .replace("\"cached\":false", "\"cached\":true")
    };
    assert_eq!(strip(&cold_bytes), strip(&warm_bytes));
    // The repeat is answered by the whole-request memo, never reaching
    // the per-function cache.
    assert_eq!(engine.fast_hits(), 1);
    let counters = engine.cache_counters();
    assert_eq!(counters.hits, 0);
    assert_eq!(counters.misses, 1);
    assert_eq!(counters.insertions, 1);
}

#[test]
fn zero_worker_engine_sheds_overload_and_drains_at_shutdown() {
    let engine = Engine::new(ServeConfig {
        workers: 0,
        queue_depth: 2,
        ..ServeConfig::default()
    });
    let (tx, rx) = mpsc::channel();
    for id in 0..4 {
        let tx = tx.clone();
        engine.submit(
            request(id, KERNEL),
            Box::new(move |resp| tx.send((id, resp)).unwrap()),
        );
    }
    // With no workers, the first two requests sit in the queue; the
    // rest shed immediately with typed overload responses.
    let mut shed = Vec::new();
    for _ in 0..2 {
        let (id, resp) = rx.recv().unwrap();
        assert!(
            matches!(resp, Response::Overloaded { .. }),
            "expected overloaded for {id}, got {resp:?}"
        );
        shed.push(id);
    }
    assert_eq!(shed, vec![2, 3]);
    // Shutdown drains the backlog inline: every admitted request still
    // gets a real answer.
    engine.shutdown();
    let mut answered = Vec::new();
    while let Ok((id, resp)) = rx.try_recv() {
        assert!(matches!(resp, Response::Ok { .. }), "got {resp:?}");
        answered.push(id);
    }
    answered.sort_unstable();
    assert_eq!(answered, vec![0, 1]);
    assert_eq!(engine.poisoned_locks(), 0);
}

#[test]
fn submissions_after_shutdown_get_typed_errors() {
    let engine = Engine::new(ServeConfig::default());
    engine.shutdown();
    let resp = {
        let (tx, rx) = mpsc::channel();
        engine.submit(request(9, KERNEL), Box::new(move |r| tx.send(r).unwrap()));
        rx.recv().unwrap()
    };
    match resp {
        Response::Error { id, message, .. } => {
            assert_eq!(id, Some(9));
            assert!(message.contains("shutting down"), "{message}");
        }
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn bad_input_and_bad_spec_yield_typed_errors_and_service_survives() {
    let engine = Engine::new(ServeConfig::default());
    let parse_err = compile(&engine, request(1, "fn @broken( {"));
    assert!(
        matches!(&parse_err, Response::Error { kind, .. } if kind.as_str() == "parse"),
        "{parse_err:?}"
    );
    let mut bad_spec = request(2, KERNEL);
    bad_spec.spec = Some("no-such-pass".to_string());
    let spec_err = compile(&engine, bad_spec);
    assert!(
        matches!(&spec_err, Response::Error { kind, .. } if kind.as_str() == "spec"),
        "{spec_err:?}"
    );
    // The daemon still compiles fine afterwards.
    let ok = compile(&engine, request(3, KERNEL));
    assert!(matches!(ok, Response::Ok { .. }), "{ok:?}");
}

#[test]
fn equivalent_spec_spellings_share_cache_entries() {
    let engine = Engine::new(ServeConfig::default());
    let mut first = request(1, KERNEL);
    first.spec = Some("meld".to_string());
    let mut second = request(2, KERNEL);
    // Same canonical pipeline, different spelling (whitespace).
    second.spec = Some(" meld ".to_string());
    assert!(matches!(compile(&engine, first), Response::Ok { .. }));
    match compile(&engine, second) {
        Response::Ok { functions, .. } => assert!(functions[0].cached),
        other => panic!("expected ok, got {other:?}"),
    }
    // Both the whole-request memo and the function cache key on the
    // *canonical* spec, so the respelled request is a fast-path hit.
    assert_eq!(engine.fast_hits(), 1);
}

#[test]
fn cache_stays_within_bounds_under_churn() {
    let engine = Engine::new(ServeConfig {
        cache_entries: 8,
        cache_bytes: 16 * 1024,
        ..ServeConfig::default()
    });
    // 32 distinct modules (mutated constant) → at most 8 entries live.
    for i in 0..32u64 {
        let ir = KERNEL.replace(", 77", &format!(", {}", 100 + i));
        let resp = compile(&engine, request(i, &ir));
        assert!(matches!(resp, Response::Ok { .. }), "{resp:?}");
    }
    assert!(engine.cache_entries() <= 8);
    assert!(engine.cache_bytes() <= 16 * 1024);
    assert!(engine.fast_entries() <= 8);
    assert_eq!(engine.cache_counters().evictions, 32 - 8);
    assert_eq!(engine.poisoned_locks(), 0);
}

#[test]
fn multi_function_module_mixes_cached_and_fresh() {
    let engine = Engine::new(ServeConfig::default());
    // Prime the cache with the single-function module.
    assert!(matches!(
        compile(&engine, request(1, KERNEL)),
        Response::Ok { .. }
    ));
    // A module with the cached function plus a new one: the cached one
    // is served warm, the new one compiles.
    let second = KERNEL
        .replace("@cli_demo", "@other")
        .replace(", 77", ", 99");
    let both = format!("{}\n{}", KERNEL.trim_start(), second.trim_start());
    match compile(&engine, request(2, &both)) {
        Response::Ok { functions, ir, .. } => {
            assert_eq!(functions.len(), 2);
            assert!(functions[0].cached, "{functions:?}");
            assert!(!functions[1].cached, "{functions:?}");
            assert!(ir.contains("@cli_demo") && ir.contains("@other"));
        }
        other => panic!("expected ok, got {other:?}"),
    }
}
