//! Property tests for the pipeline-spec grammar: rendering is canonical
//! and parsing is its exact inverse — `parse(render(spec)) == spec` for
//! random parameterized/nested specs — plus pinned error-message tests
//! for the two common spec mistakes (unbalanced parens, bad parameter
//! keys).

use darm_pipeline::{PassRegistry, PassSpec, PipelineError, PipelineOptions, SpecElem};
use proptest::prelude::*;

/// Draws a word from the spec alphabet (letters, digits, `_`, `.`, `-`),
/// never starting with a character that could glue to a neighbor — the
/// alphabet has no separators, so any nonempty word works.
fn word(bytes: &[u8], salt: usize) -> String {
    const ALPHABET: &[u8] = b"abcxyz019_.-";
    let len = 1 + (bytes.get(salt).copied().unwrap_or(1) as usize % 6);
    (0..len)
        .map(|i| {
            let b = bytes.get(salt + 1 + i).copied().unwrap_or(7) as usize;
            ALPHABET[b % ALPHABET.len()] as char
        })
        .collect()
}

/// Builds a random spec AST from a byte script: a recursive-descent
/// *generator* mirroring the grammar, with depth-bounded fixpoint
/// nesting. (The offline proptest stand-in has no `prop_recursive`, so
/// recursion is driven by the script instead.)
fn build_elem(bytes: &[u8], pos: &mut usize, depth: usize) -> SpecElem {
    let next = |pos: &mut usize| {
        let b = bytes.get(*pos).copied().unwrap_or(0);
        *pos += 1;
        b
    };
    let kind = next(pos);
    if depth < 2 && kind % 4 == 0 {
        let n = 1 + (next(pos) as usize % 3);
        let elems = (0..n).map(|_| build_elem(bytes, pos, depth + 1)).collect();
        let max = match next(pos) {
            b if b % 3 == 0 => Some(next(pos) as usize),
            _ => None,
        };
        return SpecElem::Fixpoint { elems, max };
    }
    let name = loop {
        let w = word(bytes, *pos);
        *pos += 2;
        // `fixpoint` is a keyword, never a generated pass name.
        if w != "fixpoint" {
            break w;
        }
    };
    let n_params = next(pos) as usize % 3;
    let params = (0..n_params)
        .map(|_| {
            let k = word(bytes, *pos);
            *pos += 2;
            let v = word(bytes, *pos);
            *pos += 2;
            (k, v)
        })
        .collect();
    SpecElem::Pass { name, params }
}

fn build_spec(bytes: &[u8]) -> PassSpec {
    let mut pos = 0;
    let n = 1 + (bytes.first().copied().unwrap_or(0) as usize % 4);
    pos += 1;
    PassSpec {
        elems: (0..n).map(|_| build_elem(bytes, &mut pos, 0)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `parse` inverts `render` exactly, on random parameterized and
    /// nested specs.
    #[test]
    fn parse_render_round_trips(bytes in proptest::collection::vec(any::<u8>(), 1..64)) {
        let spec = build_spec(&bytes);
        let rendered = spec.to_string();
        let reparsed = PassSpec::parse(&rendered)
            .unwrap_or_else(|e| panic!("render produced an unparseable spec `{rendered}`: {e}"));
        prop_assert_eq!(&reparsed, &spec, "round trip diverged through `{}`", rendered);
        // Rendering is canonical: a second trip is a fixed point.
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    /// Whitespace never changes the parse: spraying spaces around
    /// separators yields the same AST.
    #[test]
    fn whitespace_is_insignificant(bytes in proptest::collection::vec(any::<u8>(), 1..48)) {
        let spec = build_spec(&bytes);
        let spaced: String = spec
            .to_string()
            .chars()
            .flat_map(|c| if matches!(c, ',' | '(' | ')' | '=') {
                vec![' ', c, ' ']
            } else {
                vec![c]
            })
            .collect();
        prop_assert_eq!(PassSpec::parse(&spaced).unwrap(), spec);
    }
}

// ---- pinned error messages ----

#[test]
fn unbalanced_parens_are_positioned_errors() {
    // Missing closer: the error points at end-of-spec and names both
    // continuations.
    let e = PassSpec::parse("meld(threshold=0.3),fixpoint(simplify,dce").unwrap_err();
    assert_eq!(e.span, (41, 41));
    assert_eq!(e.found, "end of spec");
    assert_eq!(e.expected, "`,` or `)` in the fixpoint group");
    assert_eq!(
        e.to_string(),
        "at 41..41: expected `,` or `)` in the fixpoint group, found end of spec"
    );

    // Unclosed parameter list.
    let e = PassSpec::parse("meld(threshold=0.3").unwrap_err();
    assert_eq!(e.found, "end of spec");
    assert_eq!(e.expected, "`,` or `)` in the parameter list");

    // Stray closer: the error carries the token and its exact span.
    let e = PassSpec::parse("simplify,dce)").unwrap_err();
    assert_eq!(e.span, (12, 13));
    assert_eq!(e.found, "`)`");
    assert_eq!(e.expected, "`,` or end of spec");
}

#[test]
fn bad_parameter_keys_name_the_rejecting_pass() {
    let r = PassRegistry::with_transforms();
    // Unknown key on a pass that takes parameters.
    let e = r
        .build("dce(scopde=false)", PipelineOptions::default())
        .unwrap_err();
    assert_eq!(
        e.to_string(),
        "pass 'dce': unknown parameter `scopde` (=`false`)"
    );
    assert!(matches!(e, PipelineError::BadParameter { pass, .. } if pass == "dce"));

    // Any key on a pass that takes none.
    let e = r
        .build("verify(fast=true)", PipelineOptions::default())
        .unwrap_err();
    assert_eq!(
        e.to_string(),
        "pass 'verify': unknown parameter `fast` (=`true`)"
    );

    // A key whose value fails to parse is also a parameter error.
    let e = r
        .build("dce(scoped=0.5)", PipelineOptions::default())
        .unwrap_err();
    assert_eq!(
        e.to_string(),
        "pass 'dce': parameter `scoped`: cannot parse `0.5` as bool"
    );
}
