//! The pipeline-spec language: pass names with `key=value` parameters and
//! nested `fixpoint(...)` groups.
//!
//! ```text
//! spec     := elem (',' elem)*
//! elem     := 'fixpoint' '(' item (',' item)* ')'   -- a fixpoint group
//!           | NAME [ '(' param (',' param)* ')' ]   -- one pass
//! item     := 'max' '=' INT                         -- group iteration cap
//!           | elem
//! param    := KEY '=' VALUE
//! ```
//!
//! `NAME`/`KEY`/`VALUE` are bare words over `[A-Za-z0-9_.-]` (so numbers
//! like `0.3` need no quoting); whitespace is insignificant. Flat name
//! lists — the pre-grammar spec form, `"simplify,meld,dce"` — parse
//! unchanged. Examples:
//!
//! ```text
//! meld(threshold=0.3),fixpoint(simplify,dce)
//! meld-bf,fixpoint(instcombine,dce,max=4)
//! fixpoint(simplify,fixpoint(instcombine,dce))
//! ```
//!
//! [`PassSpec::parse`] produces the AST; rendering it (via
//! [`Display`](std::fmt::Display)) is canonical and round-trips:
//! `parse(render(spec)) == spec`. Errors are positioned — a [`SpecError`]
//! carries the byte span of the offending token and what was expected
//! there.
//!
//! Parameter *keys* are validated later, when a
//! [`PassRegistry`](crate::PassRegistry) instantiates the spec — the
//! grammar does not know which keys a pass accepts.

use std::fmt;

/// A positioned spec parse error: what was found at `span`, what the
/// grammar expected instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Byte span `[start, end)` of the offending token (empty at end of
    /// input).
    pub span: (usize, usize),
    /// Rendering of the offending token, or `"end of spec"`.
    pub found: String,
    /// What the grammar expected at that position.
    pub expected: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "at {}..{}: expected {}, found {}",
            self.span.0, self.span.1, self.expected, self.found
        )
    }
}

impl std::error::Error for SpecError {}

/// One element of a pipeline spec.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecElem {
    /// A single pass invocation with its `key=value` parameters, in spec
    /// order.
    Pass {
        /// Registered pass name.
        name: String,
        /// `key=value` parameters, in written order.
        params: Vec<(String, String)>,
    },
    /// A `fixpoint(...)` group: the inner sequence re-runs until a full
    /// round changes nothing (or `max` rounds have run).
    Fixpoint {
        /// Inner elements, in order.
        elems: Vec<SpecElem>,
        /// Optional iteration cap (`max=N`).
        max: Option<usize>,
    },
}

/// A parsed pipeline spec: a sequence of [`SpecElem`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct PassSpec {
    /// Top-level elements, in pipeline order.
    pub elems: Vec<SpecElem>,
}

// ---- rendering (canonical form) ----

impl fmt::Display for SpecElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecElem::Pass { name, params } => {
                write!(f, "{name}")?;
                if !params.is_empty() {
                    write!(f, "(")?;
                    for (i, (k, v)) in params.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{k}={v}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            SpecElem::Fixpoint { elems, max } => {
                write!(f, "fixpoint(")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                if let Some(m) = max {
                    write!(f, ",max={m}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for PassSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

// ---- lexer ----

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Word(String),
    LParen,
    RParen,
    Comma,
    Eq,
}

impl Tok {
    fn render(&self) -> String {
        match self {
            Tok::Word(w) => format!("`{w}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Eq => "`=`".into(),
        }
    }
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-')
}

/// A token plus its byte span in the source.
type SpannedTok = (Tok, (usize, usize));

fn lex(src: &str) -> Result<Vec<SpannedTok>, SpecError> {
    let mut toks = Vec::new();
    let mut it = src.char_indices().peekable();
    while let Some(&(i, c)) = it.peek() {
        if c.is_whitespace() {
            it.next();
            continue;
        }
        let tok = match c {
            '(' => Some(Tok::LParen),
            ')' => Some(Tok::RParen),
            ',' => Some(Tok::Comma),
            '=' => Some(Tok::Eq),
            _ => None,
        };
        if let Some(tok) = tok {
            it.next();
            toks.push((tok, (i, i + c.len_utf8())));
            continue;
        }
        if !is_word_char(c) {
            return Err(SpecError {
                span: (i, i + c.len_utf8()),
                found: format!("`{c}`"),
                expected: "a pass name, `(`, `)`, `,` or `=`".into(),
            });
        }
        let start = i;
        let mut end = i;
        while let Some(&(j, cj)) = it.peek() {
            if !is_word_char(cj) {
                break;
            }
            end = j + cj.len_utf8();
            it.next();
        }
        toks.push((Tok::Word(src[start..end].to_string()), (start, end)));
    }
    Ok(toks)
}

// ---- parser ----

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    eof: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn span(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .map(|&(_, s)| s)
            .unwrap_or((self.eof, self.eof))
    }

    fn found(&self) -> String {
        self.peek()
            .map(Tok::render)
            .unwrap_or_else(|| "end of spec".into())
    }

    fn error<T>(&self, expected: impl Into<String>) -> Result<T, SpecError> {
        Err(SpecError {
            span: self.span(),
            found: self.found(),
            expected: expected.into(),
        })
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        self.pos += 1;
        t
    }

    fn eat(&mut self, tok: &Tok, expected: &str) -> Result<(), SpecError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(expected)
        }
    }

    fn word(&mut self, expected: &str) -> Result<String, SpecError> {
        match self.peek() {
            Some(Tok::Word(_)) => match self.bump() {
                Tok::Word(w) => Ok(w),
                _ => unreachable!(),
            },
            _ => self.error(expected),
        }
    }

    fn elem(&mut self) -> Result<SpecElem, SpecError> {
        let name = self.word("a pass name")?;
        if name == "fixpoint" {
            self.eat(&Tok::LParen, "`(` opening the fixpoint group")?;
            let mut elems = Vec::new();
            let mut max = None;
            loop {
                // `max=N` is a group parameter; anything else is a nested
                // element (distinguished by one-token lookahead for `=`).
                if let (Some(Tok::Word(w)), Some(Tok::Eq)) = (self.peek(), self.peek2()) {
                    if w != "max" {
                        return self.error("a pass, nested fixpoint, or `max=N`");
                    }
                    let key_span = self.span();
                    self.bump();
                    self.bump();
                    let v = self.word("an iteration count after `max=`")?;
                    let n: usize = v.parse().map_err(|_| SpecError {
                        span: key_span,
                        found: format!("`max={v}`"),
                        expected: "a positive integer iteration count".into(),
                    })?;
                    if max.replace(n).is_some() {
                        return Err(SpecError {
                            span: key_span,
                            found: "`max`".into(),
                            expected: "at most one `max=N` per fixpoint group".into(),
                        });
                    }
                } else {
                    elems.push(self.elem()?);
                }
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.pos += 1;
                    }
                    Some(Tok::RParen) => {
                        self.pos += 1;
                        break;
                    }
                    _ => return self.error("`,` or `)` in the fixpoint group"),
                }
            }
            if elems.is_empty() {
                return self.error("at least one pass inside fixpoint(...)");
            }
            return Ok(SpecElem::Fixpoint { elems, max });
        }
        let mut params = Vec::new();
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            loop {
                let key = self.word("a parameter key")?;
                self.eat(&Tok::Eq, "`=` after the parameter key")?;
                let value = self.word("a parameter value")?;
                params.push((key, value));
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.pos += 1;
                    }
                    Some(Tok::RParen) => {
                        self.pos += 1;
                        break;
                    }
                    _ => return self.error("`,` or `)` in the parameter list"),
                }
            }
        }
        Ok(SpecElem::Pass { name, params })
    }
}

impl PassSpec {
    /// Parses a spec text into its AST.
    ///
    /// # Errors
    ///
    /// A positioned [`SpecError`] on the first token violating the
    /// grammar. An all-whitespace spec yields an empty element list (the
    /// registry rejects it as an empty pipeline).
    pub fn parse(src: &str) -> Result<PassSpec, SpecError> {
        let toks = lex(src)?;
        let mut p = Parser {
            toks,
            pos: 0,
            eof: src.len(),
        };
        let mut elems = Vec::new();
        // Tolerate leading/trailing/duplicate commas, as the flat-list
        // parser did ("simplify, ,dce" was accepted).
        loop {
            while p.peek() == Some(&Tok::Comma) {
                p.pos += 1;
            }
            if p.peek().is_none() {
                break;
            }
            elems.push(p.elem()?);
            match p.peek() {
                None => break,
                Some(Tok::Comma) => {}
                Some(_) => return p.error("`,` or end of spec"),
            }
        }
        Ok(PassSpec { elems })
    }

    /// Convenience constructor for a flat, parameterless pass list.
    pub fn flat(names: &[&str]) -> PassSpec {
        PassSpec {
            elems: names
                .iter()
                .map(|n| SpecElem::Pass {
                    name: n.to_string(),
                    params: Vec::new(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass(name: &str) -> SpecElem {
        SpecElem::Pass {
            name: name.into(),
            params: vec![],
        }
    }

    #[test]
    fn parses_flat_lists_as_before() {
        let s = PassSpec::parse(" simplify, dce ,instcombine ").unwrap();
        assert_eq!(
            s.elems,
            vec![pass("simplify"), pass("dce"), pass("instcombine")]
        );
        assert_eq!(s.to_string(), "simplify,dce,instcombine");
    }

    #[test]
    fn parses_parameters_and_fixpoints() {
        let s =
            PassSpec::parse("meld(threshold=0.3,mode=bf),fixpoint(simplify,dce,max=4)").unwrap();
        assert_eq!(
            s.elems,
            vec![
                SpecElem::Pass {
                    name: "meld".into(),
                    params: vec![
                        ("threshold".into(), "0.3".into()),
                        ("mode".into(), "bf".into())
                    ],
                },
                SpecElem::Fixpoint {
                    elems: vec![pass("simplify"), pass("dce")],
                    max: Some(4),
                },
            ]
        );
        // Canonical rendering round-trips.
        assert_eq!(PassSpec::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn parses_nested_fixpoints() {
        let s = PassSpec::parse("fixpoint(simplify,fixpoint(instcombine,dce))").unwrap();
        let SpecElem::Fixpoint { elems, max } = &s.elems[0] else {
            panic!("not a fixpoint: {s:?}");
        };
        assert_eq!(*max, None);
        assert!(matches!(&elems[1], SpecElem::Fixpoint { elems: inner, .. } if inner.len() == 2));
    }

    #[test]
    fn positions_errors_on_the_offending_token() {
        let e = PassSpec::parse("simplify,fixpoint(dce").unwrap_err();
        assert_eq!(e.span, (21, 21), "{e}");
        assert_eq!(e.found, "end of spec");
        assert!(e.expected.contains("`,` or `)`"), "{e}");

        let e = PassSpec::parse("meld(threshold)").unwrap_err();
        assert!(e.expected.contains("`=`"), "{e}");
        assert_eq!(e.span, (14, 15));

        let e = PassSpec::parse("dce)").unwrap_err();
        assert_eq!(e.found, "`)`");
        assert!(e.expected.contains("end of spec"), "{e}");

        let e = PassSpec::parse("fixpoint()").unwrap_err();
        assert!(e.expected.contains("a pass name"), "{e}");

        let e = PassSpec::parse("fixpoint(max=3)").unwrap_err();
        assert!(e.expected.contains("at least one pass"), "{e}");

        let e = PassSpec::parse("fixpoint(dce,max=x)").unwrap_err();
        assert!(e.expected.contains("integer"), "{e}");
    }
}
