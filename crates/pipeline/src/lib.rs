#![warn(missing_docs)]

//! # darm-pipeline
//!
//! An LLVM-style pass pipeline for `darm-ir`, at two levels:
//!
//! * **Function level** — one [`PassManager`] owns the transformation
//!   sequence, one [`AnalysisManager`]
//!   caches the analyses, and every transform — the cleanups in
//!   `darm-transforms` as much as the melding pass in `darm-melding` —
//!   runs as a [`Pass`] trait object.
//! * **Module level** — a [`ModulePassManager`] parses a pipeline spec
//!   once and runs a fresh per-function pipeline instance over every
//!   function of a [`Module`](darm_ir::Module), serially or on a
//!   `std::thread::scope` worker pool (functions are independent and all
//!   analysis results are `Send + Sync`). Per-function
//!   [`PipelineReport`]s aggregate into a [`ModuleReport`] with per-pass
//!   rollups; report and output assembly is input-ordered, so a parallel
//!   run is bit-identical to the serial one.
//!
//! The CLI (`darm meld --passes … --jobs …`), the benchmark harness
//! (`prepare_variants` and the batch suites) and `meld_function` itself
//! all drive their transformations through this one crate.
//!
//! ## Architecture
//!
//! ```text
//!   "meld(threshold=0.3),fixpoint(simplify,dce)"   pipeline spec (see [`spec`])
//!            │ PassSpec::parse          ┌────────────────────────────────┐
//!            ▼                          │ ModulePassManager              │
//!        PassSpec ──────────────────────► one pipeline instance per fn,  │
//!            │ PassRegistry::build_parsed │ N workers ──► ModuleReport   │
//!            ▼                          └────────────────────────────────┘
//!   PassManager ── run ──► Pass 1 ─► Pass 2 ─► … ─► PipelineReport
//!        │                   │  ▲
//!        │ retain(preserved) │  │ get::<A>() (cache hit or compute)
//!        ▼                   ▼  │
//!   AnalysisManager { Cfg, DomTree, PostDomTree, Divergence, Liveness, LoopInfo }
//! ```
//!
//! ## The spec grammar
//!
//! Specs grew from flat name lists (`"simplify,meld,dce"`, still valid)
//! to a small grammar with `key=value` parameters and nested
//! `fixpoint(...)` groups — see [`spec`] for the full grammar and
//! [`PassRegistry`] for how parameters reach pass factories. This makes
//! the paper's ablations plain spec strings, no code changes:
//!
//! ```text
//! meld(threshold=0.5)                        Fig. 12 threshold sweep point
//! meld(unpredicate=false)                    §VI-E unpredication ablation
//! meld-bf,fixpoint(simplify,dce)             branch-fusion baseline + cleanup fixpoint
//! fixpoint(simplify,instcombine,dce,max=4)   capped cleanup fixpoint
//! ```
//!
//! Parse errors are positioned (byte span + expected token); unknown pass
//! names list every registered pass, and unknown parameter keys name the
//! pass that rejected them.
//!
//! ### The pass contract
//!
//! A [`Pass`] receives the function and the shared analysis cache. It must
//! uphold two obligations:
//!
//! 1. **Cache consistency during the run.** If the pass mutates the IR and
//!    then queries an analysis, it must first invalidate what the mutation
//!    broke (the `*_with` transforms in `darm-transforms` do this
//!    internally). A pass may freely *read* cached analyses computed for
//!    the unmodified function.
//! 2. **Preservation report.** The returned [`PassOutcome`] declares what
//!    survived the whole run via
//!    [`PreservedAnalyses`]. The manager
//!    applies it with `AnalysisManager::retain`, which can only *drop*
//!    entries — so an over-conservative report costs recomputation, never
//!    correctness, and a pass that forgot an internal invalidation is still
//!    caught by its (coarser) report.
//!
//! ### Invalidation tiers
//!
//! Analyses invalidate at three granularities (see
//! `darm_analysis::manager` for the authoritative contract):
//!
//! | tier | mutation | report / mechanism |
//! |---|---|---|
//! | — | none | `PreservedAnalyses::all()` |
//! | **CFG shape** | instructions only (φs, rauw, peepholes, DCE) | `PreservedAnalyses::cfg_shape()` — keeps CFG/dom/post-dom/loops; DCE additionally `.preserve::<DivergenceAnalysis>()` |
//! | **none** | blocks or edges, provenance unknown | `PreservedAnalyses::none()` |
//! | **dirty-set** | anything *tracked by the `darm-ir` mutation journal* | `AnalysisManager::update_after` replays the window: keeps what the window cannot have broken, updates dominator/post-dominator trees in place for supported local edit patterns, re-seeds liveness from dirty blocks, drops the rest |
//!
//! A pass should report the finest tier it can *prove*: `all()` when it
//! changed nothing, `cfg_shape()` (plus any analysis it can argue
//! preserved) for instruction-only rewrites, `none()` for untracked
//! block-graph surgery. A driver that interleaves mutation with queries —
//! the melding fixpoint — should anchor the manager with
//! `AnalysisManager::observe` and call `update_after` instead of
//! `invalidate_all`, so the dirty-set tier decides.
//!
//! The cleanup passes themselves are dirty-scoped (see [`passes`]): each
//! restricts its rescan to the journal window since its own previous run,
//! so a fixpoint driver pays per-region cleanup cost, not per-function.
//! `PipelineReport` splits per-pass analysis *computations* from cache
//! *hits* and incremental *updates*, which `--time-passes` prints.
//!
//! ## Failure semantics: containment, budgets, degradation
//!
//! Melding is a strictly optional optimization — the paper proves the
//! melded kernel bit-equivalent to the original — so the correct degraded
//! answer to *any* mid-pipeline failure is the verified, unmelded input
//! function, never an aborted process. The crate implements that at the
//! per-function boundary:
//!
//! * **Containment.** [`PassManager::run_contained`] snapshots the
//!   function ([`Function::snapshot`] — the restored state carries a
//!   fresh journal identity, so no stale cursor survives), wraps the run
//!   in `catch_unwind`, and on any fault — a pass panic, an injected
//!   fault, a budget cancellation, or a plain pipeline error — restores
//!   the snapshot, hard-resets the analysis manager and returns a
//!   structured [`Diagnostic`]`{ function, pass, site, cause }`.
//! * **Outcomes.** A [`ModulePassManager`] with
//!   [`OnError::Degrade`] records
//!   [`FunctionOutcome::Degraded`] in its [`ModuleReport`] and keeps
//!   compiling every other function; with [`OnError::Fail`] (the library
//!   default, preserving pre-containment semantics) the earliest fault in
//!   module order fails the run — but panics are still contained and
//!   surfaced as [`PipelineError::Fault`], and workers recover poisoned
//!   slot mutexes instead of cascading.
//! * **Budgets.** [`PipelineOptions::budget`] carries a shared
//!   wall-clock + fuel [`Budget`]. The pass loop installs it for the
//!   current thread and the expensive loops poll it
//!   (`darm_ir::budget::poll` at `pipeline::pass`, `pipeline::fixpoint`,
//!   `meld::fixpoint`, `meld::score`, `transforms::simplify`); exhaustion
//!   unwinds with a typed payload that containment converts into a
//!   deadline/fuel diagnostic for just that function.
//! * **Fault injection.** With the `fault-injection` feature of `darm-ir`
//!   enabled, named `darm_ir::fault::point` sites across melding,
//!   transforms and analysis fire a deterministic
//!   `darm_ir::fault::FaultPlan` (set via API or the `DARM_FAULT` env
//!   var, e.g. `DARM_FAULT='meld::score#3=panic'`). Hit counters are
//!   per-function (reset at each containment boundary), so which
//!   functions fault is independent of module order, worker count and
//!   scheduling — the property the root crate's fault-injection proptests
//!   assert.

pub mod module;
pub mod passes;
pub mod registry;
pub mod spec;

pub use darm_ir::budget::{Budget, CancelKind};
pub use module::{
    FunctionOutcome, FunctionReport, ModuleOptions, ModulePassManager, ModuleReport, OnError,
};
pub use passes::{
    DcePass, FixpointPass, FnPass, InstCombinePass, ScopedPass, SimplifyCfgPass, SsaRepairPass,
    VerifyPass,
};
pub use registry::{PassParams, PassRegistry};
pub use spec::{PassSpec, SpecElem, SpecError};

use darm_analysis::{AnalysisCounters, AnalysisManager, PreservedAnalyses};
use darm_ir::Function;
use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// What one [`Pass::run`] did, reported back to the [`PassManager`].
#[derive(Debug, Clone)]
pub struct PassOutcome {
    /// Which analyses survived the run (see crate docs for the rules).
    pub preserved: PreservedAnalyses,
    /// Whether the pass changed the function at all.
    pub changed: bool,
    /// Pass-defined count of rewrites/changes, summed into the report.
    pub units: u64,
}

impl PassOutcome {
    /// The pass changed nothing.
    pub fn unchanged() -> PassOutcome {
        PassOutcome {
            preserved: PreservedAnalyses::all(),
            changed: false,
            units: 0,
        }
    }

    /// The pass performed `units` instruction-level rewrites without
    /// touching the block graph.
    pub fn insts_changed(units: u64) -> PassOutcome {
        PassOutcome {
            preserved: PreservedAnalyses::cfg_shape(),
            changed: true,
            units,
        }
    }

    /// The pass performed `units` rewrites including block/edge surgery.
    pub fn cfg_changed(units: u64) -> PassOutcome {
        PassOutcome {
            preserved: PreservedAnalyses::none(),
            changed: true,
            units,
        }
    }
}

/// A unit of transformation runnable under the [`PassManager`].
pub trait Pass {
    /// Short stable name (also the spelling used in pipeline specs).
    fn name(&self) -> &str;

    /// Runs the pass over `func`, reading analyses through `am`.
    ///
    /// # Errors
    ///
    /// A pass fails only for internal errors (e.g. the verifier finding
    /// broken SSA); the pipeline stops at the first failure.
    fn run(&mut self, func: &mut Function, am: &mut AnalysisManager)
        -> Result<PassOutcome, String>;

    /// Named counters accumulated across runs, for the report table.
    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// Clears all per-function state — journal cursors, dominator
    /// baselines, stat counters — so the instance behaves exactly like a
    /// freshly constructed one on its next function. Lets a module worker
    /// pool pipeline instances across the functions it claims instead of
    /// rebuilding them. The default is a no-op, correct for stateless
    /// passes.
    fn reset(&mut self) {}
}

/// Why a pipeline run stopped early.
#[derive(Debug, Clone)]
pub enum PipelineError {
    /// The pipeline spec violated the grammar (see [`spec`]).
    Spec(SpecError),
    /// A pipeline spec named a pass the registry does not know.
    UnknownPass {
        /// The unknown name.
        name: String,
        /// Every registered name (sorted), for the error message.
        known: Vec<String>,
    },
    /// A pass factory rejected a spec parameter (bad value or a key the
    /// pass does not understand).
    BadParameter {
        /// Which pass the parameter was for.
        pass: String,
        /// The factory's message (or the unknown key).
        message: String,
    },
    /// The spec contained no pass names.
    EmptySpec,
    /// A pass reported an internal failure.
    PassFailed {
        /// Which pass failed.
        pass: String,
        /// The pass's error message.
        message: String,
    },
    /// `verify_each` found invalid SSA after a pass.
    VerifyFailed {
        /// The pass after which verification failed.
        pass: String,
        /// The verifier's message.
        message: String,
    },
    /// A module run failed inside one function; carries the underlying
    /// error. When several functions fail in a parallel run, the one
    /// earliest in module order is reported (deterministically).
    InFunction {
        /// The failing function's name.
        function: String,
        /// What went wrong there.
        error: Box<PipelineError>,
    },
    /// A contained fault (pass panic, injected fault, or budget
    /// cancellation) under [`OnError::Fail`]; the diagnostic names the
    /// function, so this variant is not wrapped in
    /// [`PipelineError::InFunction`].
    Fault(Diagnostic),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Spec(e) => write!(f, "invalid pipeline spec: {e}"),
            PipelineError::UnknownPass { name, known } => {
                write!(f, "unknown pass '{name}' (known: {})", known.join(", "))
            }
            PipelineError::BadParameter { pass, message } => {
                write!(f, "pass '{pass}': {message}")
            }
            PipelineError::EmptySpec => write!(f, "empty pipeline spec"),
            PipelineError::PassFailed { pass, message } => {
                write!(f, "pass '{pass}' failed: {message}")
            }
            PipelineError::VerifyFailed { pass, message } => {
                write!(f, "SSA verification failed after pass '{pass}': {message}")
            }
            PipelineError::InFunction { function, error } => {
                write!(f, "in function @{function}: {error}")
            }
            PipelineError::Fault(diag) => write!(f, "{diag}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Root cause of a contained per-function fault (see [`Diagnostic`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCause {
    /// An unexpected pass panic; carries the panic message.
    Panic(String),
    /// An internal error — a failed pass, a verification failure, or an
    /// injected error fault; carries the message.
    Error(String),
    /// The wall-clock budget ran out
    /// ([`CancelKind::Deadline`]).
    Deadline,
    /// The fuel budget ran out ([`CancelKind::Fuel`]).
    Fuel,
}

/// A structured, stably-rendered description of one contained fault:
/// which function, which pass was running, which budget-poll or
/// fault-injection site observed it, and the root cause.
///
/// Rendering is pinned by the CLI snapshot tests:
/// `@func: pass 'meld': time budget exceeded (at pipeline::pass)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The function whose pipeline faulted.
    pub function: String,
    /// The pass that was running, when known.
    pub pass: Option<String>,
    /// The budget-poll or fault-injection site, when the fault came
    /// through one.
    pub site: Option<String>,
    /// The root cause.
    pub cause: FaultCause,
}

impl Diagnostic {
    /// Describes a regular [`PipelineError`] as a fault of `function`.
    pub fn from_error(function: &str, error: &PipelineError) -> Diagnostic {
        let (pass, cause) = match error {
            PipelineError::PassFailed { pass, message } => {
                (Some(pass.clone()), FaultCause::Error(message.clone()))
            }
            PipelineError::VerifyFailed { pass, message } => (
                Some(pass.clone()),
                FaultCause::Error(format!("SSA verification failed: {message}")),
            ),
            other => (None, FaultCause::Error(other.to_string())),
        };
        Diagnostic {
            function: function.to_string(),
            pass,
            site: None,
            cause,
        }
    }

    /// Classifies a caught unwind payload as a fault of `function`: a
    /// typed budget [`Cancelled`](darm_ir::budget::Cancelled) or injected
    /// fault carries its site and kind; anything else is an unexpected
    /// pass panic. The running pass is taken from the pipeline's
    /// thread-local pass marker.
    pub fn from_unwind(function: &str, payload: Box<dyn Any + Send>) -> Diagnostic {
        let pass = take_current_pass();
        let (site, cause) = if let Some(c) = payload.downcast_ref::<darm_ir::budget::Cancelled>() {
            let cause = match c.kind {
                darm_ir::budget::CancelKind::Deadline => FaultCause::Deadline,
                darm_ir::budget::CancelKind::Fuel => FaultCause::Fuel,
            };
            (Some(c.site.to_string()), cause)
        } else if let Some(inj) = payload.downcast_ref::<darm_ir::fault::InjectedFault>() {
            let cause = match inj.kind {
                darm_ir::fault::FaultKind::Error => FaultCause::Error("injected fault".to_string()),
                _ => FaultCause::Panic("injected fault".to_string()),
            };
            (Some(inj.site.to_string()), cause)
        } else {
            let message = payload
                .downcast_ref::<&'static str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (None, FaultCause::Panic(message))
        };
        Diagnostic {
            function: function.to_string(),
            pass,
            site,
            cause,
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}: ", self.function)?;
        if let Some(pass) = &self.pass {
            write!(f, "pass '{pass}': ")?;
        }
        match &self.cause {
            FaultCause::Panic(m) => write!(f, "panicked: {m}")?,
            FaultCause::Error(m) => write!(f, "{m}")?,
            FaultCause::Deadline => write!(f, "time budget exceeded")?,
            FaultCause::Fuel => write!(f, "fuel budget exhausted")?,
        }
        if let Some(site) = &self.site {
            write!(f, " (at {site})")?;
        }
        Ok(())
    }
}

thread_local! {
    /// Name of the pass currently running on this thread — read back when
    /// classifying an unwind that escaped a pass. A reused buffer, not an
    /// allocation per pass run.
    static CURRENT_PASS: RefCell<String> = const { RefCell::new(String::new()) };
}

fn note_current_pass(name: &str) {
    CURRENT_PASS.with_borrow_mut(|s| {
        s.clear();
        s.push_str(name);
    });
}

fn clear_current_pass() {
    CURRENT_PASS.with_borrow_mut(String::clear);
}

fn take_current_pass() -> Option<String> {
    CURRENT_PASS.with_borrow_mut(|s| {
        if s.is_empty() {
            None
        } else {
            let name = s.clone();
            s.clear();
            Some(name)
        }
    })
}

/// Wraps the process panic hook (once) so *typed, contained* unwinds —
/// budget cancellations and injected faults, which are caught and turned
/// into diagnostics at the containment boundary by construction — do not
/// spray "thread panicked" noise on stderr. Every other panic still goes
/// through the previous hook untouched.
fn install_quiet_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let contained = p.downcast_ref::<darm_ir::budget::Cancelled>().is_some()
                || p.downcast_ref::<darm_ir::fault::InjectedFault>().is_some();
            if !contained {
                prev(info);
            }
        }));
    });
}

/// Knobs of a [`PassManager`] run.
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    /// Verify SSA after every pass; the run fails at the first violation.
    pub verify_each: bool,
    /// Collect per-pass wall-clock and analysis-counter attribution and
    /// render the table. Off (the default), pass runs skip the clock reads
    /// entirely — run/change/unit counts are still recorded.
    pub time_passes: bool,
    /// Reconcile the analysis cache with the mutation journal after every
    /// pass (`AnalysisManager::update_after_with_report`) instead of
    /// applying the pass's coarse [`PreservedAnalyses`] report alone: the
    /// journal keeps or updates in place what the window provably cannot
    /// have broken (dominator/post-dominator trees survive meld surgery),
    /// and the report still rescues entries the pass vouches for. Off (the
    /// default), passes invalidate by report, as the pre-incremental
    /// drivers did.
    pub journal_sync: bool,
    /// Shared wall-clock/fuel budget. The pass loop installs it for the
    /// current thread and polls it before every pass; the expensive inner
    /// loops (fixpoint rounds, meld planning/scoring, scoped-simplify
    /// rounds) poll it too. Exhaustion unwinds with a typed payload that a
    /// containment boundary ([`PassManager::run_contained`],
    /// [`OnError::Degrade`]) converts into a degraded outcome for just the
    /// current function. The default is unlimited, which makes every poll
    /// a near-free thread-local check.
    pub budget: Budget,
}

/// Timing/stat record of one pipeline slot.
#[derive(Debug, Clone, Default)]
pub struct PassRecord {
    /// Pass name.
    pub name: String,
    /// How often the pass ran (a fixpoint driver may re-run its pipeline).
    pub runs: usize,
    /// Runs that reported a change.
    pub changed_runs: usize,
    /// Total rewrite units across runs.
    pub units: u64,
    /// Total wall-clock seconds across runs.
    pub seconds: f64,
    /// Pass-specific named counters.
    pub stats: Vec<(&'static str, u64)>,
    /// Analysis work attributed to this pass's runs: full computations vs
    /// cache hits vs incremental in-place updates.
    pub analysis: AnalysisCounters,
}

/// Everything a pipeline run measured.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Per-pass records, in pipeline order.
    pub passes: Vec<PassRecord>,
    /// How often each analysis was (re)computed — cache misses only.
    pub analysis_computations: Vec<(&'static str, usize)>,
    /// Total wall-clock seconds across every run of this pipeline
    /// (consistent with the accumulated per-pass records).
    pub total_seconds: f64,
}

impl PipelineReport {
    /// Renders the `--time-passes` style table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "| pass | runs | changed | units | time (ms) | analyses (comp/hit/upd/del-upd/cfg-upd/div-upd) |\n",
        );
        out.push_str("|---|---|---|---|---|---|\n");
        let mut totals = AnalysisCounters::default();
        for r in &self.passes {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.3} | {}/{}/{}/{}/{}/{} |\n",
                r.name,
                r.runs,
                r.changed_runs,
                r.units,
                r.seconds * 1e3,
                r.analysis.computes,
                r.analysis.hits,
                r.analysis.updates,
                r.analysis.in_place_deletion_updates,
                r.analysis.in_place_cfg_updates,
                r.analysis.in_place_divergence_updates,
            ));
            totals.computes += r.analysis.computes;
            totals.hits += r.analysis.hits;
            totals.updates += r.analysis.updates;
            totals.in_place_deletion_updates += r.analysis.in_place_deletion_updates;
            totals.in_place_cfg_updates += r.analysis.in_place_cfg_updates;
            totals.in_place_divergence_updates += r.analysis.in_place_divergence_updates;
            for (k, v) in &r.stats {
                out.push_str(&format!("|   · {k} | | | {v} | | |\n"));
            }
        }
        out.push_str(&format!(
            "| **total** | | | | **{:.3}** | **{}/{}/{}/{}/{}/{}** |\n",
            self.total_seconds * 1e3,
            totals.computes,
            totals.hits,
            totals.updates,
            totals.in_place_deletion_updates,
            totals.in_place_cfg_updates,
            totals.in_place_divergence_updates,
        ));
        let computed: Vec<String> = self
            .analysis_computations
            .iter()
            .map(|(n, c)| format!("{n}×{c}"))
            .collect();
        out.push_str(&format!("analyses computed: {}\n", computed.join(", ")));
        out
    }
}

/// Owns a pass sequence plus run options; executes it over a function with
/// a shared [`AnalysisManager`].
#[derive(Default)]
pub struct PassManager {
    passes: Vec<(Box<dyn Pass>, PassRecord)>,
    total_seconds: f64,
    /// Run options (verification, report rendering).
    pub options: PipelineOptions,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.pass_names())
            .field("options", &self.options)
            .finish()
    }
}

impl PassManager {
    /// An empty pipeline with the given options.
    pub fn new(options: PipelineOptions) -> PassManager {
        PassManager {
            passes: Vec::new(),
            total_seconds: 0.0,
            options,
        }
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: Box<dyn Pass>) -> &mut PassManager {
        // Record names are filled at report time — a fixpoint driver
        // constructing pipelines per function shouldn't allocate strings
        // nobody may read.
        self.passes.push((pass, PassRecord::default()));
        self
    }

    /// Names of the passes, in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|(p, _)| p.name()).collect()
    }

    /// Cumulative rewrite units of the pass named `name` across every run
    /// so far (0 when absent). Lets a fixpoint driver that re-runs its
    /// pipeline read per-round deltas.
    pub fn units_of(&self, name: &str) -> u64 {
        self.passes
            .iter()
            .find(|(p, _)| p.name() == name)
            .map(|(_, r)| r.units)
            .unwrap_or(0)
    }

    /// Runs the pipeline once over `func` with a fresh analysis cache.
    ///
    /// # Errors
    ///
    /// Propagates the first [`PipelineError`] (pass failure or, with
    /// `verify_each`, an SSA violation).
    pub fn run(&mut self, func: &mut Function) -> Result<PipelineReport, PipelineError> {
        let mut am = AnalysisManager::new();
        self.run_with(func, &mut am)
    }

    /// Resets the pipeline for reuse on another function: zeroes the
    /// accumulated records and total time and calls [`Pass::reset`] on
    /// every pass, so the next run is bit-identical to one through a
    /// freshly built instance. Module workers call this between the
    /// functions they claim (per-worker pass-instance pooling).
    pub fn reset_for_reuse(&mut self) {
        for (pass, record) in &mut self.passes {
            pass.reset();
            *record = PassRecord::default();
        }
        self.total_seconds = 0.0;
    }

    /// Runs the pipeline inside a *containment boundary*: the function is
    /// snapshotted first, the run is wrapped in `catch_unwind`, and on any
    /// fault — a pass panic, an injected fault, a budget cancellation
    /// unwind, or a plain pipeline error — the function is restored to its
    /// pre-pipeline snapshot (under a fresh journal identity), `am` is
    /// hard-reset, and the returned [`Diagnostic`] describes what
    /// happened.
    ///
    /// After a fault the pipeline instance may hold a pass abandoned
    /// mid-run: discard it or call [`PassManager::reset_for_reuse`] before
    /// running it again.
    ///
    /// # Errors
    ///
    /// The [`Diagnostic`] of the contained fault; the function is then
    /// bit-identical to its pre-call state.
    pub fn run_contained(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PipelineReport, Diagnostic> {
        install_quiet_panic_hook();
        clear_current_pass();
        darm_ir::fault::begin_function();
        let snapshot = func.snapshot();
        match catch_unwind(AssertUnwindSafe(|| self.run_with(func, am))) {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(error)) => {
                func.restore(&snapshot);
                am.hard_reset();
                Err(Diagnostic::from_error(func.name(), &error))
            }
            Err(payload) => {
                func.restore(&snapshot);
                am.hard_reset();
                Err(Diagnostic::from_unwind(func.name(), payload))
            }
        }
    }

    /// [`PassManager::run`] against a caller-provided cache, so warm
    /// analyses survive into (or arrive from) surrounding driver code.
    ///
    /// # Errors
    ///
    /// See [`PassManager::run`].
    pub fn run_with(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PipelineReport, PipelineError> {
        self.run_quiet(func, am)?;
        Ok(self.report(am))
    }

    /// [`PassManager::run_with`] without building the report — the
    /// allocation-free variant for inner fixpoint loops that re-run their
    /// pipeline many times (records still accumulate; call
    /// [`PassManager::run_with`] or read [`PassManager::units_of`] when the
    /// numbers are needed).
    ///
    /// # Errors
    ///
    /// See [`PassManager::run`].
    pub fn run_quiet(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<(), PipelineError> {
        self.run_once(func, am).map(|_| ())
    }

    /// [`PassManager::run_quiet`] reporting whether any pass changed the
    /// function — the signal a fixpoint driver ([`FixpointPass`]) iterates
    /// on.
    ///
    /// # Errors
    ///
    /// See [`PassManager::run`].
    pub fn run_once(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<bool, PipelineError> {
        let mut changed_any = false;
        // Wall-clock and analysis-counter attribution only runs when a
        // consumer will render it: a fixpoint driver re-running its inner
        // pipeline thousands of times shouldn't pay clock reads for a
        // table nobody prints.
        let timing = self.options.time_passes;
        let t_total = timing.then(Instant::now);
        let verify_each = self.options.verify_each;
        // A limited budget becomes this thread's innermost budget for the
        // duration of the pass loop; the unlimited default installs
        // nothing, so nested unlimited pipelines (fixpoint groups, meld
        // cleanup) never mask an outer limited budget.
        let _budget = self.options.budget.install();
        for (pass, record) in &mut self.passes {
            // Mark the pass before polling: an exhaustion observed here is
            // attributed to the pass about to run (for the first pass the
            // budget was already dry on entry — still its attribution).
            note_current_pass(pass.name());
            darm_ir::budget::poll("pipeline::pass");
            let t = timing.then(Instant::now);
            let counters_before = timing.then(|| am.counters());
            let pass_start = self.options.journal_sync.then(|| func.journal_head());
            let outcome = pass
                .run(func, am)
                .map_err(|message| PipelineError::PassFailed {
                    pass: pass.name().to_string(),
                    message,
                })?;
            match pass_start {
                Some(start) => {
                    am.update_after_with_report(func, &outcome.preserved, start);
                }
                None => am.retain(&outcome.preserved),
            }
            if let Some(before) = counters_before {
                let delta = am.counters().since(&before);
                record.analysis.computes += delta.computes;
                record.analysis.hits += delta.hits;
                record.analysis.updates += delta.updates;
                record.analysis.in_place_deletion_updates += delta.in_place_deletion_updates;
                record.analysis.in_place_cfg_updates += delta.in_place_cfg_updates;
                record.analysis.in_place_divergence_updates += delta.in_place_divergence_updates;
            }
            record.runs += 1;
            record.changed_runs += usize::from(outcome.changed);
            record.units += outcome.units;
            changed_any |= outcome.changed;
            if let Some(t) = t {
                record.seconds += t.elapsed().as_secs_f64();
            }
            if verify_each {
                darm_analysis::verify_ssa(func).map_err(|e| PipelineError::VerifyFailed {
                    pass: pass.name().to_string(),
                    message: e.to_string(),
                })?;
            }
        }
        if let Some(t_total) = t_total {
            self.total_seconds += t_total.elapsed().as_secs_f64();
        }
        Ok(changed_any)
    }

    /// Total rewrite units across every pass and run so far.
    pub fn total_units(&self) -> u64 {
        self.passes.iter().map(|(_, r)| r.units).sum()
    }

    /// Builds the cumulative report. Records — including the total time —
    /// survive across multiple `run*` calls, so a driver that re-runs the
    /// pipeline gets totals whose per-pass rows are consistent with the
    /// total row.
    fn report(&self, am: &AnalysisManager) -> PipelineReport {
        PipelineReport {
            passes: self
                .passes
                .iter()
                .map(|(pass, record)| {
                    let mut r = record.clone();
                    r.name = pass.name().to_string();
                    r.stats = pass.stat_entries();
                    r
                })
                .collect(),
            analysis_computations: am.computations().to_vec(),
            total_seconds: self.total_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{IcmpPred, Type, Value};

    fn const_diamond() -> Function {
        // br true, t, e — simplify collapses it to one block.
        let mut f = Function::new("cd", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        b.br(Value::I1(true), t, e);
        b.switch_to(t);
        let v = b.add(b.param(0), b.const_i32(1));
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, v), (e, Value::I32(0))]);
        let dead = b.mul(p, b.const_i32(0));
        let _ = b.icmp(IcmpPred::Eq, dead, dead);
        b.ret(Some(p));
        f
    }

    #[test]
    fn pipeline_runs_and_reports() {
        let mut f = const_diamond();
        let mut pm = PassManager::new(PipelineOptions {
            verify_each: true,
            time_passes: true,
            ..PipelineOptions::default()
        });
        pm.add(Box::new(SimplifyCfgPass::default()))
            .add(Box::new(InstCombinePass::default()))
            .add(Box::new(DcePass::default()));
        let report = pm.run(&mut f).expect("pipeline runs");
        assert_eq!(f.block_ids().len(), 1, "constant branch collapsed");
        assert_eq!(report.passes.len(), 3);
        assert_eq!(report.passes[0].name, "simplify");
        assert!(report.passes[0].changed_runs == 1);
        let table = report.render();
        assert!(table.contains("| simplify |"), "{table}");
    }

    #[test]
    fn unchanged_passes_keep_the_cache_warm() {
        let mut f = const_diamond();
        darm_transforms::simplify_cfg(&mut f);
        darm_transforms::run_dce(&mut f);
        let mut am = AnalysisManager::new();
        // Warm the cache, then run a pipeline that changes nothing.
        am.get::<darm_analysis::Cfg>(&f);
        let before = am.total_computations();
        let mut pm = PassManager::new(PipelineOptions::default());
        pm.add(Box::new(SimplifyCfgPass::default()))
            .add(Box::new(DcePass::default()));
        pm.run_with(&mut f, &mut am).unwrap();
        assert!(
            am.cached::<darm_analysis::Cfg>().is_some(),
            "no-op pipeline preserved the CFG"
        );
        assert_eq!(am.total_computations(), before, "nothing was recomputed");
    }

    #[test]
    fn verify_each_catches_broken_ssa() {
        // A pass that breaks SSA on purpose: moves a def after its use by
        // rewriting an operand to a not-yet-defined instruction.
        struct Breaker;
        impl Pass for Breaker {
            fn name(&self) -> &str {
                "breaker"
            }
            fn run(
                &mut self,
                func: &mut Function,
                _am: &mut AnalysisManager,
            ) -> Result<PassOutcome, String> {
                // Point the ret at an instruction from an unrelated block
                // that does not dominate it (the true arm's add).
                let blocks = func.block_ids();
                let t_inst = func.insts_of(blocks[1])[0];
                let x = *blocks.last().unwrap();
                let term = func.terminator(x).unwrap();
                func.inst_mut(term).operands[0] = Value::Inst(t_inst);
                Ok(PassOutcome::insts_changed(1))
            }
        }
        // Build a diamond where the branch is NOT constant so both arms stay.
        let mut f = Function::new("v", vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, b.param(0), b.const_i32(0));
        b.br(c, t, e);
        b.switch_to(t);
        let v = b.add(b.param(0), b.const_i32(1));
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, v), (e, Value::I32(0))]);
        b.ret(Some(p));

        let mut pm = PassManager::new(PipelineOptions {
            verify_each: true,
            ..PipelineOptions::default()
        });
        pm.add(Box::new(Breaker));
        match pm.run(&mut f) {
            Err(PipelineError::VerifyFailed { pass, .. }) => assert_eq!(pass, "breaker"),
            other => panic!("expected VerifyFailed, got {other:?}"),
        }
    }
}
