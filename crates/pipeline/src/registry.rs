//! Pass registry and textual pipeline-spec parsing.
//!
//! A spec is a comma-separated list of registered pass names, e.g.
//! `"simplify,meld,instcombine,dce"`. The registry maps names to
//! factories; downstream crates (notably `darm-melding`) extend the
//! transform set with their own passes before parsing.

use crate::{Pass, PassManager, PipelineError, PipelineOptions};
use std::collections::BTreeMap;

/// Factory producing a fresh pass instance per pipeline.
pub type PassFactory = Box<dyn Fn() -> Box<dyn Pass>>;

/// Name → factory table used to build pipelines from textual specs.
#[derive(Default)]
pub struct PassRegistry {
    factories: BTreeMap<String, PassFactory>,
}

impl PassRegistry {
    /// An empty registry.
    pub fn empty() -> PassRegistry {
        PassRegistry::default()
    }

    /// A registry holding the generic cleanup passes: `simplify`, `dce`,
    /// `instcombine`, `ssa-repair` and `verify`.
    pub fn with_transforms() -> PassRegistry {
        let mut r = PassRegistry::empty();
        r.register("simplify", || Box::new(crate::SimplifyCfgPass::default()));
        r.register("dce", || Box::new(crate::DcePass::default()));
        r.register(
            "instcombine",
            || Box::new(crate::InstCombinePass::default()),
        );
        r.register("ssa-repair", || Box::new(crate::SsaRepairPass::default()));
        r.register("verify", || Box::new(crate::VerifyPass));
        r
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register(
        &mut self,
        name: &str,
        factory: impl Fn() -> Box<dyn Pass> + 'static,
    ) -> &mut PassRegistry {
        self.factories.insert(name.to_string(), Box::new(factory));
        self
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Instantiates the pass registered under `name`.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownPass`] when nothing is registered.
    pub fn create(&self, name: &str) -> Result<Box<dyn Pass>, PipelineError> {
        match self.factories.get(name) {
            Some(factory) => Ok(factory()),
            None => Err(PipelineError::UnknownPass {
                name: name.to_string(),
                known: self.names(),
            }),
        }
    }

    /// Parses a comma-separated pipeline spec into a ready-to-run
    /// [`PassManager`]. Whitespace around names is ignored.
    ///
    /// # Errors
    ///
    /// [`PipelineError::EmptySpec`] for a blank spec,
    /// [`PipelineError::UnknownPass`] for an unregistered name.
    pub fn build(
        &self,
        spec: &str,
        options: PipelineOptions,
    ) -> Result<PassManager, PipelineError> {
        let names: Vec<&str> = spec
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if names.is_empty() {
            return Err(PipelineError::EmptySpec);
        }
        let mut pm = PassManager::new(options);
        for name in names {
            pm.add(self.create(name)?);
        }
        Ok(pm)
    }
}

impl std::fmt::Debug for PassRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_spec() {
        let r = PassRegistry::with_transforms();
        let pm = r
            .build(" simplify, dce ,instcombine ", PipelineOptions::default())
            .unwrap();
        assert_eq!(pm.pass_names(), vec!["simplify", "dce", "instcombine"]);
    }

    #[test]
    fn rejects_unknown_and_empty() {
        let r = PassRegistry::with_transforms();
        assert!(matches!(
            r.build("simplify,frobnicate", PipelineOptions::default()),
            Err(PipelineError::UnknownPass { name, .. }) if name == "frobnicate"
        ));
        assert!(matches!(
            r.build(" , ", PipelineOptions::default()),
            Err(PipelineError::EmptySpec)
        ));
    }
}
