//! Pass registry: maps spec names to pass factories and instantiates
//! parsed [`PassSpec`]s into ready-to-run [`PassManager`]s.
//!
//! A spec is parsed by [`PassSpec::parse`] (see [`crate::spec`] for the
//! grammar: pass names, `key=value` parameters, nested `fixpoint(...)`
//! groups). Factories receive the pass's parameters and the pipeline
//! options, so a parameterized registration like `meld` can honor
//! `meld(threshold=0.3)` without code changes downstream. Factories are
//! `Send + Sync`: one registry is shared by every worker of a
//! [`ModulePassManager`](crate::ModulePassManager).

use crate::passes::{FixpointPass, ScopedPass};
use crate::spec::{PassSpec, SpecElem};
use crate::{Pass, PassManager, PipelineError, PipelineOptions};
use std::collections::BTreeMap;

/// The `key=value` parameters of one pass instance, consumed by its
/// factory via the `take*` methods. Keys left untaken after the factory
/// returns are unknown-parameter errors.
#[derive(Debug, Clone, Default)]
pub struct PassParams {
    entries: Vec<(String, String)>,
}

impl PassParams {
    /// Wraps parsed `key=value` pairs (spec order preserved).
    pub fn new(entries: Vec<(String, String)>) -> PassParams {
        PassParams { entries }
    }

    /// Removes and returns the raw value of `key`, if present.
    pub fn take(&mut self, key: &str) -> Option<String> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    /// Removes `key` and parses its value as `T`.
    ///
    /// # Errors
    ///
    /// A message naming the key and value on parse failure.
    pub fn take_parsed<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>, String> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| {
                format!(
                    "parameter `{key}`: cannot parse `{v}` as {}",
                    std::any::type_name::<T>()
                )
            }),
        }
    }

    /// The keys (with values) the factory did not consume.
    pub fn remaining(&self) -> &[(String, String)] {
        &self.entries
    }

    /// The first key that appears more than once, if any. Factories only
    /// `take` a key's first occurrence, so a duplicate would otherwise be
    /// misreported as *unknown* — the registry checks this up front.
    pub fn duplicate_key(&self) -> Option<&str> {
        self.entries.iter().enumerate().find_map(|(i, (k, _))| {
            self.entries[..i]
                .iter()
                .any(|(prev, _)| prev == k)
                .then_some(k.as_str())
        })
    }
}

/// Factory producing a fresh pass instance per pipeline slot, configured
/// from its spec parameters and the run options.
pub type PassFactory =
    Box<dyn Fn(&mut PassParams, PipelineOptions) -> Result<Box<dyn Pass>, String> + Send + Sync>;

/// Name → factory table used to build pipelines from textual specs.
#[derive(Default)]
pub struct PassRegistry {
    factories: BTreeMap<String, PassFactory>,
}

impl PassRegistry {
    /// An empty registry.
    pub fn empty() -> PassRegistry {
        PassRegistry::default()
    }

    /// A registry holding the generic cleanup passes: `simplify`, `dce`,
    /// `instcombine`, `ssa-repair` (each accepting `scoped=true|false`,
    /// default `true`) and `verify`.
    pub fn with_transforms() -> PassRegistry {
        fn scoped(params: &mut PassParams) -> Result<bool, String> {
            Ok(params.take_parsed::<bool>("scoped")?.unwrap_or(true))
        }
        let mut r = PassRegistry::empty();
        r.register_configurable("simplify", |p, _| {
            Ok(Box::new(
                crate::SimplifyCfgPass::default().with_scoping(scoped(p)?),
            ))
        });
        r.register_configurable("dce", |p, _| {
            Ok(Box::new(crate::DcePass::default().with_scoping(scoped(p)?)))
        });
        r.register_configurable("instcombine", |p, _| {
            Ok(Box::new(
                crate::InstCombinePass::default().with_scoping(scoped(p)?),
            ))
        });
        r.register_configurable("ssa-repair", |p, _| {
            Ok(Box::new(
                crate::SsaRepairPass::default().with_scoping(scoped(p)?),
            ))
        });
        r.register("verify", || Box::new(crate::VerifyPass));
        r
    }

    /// Registers (or replaces) a parameterless factory under `name`; any
    /// spec parameter given to the pass is rejected as unknown.
    pub fn register(
        &mut self,
        name: &str,
        factory: impl Fn() -> Box<dyn Pass> + Send + Sync + 'static,
    ) -> &mut PassRegistry {
        self.register_configurable(name, move |_, _| Ok(factory()))
    }

    /// Registers (or replaces) a parameter-aware factory under `name`. The
    /// factory must `take*` every parameter it understands from
    /// [`PassParams`]; leftovers become unknown-parameter errors. It also
    /// receives the pipeline's [`PipelineOptions`] (e.g. to propagate
    /// `verify_each` into an inner pipeline).
    pub fn register_configurable(
        &mut self,
        name: &str,
        factory: impl Fn(&mut PassParams, PipelineOptions) -> Result<Box<dyn Pass>, String>
            + Send
            + Sync
            + 'static,
    ) -> &mut PassRegistry {
        self.factories.insert(name.to_string(), Box::new(factory));
        self
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Instantiates the pass registered under `name` with no parameters
    /// and default options.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownPass`] when nothing is registered under
    /// `name` — the message lists every registered name, sorted.
    pub fn create(&self, name: &str) -> Result<Box<dyn Pass>, PipelineError> {
        self.create_with(name, PassParams::default(), PipelineOptions::default())
    }

    /// Instantiates the pass registered under `name` with parsed
    /// parameters and the pipeline's options.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownPass`] for an unregistered name,
    /// [`PipelineError::BadParameter`] when the factory rejects a value or
    /// a parameter key is not understood.
    pub fn create_with(
        &self,
        name: &str,
        mut params: PassParams,
        options: PipelineOptions,
    ) -> Result<Box<dyn Pass>, PipelineError> {
        let factory = self
            .factories
            .get(name)
            .ok_or_else(|| PipelineError::UnknownPass {
                name: name.to_string(),
                known: self.names(),
            })?;
        if let Some(key) = params.duplicate_key() {
            return Err(PipelineError::BadParameter {
                pass: name.to_string(),
                message: format!("duplicate parameter `{key}`"),
            });
        }
        let pass =
            factory(&mut params, options).map_err(|message| PipelineError::BadParameter {
                pass: name.to_string(),
                message,
            })?;
        if let Some((key, value)) = params.remaining().first() {
            return Err(PipelineError::BadParameter {
                pass: name.to_string(),
                message: format!("unknown parameter `{key}` (=`{value}`)"),
            });
        }
        Ok(pass)
    }

    /// Parses a pipeline spec (see [`crate::spec`] for the grammar) into a
    /// ready-to-run [`PassManager`].
    ///
    /// # Errors
    ///
    /// [`PipelineError::Spec`] for grammar violations,
    /// [`PipelineError::EmptySpec`] for a blank spec,
    /// [`PipelineError::UnknownPass`] / [`PipelineError::BadParameter`]
    /// for names or parameters the registry rejects.
    pub fn build(
        &self,
        spec: &str,
        options: PipelineOptions,
    ) -> Result<PassManager, PipelineError> {
        let parsed = PassSpec::parse(spec).map_err(PipelineError::Spec)?;
        self.build_parsed(&parsed, options)
    }

    /// Instantiates an already-parsed spec. Used by
    /// [`ModulePassManager`](crate::ModulePassManager) workers, which parse
    /// once and build one pipeline per function.
    ///
    /// # Errors
    ///
    /// See [`PassRegistry::build`] (minus the grammar errors).
    pub fn build_parsed(
        &self,
        spec: &PassSpec,
        options: PipelineOptions,
    ) -> Result<PassManager, PipelineError> {
        if spec.elems.is_empty() {
            return Err(PipelineError::EmptySpec);
        }
        let mut pm = PassManager::new(options.clone());
        for elem in &spec.elems {
            pm.add(self.instantiate(elem, options.clone())?);
        }
        Ok(pm)
    }

    /// Instantiates one spec element (a pass, or a whole fixpoint group as
    /// a [`FixpointPass`] over an inner pipeline).
    ///
    /// # Errors
    ///
    /// See [`PassRegistry::build_parsed`].
    pub fn instantiate(
        &self,
        elem: &SpecElem,
        options: PipelineOptions,
    ) -> Result<Box<dyn Pass>, PipelineError> {
        match elem {
            SpecElem::Pass { name, params } => {
                self.create_with(name, PassParams::new(params.clone()), options)
            }
            SpecElem::Fixpoint { elems, max } => {
                // The inner pipeline inherits verification but not
                // per-pass timing — the group is one slot of the outer
                // report.
                let inner_options = PipelineOptions {
                    time_passes: false,
                    ..options
                };
                let mut inner = PassManager::new(inner_options.clone());
                for e in elems {
                    inner.add(self.instantiate(e, inner_options.clone())?);
                }
                Ok(Box::new(FixpointPass::new(elem.to_string(), inner, *max)))
            }
        }
    }
}

impl std::fmt::Debug for PassRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_spec() {
        let r = PassRegistry::with_transforms();
        let pm = r
            .build(" simplify, dce ,instcombine ", PipelineOptions::default())
            .unwrap();
        assert_eq!(pm.pass_names(), vec!["simplify", "dce", "instcombine"]);
    }

    #[test]
    fn builds_parameterized_and_fixpoint_specs() {
        let r = PassRegistry::with_transforms();
        let pm = r
            .build(
                "simplify(scoped=false),fixpoint(instcombine,dce,max=4)",
                PipelineOptions::default(),
            )
            .unwrap();
        assert_eq!(
            pm.pass_names(),
            vec!["simplify", "fixpoint(instcombine,dce,max=4)"]
        );
    }

    #[test]
    fn rejects_unknown_and_empty() {
        let r = PassRegistry::with_transforms();
        assert!(matches!(
            r.build("simplify,frobnicate", PipelineOptions::default()),
            Err(PipelineError::UnknownPass { name, .. }) if name == "frobnicate"
        ));
        assert!(matches!(
            r.build(" , ", PipelineOptions::default()),
            Err(PipelineError::EmptySpec)
        ));
    }

    #[test]
    fn unknown_pass_error_lists_available_names_sorted() {
        let r = PassRegistry::with_transforms();
        let e = r.create("frobnicate").err().expect("unknown pass");
        let msg = e.to_string();
        // The suggestion lists every registered pass, sorted.
        assert_eq!(
            msg,
            "unknown pass 'frobnicate' (known: dce, instcombine, simplify, ssa-repair, verify)"
        );
        let mut sorted = r.names();
        sorted.sort();
        assert_eq!(r.names(), sorted);
    }

    #[test]
    fn rejects_bad_parameters_with_the_pass_name() {
        let r = PassRegistry::with_transforms();
        let e = r
            .build("dce(scoped=maybe)", PipelineOptions::default())
            .unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("pass 'dce'") && msg.contains("`scoped`") && msg.contains("maybe"),
            "{msg}"
        );
        let e = r
            .build("dce(threshold=0.3)", PipelineOptions::default())
            .unwrap_err();
        assert!(
            e.to_string().contains("unknown parameter `threshold`"),
            "{e}"
        );
    }

    #[test]
    fn duplicate_parameters_are_reported_as_duplicates() {
        // Without the up-front check the leftover second occurrence would
        // be misreported as an *unknown* key.
        let r = PassRegistry::with_transforms();
        let e = r
            .build("dce(scoped=true,scoped=false)", PipelineOptions::default())
            .unwrap_err();
        assert_eq!(e.to_string(), "pass 'dce': duplicate parameter `scoped`");
    }
}
