//! [`Pass`] adapters for the cleanup transforms in `darm-transforms`, plus
//! a standalone SSA-verification pass and a generic closure adapter.
//!
//! Each adapter translates the transform's own change report into the
//! [`PreservedAnalyses`](darm_analysis::PreservedAnalyses) tier it
//! warrants: block/edge surgery preserves nothing, instruction-only
//! rewrites preserve the CFG-shape analyses, a no-op preserves everything
//! (see the crate docs for the invalidation rules). Dead-code elimination
//! additionally preserves [`DivergenceAnalysis`] — removing an unused,
//! side-effect-free instruction cannot change the divergence of any value
//! that remains (divergence propagates from definitions to users).
//!
//! The cleanup adapters are *dirty-scoped*: each remembers the `darm-ir`
//! journal cursor of its previous run and restricts the next run to the
//! blocks and instructions mutated since (the pass's first run — or any
//! run after journal saturation — is automatically whole-function, which
//! establishes the "no redexes outside the window" invariant the scoped
//! runs rely on). A fixpoint driver that re-runs its cleanup pipeline per
//! melded region therefore pays per-region cost, not per-function cost.
//! Construct with [`ScopedPass::with_scoping`]`(false)` to pin a pass to
//! whole-function behavior (the pre-incremental driver used for
//! differential benchmarks).

use crate::{Pass, PassOutcome};
use darm_analysis::{AnalysisManager, Cfg, DivergenceAnalysis, DomTree};
use darm_ir::{DirtyDelta, Function, JournalCursor};
use darm_transforms::simplify::SimplifyStats;
use darm_transforms::{
    repair_ssa_scoped, run_dce_scoped, run_instcombine_scoped, simplify_cfg_scoped,
};
use std::sync::Arc;

/// Common trait of the scoped cleanup adapters: lets drivers pin a pass to
/// whole-function behavior.
pub trait ScopedPass: Sized {
    /// Enables (default) or disables dirty-window scoping.
    fn with_scoping(self, scoped: bool) -> Self;
}

/// Below this many live instructions a dirty window sends the scoped
/// adapters down their whole-function path: the full scan is cheaper than
/// the journal replay plus scoped bookkeeping it would avoid.
const SCOPED_MIN_LIVE_INSTS: usize = 128;

/// Journal bookkeeping shared by the scoped adapters.
#[derive(Debug, Clone)]
struct ScopeTracker {
    scoping: bool,
    cursor: Option<JournalCursor>,
}

impl Default for ScopeTracker {
    fn default() -> ScopeTracker {
        ScopeTracker {
            scoping: true,
            cursor: None,
        }
    }
}

impl ScopeTracker {
    /// The mutation window since the pass's previous run, or `None` for
    /// whole-function (first run, scoping disabled, saturation, or a
    /// window so large that replaying it costs more than the
    /// whole-function work it would save). `Some(clean)` means nothing
    /// changed — the scoped transforms return immediately.
    ///
    /// `work_factor` calibrates the economics: roughly how much more
    /// expensive the pass's whole-function visit of one instruction is
    /// than replaying one journal event. Cheap linear scans (DCE,
    /// instcombine, simplify sweeps) sit near 1; SSA repair — whose
    /// whole-function scan walks dominator chains per operand — benefits
    /// from scoping even when the window rivals the function in size.
    fn window(&self, func: &Function, work_factor: usize) -> Option<DirtyDelta> {
        if !self.scoping {
            return None;
        }
        let cursor = self.cursor?;
        let events = match func.probe_since(cursor) {
            darm_ir::WindowProbe::Clean => return Some(DirtyDelta::default()),
            darm_ir::WindowProbe::Saturated => return None,
            darm_ir::WindowProbe::InstsOnly { events } => events,
            darm_ir::WindowProbe::Shape { events, .. } => events,
        };
        // A clean window costs nothing either way, but once there is
        // anything to replay, a function this small is finished faster by
        // the plain whole-function scan than by materializing the delta
        // and running the scoped walk's bookkeeping (measured against the
        // frozen whole-function baseline on the paper kernels).
        if func.live_inst_count() < SCOPED_MIN_LIVE_INSTS {
            return None;
        }
        if events > func.live_inst_count().saturating_mul(work_factor) / 2 {
            return None;
        }
        let delta = func.dirty_since(cursor);
        (!delta.is_saturated()).then_some(delta)
    }

    /// Marks everything up to the function's current state as processed.
    fn advance(&mut self, func: &Function) {
        self.cursor = self.scoping.then(|| func.journal_head());
    }

    /// Forgets the previous function's cursor (keeps the scoping flag —
    /// it's configuration, not per-function state).
    fn reset(&mut self) {
        self.cursor = None;
    }
}

/// `simplifycfg` as a pass. Reports precisely: runs that only removed φs
/// keep the shape analyses; runs that touched blocks or edges drop all.
#[derive(Debug, Default)]
pub struct SimplifyCfgPass {
    total: SimplifyStats,
    tracker: ScopeTracker,
}

impl ScopedPass for SimplifyCfgPass {
    fn with_scoping(mut self, scoped: bool) -> SimplifyCfgPass {
        self.tracker.scoping = scoped;
        self
    }
}

impl SimplifyCfgPass {
    fn shape_changes(s: &SimplifyStats) -> usize {
        s.folded_const_branches
            + s.folded_same_target_branches
            + s.merged_blocks
            + s.elided_empty_blocks
            + s.removed_unreachable
    }

    fn accumulate(&mut self, s: &SimplifyStats) {
        self.total.folded_const_branches += s.folded_const_branches;
        self.total.folded_same_target_branches += s.folded_same_target_branches;
        self.total.merged_blocks += s.merged_blocks;
        self.total.elided_empty_blocks += s.elided_empty_blocks;
        self.total.removed_unreachable += s.removed_unreachable;
        self.total.removed_trivial_phis += s.removed_trivial_phis;
        self.total.removed_duplicate_phis += s.removed_duplicate_phis;
    }
}

impl Pass for SimplifyCfgPass {
    fn name(&self) -> &str {
        "simplify"
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        let window = self.tracker.window(func, 2);
        let stats = simplify_cfg_scoped(func, am, window.as_ref());
        self.tracker.advance(func);
        self.accumulate(&stats);
        Ok(if Self::shape_changes(&stats) > 0 {
            PassOutcome::cfg_changed(stats.total() as u64)
        } else if stats.total() > 0 {
            PassOutcome::insts_changed(stats.total() as u64)
        } else {
            PassOutcome::unchanged()
        })
    }

    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        let s = &self.total;
        [
            (
                "folded branches",
                s.folded_const_branches + s.folded_same_target_branches,
            ),
            ("merged blocks", s.merged_blocks),
            ("elided blocks", s.elided_empty_blocks),
            ("removed unreachable", s.removed_unreachable),
            (
                "removed phis",
                s.removed_trivial_phis + s.removed_duplicate_phis,
            ),
        ]
        .into_iter()
        .filter(|&(_, v)| v > 0)
        .map(|(k, v)| (k, v as u64))
        .collect()
    }

    fn reset(&mut self) {
        self.total = SimplifyStats::default();
        self.tracker.reset();
    }
}

/// Dead-code elimination as a pass (instruction-only: keeps CFG shape and,
/// since removing unused instructions cannot affect remaining values'
/// divergence, the divergence analysis as well).
#[derive(Debug, Default)]
pub struct DcePass {
    removed: u64,
    tracker: ScopeTracker,
}

impl ScopedPass for DcePass {
    fn with_scoping(mut self, scoped: bool) -> DcePass {
        self.tracker.scoping = scoped;
        self
    }
}

impl Pass for DcePass {
    fn name(&self) -> &str {
        "dce"
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        let window = self.tracker.window(func, 4);
        let n = run_dce_scoped(func, window.as_ref()) as u64;
        self.tracker.advance(func);
        self.removed += n;
        Ok(if n > 0 {
            am.invalidate::<darm_analysis::Liveness>();
            PassOutcome {
                preserved: darm_analysis::PreservedAnalyses::cfg_shape()
                    .preserve::<DivergenceAnalysis>(),
                changed: true,
                units: n,
            }
        } else {
            PassOutcome::unchanged()
        })
    }

    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        vec![("removed insts", self.removed)]
    }

    fn reset(&mut self) {
        self.removed = 0;
        self.tracker.reset();
    }
}

/// Peephole `instcombine` as a pass (instruction-only, keeps CFG shape;
/// divergence may shrink under constant substitution, so it is dropped).
#[derive(Debug, Default)]
pub struct InstCombinePass {
    combined: u64,
    tracker: ScopeTracker,
}

impl ScopedPass for InstCombinePass {
    fn with_scoping(mut self, scoped: bool) -> InstCombinePass {
        self.tracker.scoping = scoped;
        self
    }
}

impl Pass for InstCombinePass {
    fn name(&self) -> &str {
        "instcombine"
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        let window = self.tracker.window(func, 4);
        let n = run_instcombine_scoped(func, window.as_ref()) as u64;
        self.tracker.advance(func);
        self.combined += n;
        Ok(if n > 0 {
            am.invalidate_values();
            PassOutcome::insts_changed(n)
        } else {
            PassOutcome::unchanged()
        })
    }

    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        vec![("combined insts", self.combined)]
    }

    fn reset(&mut self) {
        self.combined = 0;
        self.tracker.reset();
    }
}

/// IDF-based SSA reconstruction as a pass. φ insertion leaves the block
/// graph intact, so the shape analyses survive.
///
/// The scoped run keeps a *dominator baseline*: the tree as of its
/// previous run. The diff between baseline and current tree
/// ([`DomTree::changed_from`]) names every block whose dominance moved —
/// together with the journal window, exactly where SSA can have broken.
#[derive(Debug, Default)]
pub struct SsaRepairPass {
    repaired: u64,
    tracker: ScopeTracker,
    baseline: Option<Arc<DomTree>>,
}

impl ScopedPass for SsaRepairPass {
    fn with_scoping(mut self, scoped: bool) -> SsaRepairPass {
        self.tracker.scoping = scoped;
        self
    }
}

impl Pass for SsaRepairPass {
    fn name(&self) -> &str {
        "ssa-repair"
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        // Baseline resolution: the pass's own previous run, or — for the
        // very first run under a checkpointing driver — the driver's
        // repair checkpoint (the function was fully repaired there, so
        // the window since it bounds every possible defect).
        let mut scoped = match (self.tracker.window(func, 8), self.baseline.clone()) {
            (Some(delta), Some(baseline)) => Some((delta, baseline)),
            _ => None,
        };
        if scoped.is_none()
            && self.tracker.scoping
            && self.baseline.is_none()
            && func.live_inst_count() >= SCOPED_MIN_LIVE_INSTS
        {
            if let Some((cursor, tree)) = am.take_dom_checkpoint() {
                let events = match func.probe_since(cursor) {
                    darm_ir::WindowProbe::Clean => Some(0),
                    darm_ir::WindowProbe::Saturated => None,
                    darm_ir::WindowProbe::InstsOnly { events }
                    | darm_ir::WindowProbe::Shape { events, .. } => Some(events),
                };
                if events.is_some_and(|e| e <= func.live_inst_count().saturating_mul(4)) {
                    let delta = func.dirty_since(cursor);
                    if !delta.is_saturated() {
                        scoped = Some((delta, tree));
                    }
                }
            }
        }
        let n = match scoped {
            Some((delta, baseline)) => {
                let cfg = am.get::<Cfg>(func);
                let dt = am.get::<DomTree>(func);
                let dom_changed = DomTree::changed_from(&baseline, &dt, &cfg);
                // When dominance moved across most of the function (a
                // meld rewriting the bulk of a small kernel), the scoped
                // scan degenerates to the whole scan plus bookkeeping —
                // take the straight path instead.
                let moved = dom_changed.iter().filter(|&&c| c).count();
                if moved * 3 > cfg.rpo().len() * 2 {
                    repair_ssa_scoped(func, am, None) as u64
                } else {
                    repair_ssa_scoped(func, am, Some((&delta, &dom_changed))) as u64
                }
            }
            None => repair_ssa_scoped(func, am, None) as u64,
        };
        // Repair preserves the block graph, so the tree queried during the
        // run is the tree of the repaired function: it becomes the next
        // baseline.
        if self.tracker.scoping {
            self.baseline = Some(am.get::<DomTree>(func));
        }
        self.tracker.advance(func);
        self.repaired += n;
        Ok(if n > 0 {
            PassOutcome::insts_changed(n)
        } else {
            PassOutcome::unchanged()
        })
    }

    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        vec![("repaired defs", self.repaired)]
    }

    fn reset(&mut self) {
        self.repaired = 0;
        self.tracker.reset();
        self.baseline = None;
    }
}

/// Full SSA verification as an explicit pipeline element (useful in specs
/// even when `--verify-each` is off). Changes nothing; fails the pipeline
/// on invalid IR.
#[derive(Debug, Default)]
pub struct VerifyPass;

impl Pass for VerifyPass {
    fn name(&self) -> &str {
        "verify"
    }

    fn run(
        &mut self,
        func: &mut Function,
        _am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        darm_analysis::verify_ssa(func).map_err(|e| e.to_string())?;
        Ok(PassOutcome::unchanged())
    }
}

/// A `fixpoint(...)` spec group as a pass: re-runs its inner pipeline
/// until a full round reports no change, or `max` rounds have run.
///
/// The inner passes apply their own
/// [`PreservedAnalyses`](darm_analysis::PreservedAnalyses) reports against
/// the shared [`AnalysisManager`] after every run, so by the time the
/// group returns the cache holds only entries its rounds did not break —
/// the group itself therefore reports `all()` (keeping that state) plus a
/// truthful `changed` flag — the same contract the melding pass's inner
/// cleanup pipeline relies on.
pub struct FixpointPass {
    label: String,
    inner: crate::PassManager,
    max: usize,
    rounds: u64,
}

impl FixpointPass {
    /// Iteration cap when the spec gives no `max=N`.
    pub const DEFAULT_MAX: usize = 32;

    /// Wraps `inner` as a fixpoint group named `label` (the rendered spec
    /// element, e.g. `fixpoint(simplify,dce)`).
    pub fn new(label: String, inner: crate::PassManager, max: Option<usize>) -> FixpointPass {
        FixpointPass {
            label,
            inner,
            max: max.unwrap_or(Self::DEFAULT_MAX).max(1),
            rounds: 0,
        }
    }
}

impl Pass for FixpointPass {
    fn name(&self) -> &str {
        &self.label
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        let units_before = self.inner.total_units();
        let mut changed_any = false;
        for _ in 0..self.max {
            darm_ir::budget::poll("pipeline::fixpoint");
            self.rounds += 1;
            let changed = self.inner.run_once(func, am).map_err(|e| e.to_string())?;
            changed_any |= changed;
            if !changed {
                break;
            }
        }
        Ok(PassOutcome {
            preserved: darm_analysis::PreservedAnalyses::all(),
            changed: changed_any,
            units: self.inner.total_units() - units_before,
        })
    }

    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        vec![("rounds", self.rounds)]
    }

    fn reset(&mut self) {
        self.rounds = 0;
        self.inner.reset_for_reuse();
    }
}

/// Adapter turning a closure into a [`Pass`] — handy for tests and one-off
/// drivers. The closure receives the function and the analysis manager and
/// returns the outcome.
pub struct FnPass<F> {
    name: &'static str,
    f: F,
}

impl<F> FnPass<F>
where
    F: FnMut(&mut Function, &mut AnalysisManager) -> Result<PassOutcome, String>,
{
    /// Wraps `f` as a pass called `name`.
    pub fn new(name: &'static str, f: F) -> FnPass<F> {
        FnPass { name, f }
    }
}

impl<F> Pass for FnPass<F>
where
    F: FnMut(&mut Function, &mut AnalysisManager) -> Result<PassOutcome, String>,
{
    fn name(&self) -> &str {
        self.name
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        (self.f)(func, am)
    }
}
