//! [`Pass`] adapters for the cleanup transforms in `darm-transforms`, plus
//! a standalone SSA-verification pass and a generic closure adapter.
//!
//! Each adapter translates the transform's own change report into the
//! [`PreservedAnalyses`](darm_analysis::PreservedAnalyses) tier it
//! warrants: block/edge surgery preserves nothing, instruction-only
//! rewrites preserve the CFG-shape analyses, a no-op preserves everything
//! (see the crate docs for the invalidation rules).

use crate::{Pass, PassOutcome};
use darm_analysis::AnalysisManager;
use darm_ir::Function;
use darm_transforms::simplify::SimplifyStats;
use darm_transforms::{repair_ssa_with, run_dce, run_instcombine, simplify_cfg_with};

/// `simplifycfg` as a pass. Reports precisely: runs that only removed φs
/// keep the shape analyses; runs that touched blocks or edges drop all.
#[derive(Debug, Default)]
pub struct SimplifyCfgPass {
    total: SimplifyStats,
}

impl SimplifyCfgPass {
    fn shape_changes(s: &SimplifyStats) -> usize {
        s.folded_const_branches
            + s.folded_same_target_branches
            + s.merged_blocks
            + s.elided_empty_blocks
            + s.removed_unreachable
    }

    fn accumulate(&mut self, s: &SimplifyStats) {
        self.total.folded_const_branches += s.folded_const_branches;
        self.total.folded_same_target_branches += s.folded_same_target_branches;
        self.total.merged_blocks += s.merged_blocks;
        self.total.elided_empty_blocks += s.elided_empty_blocks;
        self.total.removed_unreachable += s.removed_unreachable;
        self.total.removed_trivial_phis += s.removed_trivial_phis;
        self.total.removed_duplicate_phis += s.removed_duplicate_phis;
    }
}

impl Pass for SimplifyCfgPass {
    fn name(&self) -> &str {
        "simplify"
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        let stats = simplify_cfg_with(func, am);
        self.accumulate(&stats);
        Ok(if Self::shape_changes(&stats) > 0 {
            PassOutcome::cfg_changed(stats.total() as u64)
        } else if stats.total() > 0 {
            PassOutcome::insts_changed(stats.total() as u64)
        } else {
            PassOutcome::unchanged()
        })
    }

    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        let s = &self.total;
        [
            (
                "folded branches",
                s.folded_const_branches + s.folded_same_target_branches,
            ),
            ("merged blocks", s.merged_blocks),
            ("elided blocks", s.elided_empty_blocks),
            ("removed unreachable", s.removed_unreachable),
            (
                "removed phis",
                s.removed_trivial_phis + s.removed_duplicate_phis,
            ),
        ]
        .into_iter()
        .filter(|&(_, v)| v > 0)
        .map(|(k, v)| (k, v as u64))
        .collect()
    }
}

/// Dead-code elimination as a pass (instruction-only, keeps CFG shape).
#[derive(Debug, Default)]
pub struct DcePass {
    removed: u64,
}

impl Pass for DcePass {
    fn name(&self) -> &str {
        "dce"
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        let n = run_dce(func) as u64;
        self.removed += n;
        Ok(if n > 0 {
            am.invalidate_values();
            PassOutcome::insts_changed(n)
        } else {
            PassOutcome::unchanged()
        })
    }

    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        vec![("removed insts", self.removed)]
    }
}

/// Peephole `instcombine` as a pass (instruction-only, keeps CFG shape).
#[derive(Debug, Default)]
pub struct InstCombinePass {
    combined: u64,
}

impl Pass for InstCombinePass {
    fn name(&self) -> &str {
        "instcombine"
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        let n = run_instcombine(func) as u64;
        self.combined += n;
        Ok(if n > 0 {
            am.invalidate_values();
            PassOutcome::insts_changed(n)
        } else {
            PassOutcome::unchanged()
        })
    }

    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        vec![("combined insts", self.combined)]
    }
}

/// IDF-based SSA reconstruction as a pass. φ insertion leaves the block
/// graph intact, so the shape analyses survive.
#[derive(Debug, Default)]
pub struct SsaRepairPass {
    repaired: u64,
}

impl Pass for SsaRepairPass {
    fn name(&self) -> &str {
        "ssa-repair"
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        let n = repair_ssa_with(func, am) as u64;
        self.repaired += n;
        Ok(if n > 0 {
            PassOutcome::insts_changed(n)
        } else {
            PassOutcome::unchanged()
        })
    }

    fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        vec![("repaired defs", self.repaired)]
    }
}

/// Full SSA verification as an explicit pipeline element (useful in specs
/// even when `--verify-each` is off). Changes nothing; fails the pipeline
/// on invalid IR.
#[derive(Debug, Default)]
pub struct VerifyPass;

impl Pass for VerifyPass {
    fn name(&self) -> &str {
        "verify"
    }

    fn run(
        &mut self,
        func: &mut Function,
        _am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        darm_analysis::verify_ssa(func).map_err(|e| e.to_string())?;
        Ok(PassOutcome::unchanged())
    }
}

/// Adapter turning a closure into a [`Pass`] — handy for tests and one-off
/// drivers. The closure receives the function and the analysis manager and
/// returns the outcome.
pub struct FnPass<F> {
    name: &'static str,
    f: F,
}

impl<F> FnPass<F>
where
    F: FnMut(&mut Function, &mut AnalysisManager) -> Result<PassOutcome, String>,
{
    /// Wraps `f` as a pass called `name`.
    pub fn new(name: &'static str, f: F) -> FnPass<F> {
        FnPass { name, f }
    }
}

impl<F> Pass for FnPass<F>
where
    F: FnMut(&mut Function, &mut AnalysisManager) -> Result<PassOutcome, String>,
{
    fn name(&self) -> &str {
        self.name
    }

    fn run(
        &mut self,
        func: &mut Function,
        am: &mut AnalysisManager,
    ) -> Result<PassOutcome, String> {
        (self.f)(func, am)
    }
}
