//! Module-level compilation: one [`ModulePassManager`] runs a per-function
//! pipeline (built from one parsed spec) over every function of a
//! [`Module`], serially or on a scoped worker pool.
//!
//! Functions are independent — they share no arenas, and every analysis
//! result is `Send + Sync` — so the parallel path needs no coordination
//! beyond a work queue: workers pop positions of a precomputed *schedule*
//! from an atomic counter, build a private pipeline instance from the
//! shared parsed spec, and run it against their function. The schedule is
//! largest-function-first (live blocks + instructions, input order
//! breaking ties): on skewed suites a big kernel claimed last would
//! otherwise stretch the parallel makespan on its own. Results land in
//! per-function slots, so reports and transformed functions are assembled
//! in *input order* regardless of claim or completion order: a parallel
//! run is bit-identical to the serial one (`jobs = 1`, which takes a
//! plain loop with no thread or lock overhead).
//!
//! Each worker builds *one* pipeline instance from the shared parsed spec
//! and pools it across the functions it claims:
//! [`PassManager::reset_for_reuse`](crate::PassManager::reset_for_reuse)
//! clears the per-function pass state (journal cursors, dominator
//! baselines, stat sinks) between functions, so a pooled run is
//! bit-identical to per-function construction without paying the factory
//! cost per function. After a contained fault the pooled instance is
//! discarded (a pass may have been abandoned mid-run) and rebuilt lazily.
//!
//! Every per-function pipeline runs inside a containment boundary: panics
//! and budget cancellations are caught, the function is rolled back to
//! its pre-pipeline snapshot, and — per [`ModuleOptions::on_error`] — the
//! run either records a [`FunctionOutcome::Degraded`] and continues
//! ([`OnError::Degrade`]) or fails with the earliest fault in module
//! order ([`OnError::Fail`]). Workers recover poisoned slot mutexes with
//! `PoisonError::into_inner` instead of cascading a crash.

use crate::registry::PassRegistry;
use crate::spec::PassSpec;
use crate::{
    clear_current_pass, install_quiet_panic_hook, Diagnostic, FaultCause, PassManager, PassRecord,
    PipelineError, PipelineOptions, PipelineReport,
};
use darm_analysis::{AnalysisCounters, AnalysisManager};
use darm_ir::{Function, Module};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// What a [`ModulePassManager`] does when one function's pipeline faults
/// (panics, errors, or exhausts its budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnError {
    /// Fail the whole module run with the earliest (in module order)
    /// fault. The library default — it preserves the pre-containment
    /// error surface — though panics are still caught and surfaced as
    /// [`PipelineError::Fault`] instead of crashing the driver.
    #[default]
    Fail,
    /// Contain the fault: restore the function's pre-pipeline IR (bit
    /// identical, fresh journal identity), record
    /// [`FunctionOutcome::Degraded`] with its [`Diagnostic`], and keep
    /// compiling every other function. The CLI default (`darm meld
    /// --on-error=degrade`): melding is strictly optional, so baseline IR
    /// is always a correct answer.
    Degrade,
}

/// Knobs of a [`ModulePassManager`] run.
#[derive(Debug, Clone, Default)]
pub struct ModuleOptions {
    /// Per-function pipeline options (verification, timing, budget).
    pub pipeline: PipelineOptions,
    /// Worker threads; `0` (the default) means
    /// [`std::thread::available_parallelism`], `1` the serial path.
    pub jobs: usize,
    /// Fault response: fail the run or degrade the function.
    pub on_error: OnError,
}

impl ModuleOptions {
    /// Serial module compilation with the given pipeline options.
    pub fn serial(pipeline: PipelineOptions) -> ModuleOptions {
        ModuleOptions {
            pipeline,
            jobs: 1,
            on_error: OnError::default(),
        }
    }

    /// The worker count a run will actually use for `n_functions`
    /// functions: `jobs` resolved against available parallelism and capped
    /// at the function count.
    pub fn effective_jobs(&self, n_functions: usize) -> usize {
        let requested = if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.jobs
        };
        requested.clamp(1, n_functions.max(1))
    }
}

/// How one function's pipeline ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionOutcome {
    /// The pipeline ran to completion; the function holds its output.
    Optimized,
    /// The pipeline faulted and was contained: the function holds its
    /// pre-pipeline IR, bit-identical to the input, and the diagnostic
    /// says why.
    Degraded(Diagnostic),
}

impl FunctionOutcome {
    /// Whether this is a degraded outcome.
    pub fn is_degraded(&self) -> bool {
        matches!(self, FunctionOutcome::Degraded(_))
    }

    /// The diagnostic of a degraded outcome.
    pub fn diagnostic(&self) -> Option<&Diagnostic> {
        match self {
            FunctionOutcome::Optimized => None,
            FunctionOutcome::Degraded(diag) => Some(diag),
        }
    }
}

/// One function's share of a [`ModuleReport`].
#[derive(Debug, Clone)]
pub struct FunctionReport {
    /// Function name.
    pub function: String,
    /// The function's pipeline report (per-pass records, analysis
    /// computations). Empty for a degraded function — its pipeline work
    /// was rolled back with its IR.
    pub report: PipelineReport,
    /// Whether the function was optimized or degraded to baseline IR.
    pub outcome: FunctionOutcome,
}

/// Everything a module run measured: per-function reports in module order
/// plus module-level wall clock.
#[derive(Debug, Clone, Default)]
pub struct ModuleReport {
    /// Per-function reports, in module (input) order.
    pub functions: Vec<FunctionReport>,
    /// Wall-clock seconds of the whole module run — under a parallel run
    /// this is smaller than the summed per-function pipeline time.
    pub wall_seconds: f64,
    /// Worker threads the run used.
    pub jobs: usize,
}

impl ModuleReport {
    /// Per-pass rollup across every function: pipeline slots are merged by
    /// position (every function ran the same spec), summing runs, units,
    /// time, analysis counters and named stats. `total_seconds` of the
    /// result is summed per-function pipeline (CPU) time, not wall time.
    pub fn rollup(&self) -> PipelineReport {
        let mut passes: Vec<PassRecord> = Vec::new();
        let mut computations: Vec<(&'static str, usize)> = Vec::new();
        let mut total = 0.0;
        for fr in &self.functions {
            total += fr.report.total_seconds;
            for (slot, r) in fr.report.passes.iter().enumerate() {
                if passes.len() <= slot {
                    passes.push(PassRecord {
                        name: r.name.clone(),
                        ..PassRecord::default()
                    });
                }
                let acc = &mut passes[slot];
                acc.runs += r.runs;
                acc.changed_runs += r.changed_runs;
                acc.units += r.units;
                acc.seconds += r.seconds;
                acc.analysis = AnalysisCounters {
                    computes: acc.analysis.computes + r.analysis.computes,
                    hits: acc.analysis.hits + r.analysis.hits,
                    updates: acc.analysis.updates + r.analysis.updates,
                    in_place_deletion_updates: acc.analysis.in_place_deletion_updates
                        + r.analysis.in_place_deletion_updates,
                    in_place_cfg_updates: acc.analysis.in_place_cfg_updates
                        + r.analysis.in_place_cfg_updates,
                    in_place_divergence_updates: acc.analysis.in_place_divergence_updates
                        + r.analysis.in_place_divergence_updates,
                };
                for &(k, v) in &r.stats {
                    match acc.stats.iter_mut().find(|(ak, _)| *ak == k) {
                        Some((_, av)) => *av += v,
                        None => acc.stats.push((k, v)),
                    }
                }
            }
            for &(name, count) in &fr.report.analysis_computations {
                match computations.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, c)) => *c += count,
                    None => computations.push((name, count)),
                }
            }
        }
        PipelineReport {
            passes,
            analysis_computations: computations,
            total_seconds: total,
        }
    }

    /// The degraded functions, in module order, with their diagnostics.
    pub fn degraded(&self) -> impl Iterator<Item = (&str, &Diagnostic)> {
        self.functions.iter().filter_map(|fr| {
            fr.outcome
                .diagnostic()
                .map(|diag| (fr.function.as_str(), diag))
        })
    }

    /// How many functions degraded to baseline IR.
    pub fn degraded_count(&self) -> usize {
        self.degraded().count()
    }

    /// Renders the module-level `--time-passes` tables: the per-pass
    /// rollup, then per-function totals and outcomes, then the wall-clock
    /// line (plus a degradation summary when any function degraded).
    pub fn render(&self) -> String {
        let rollup = self.rollup();
        let mut out = format!(
            "== module pipeline: {} function(s), {} job(s) ==\n",
            self.functions.len(),
            self.jobs
        );
        out.push_str(&rollup.render());
        out.push_str("| function | time (ms) | units | outcome |\n|---|---|---|---|\n");
        for fr in &self.functions {
            out.push_str(&format!(
                "| @{} | {:.3} | {} | {} |\n",
                fr.function,
                fr.report.total_seconds * 1e3,
                fr.report.passes.iter().map(|p| p.units).sum::<u64>(),
                if fr.outcome.is_degraded() {
                    "degraded"
                } else {
                    "optimized"
                },
            ));
        }
        let degraded = self.degraded_count();
        if degraded > 0 {
            out.push_str(&format!("degraded: {degraded} function(s)\n"));
        }
        out.push_str(&format!(
            "wall: {:.3} ms (summed per-function pipeline time: {:.3} ms)\n",
            self.wall_seconds * 1e3,
            rollup.total_seconds * 1e3,
        ));
        out
    }
}

/// Work slot of the parallel path: exclusive access to one function and a
/// place for its result.
struct Slot<'f> {
    func: &'f mut Function,
    result: Option<Result<(PipelineReport, FunctionOutcome), PipelineError>>,
}

/// Runs one pipeline spec over every function of a [`Module`].
///
/// The spec is parsed and validated once at construction (a probe pipeline
/// is built so unknown passes and bad parameters fail before any function
/// is touched); each function then gets a fresh pipeline instance built
/// from the parsed AST. See the [module docs](self) for the concurrency
/// story.
pub struct ModulePassManager<'r> {
    registry: &'r PassRegistry,
    spec: PassSpec,
    /// Run options (worker count, per-function pipeline options).
    pub options: ModuleOptions,
}

impl<'r> ModulePassManager<'r> {
    /// Parses `spec` and validates it against `registry`.
    ///
    /// # Errors
    ///
    /// Grammar violations ([`PipelineError::Spec`]), unknown passes, bad
    /// parameters, or an empty spec — all before any function runs.
    pub fn new(
        registry: &'r PassRegistry,
        spec: &str,
        options: ModuleOptions,
    ) -> Result<ModulePassManager<'r>, PipelineError> {
        let parsed = PassSpec::parse(spec).map_err(PipelineError::Spec)?;
        ModulePassManager::with_spec(registry, parsed, options)
    }

    /// [`ModulePassManager::new`] over an already-parsed spec.
    ///
    /// # Errors
    ///
    /// See [`ModulePassManager::new`] (minus the grammar errors).
    pub fn with_spec(
        registry: &'r PassRegistry,
        spec: PassSpec,
        options: ModuleOptions,
    ) -> Result<ModulePassManager<'r>, PipelineError> {
        // Probe build: surface registry errors at construction time.
        registry.build_parsed(&spec, options.pipeline.clone())?;
        Ok(ModulePassManager {
            registry,
            spec,
            options,
        })
    }

    /// The parsed spec the manager instantiates per function.
    pub fn spec(&self) -> &PassSpec {
        &self.spec
    }

    /// The one-shot request entry point shared by the CLI, the benchmark
    /// suites and the `darm serve` compile service: parse and validate
    /// `spec`, then run it over every function of `module` under
    /// `options`. Equivalent to [`ModulePassManager::new`] followed by
    /// [`ModulePassManager::run`], packaged so every driver goes through
    /// one request → module-compile path.
    ///
    /// # Errors
    ///
    /// Spec/registry validation errors before any function is touched,
    /// then the run errors of [`ModulePassManager::run`].
    pub fn compile(
        registry: &PassRegistry,
        spec: &str,
        options: ModuleOptions,
        module: &mut Module,
    ) -> Result<ModuleReport, PipelineError> {
        ModulePassManager::new(registry, spec, options)?.run(module)
    }

    /// The order the worker pool claims functions in: largest first (by
    /// live block + instruction count, input order breaking ties), so a
    /// big kernel never starts last and stretches the parallel makespan.
    /// Output assembly stays input-ordered regardless — scheduling affects
    /// wall clock only, never results.
    pub fn scheduled_order(&self, module: &Module) -> Vec<usize> {
        let mut order: Vec<usize> = (0..module.len()).collect();
        let size = |f: &Function| f.live_block_count() + f.live_inst_count();
        order.sort_by_key(|&i| (std::cmp::Reverse(size(&module.functions()[i])), i));
        order
    }

    /// Runs the pipeline over every function of `module`, in parallel when
    /// `options.jobs` resolves to more than one worker.
    ///
    /// Every per-function pipeline runs inside a containment boundary (see
    /// [`OnError`]): with [`OnError::Degrade`] a faulting function keeps
    /// its pre-pipeline IR and is reported as
    /// [`FunctionOutcome::Degraded`]; the run itself succeeds.
    ///
    /// # Errors
    ///
    /// Under [`OnError::Fail`]: the first (in module order) function
    /// failure — [`PipelineError::InFunction`] for regular pipeline
    /// errors, [`PipelineError::Fault`] for contained panics and budget
    /// cancellations. The serial path stops at the failing function; the
    /// parallel pool completes every function (the largest-first schedule
    /// claims out of input order, so finishing the pool is what keeps the
    /// reported failure deterministic) and then reports the earliest.
    /// Other functions may or may not have been transformed — treat the
    /// module as poisoned on error.
    pub fn run(&self, module: &mut Module) -> Result<ModuleReport, PipelineError> {
        let t0 = Instant::now();
        let names: Vec<String> = module
            .functions()
            .iter()
            .map(|f| f.name().to_string())
            .collect();
        // Cross-kernel scheduling: workers claim the largest functions
        // first (see [`ModulePassManager::scheduled_order`]).
        let schedule = self.scheduled_order(module);
        let funcs = module.functions_mut();
        let jobs = self.options.effective_jobs(funcs.len());
        // `Fault` diagnostics already name their function; everything else
        // gets wrapped so module errors always say where they happened.
        let wrap = |function: &String, error: PipelineError| match error {
            fault @ PipelineError::Fault(_) => fault,
            error => PipelineError::InFunction {
                function: function.clone(),
                error: Box::new(error),
            },
        };
        let mut functions = Vec::with_capacity(funcs.len());
        if jobs <= 1 {
            // Serial: one pooled pipeline instance serves every function,
            // and any failure is by construction the earliest one.
            let mut pool = None;
            for (name, func) in names.iter().zip(funcs.iter_mut()) {
                match self.compile_one(&mut pool, func) {
                    Ok((report, outcome)) => functions.push(FunctionReport {
                        function: name.clone(),
                        report,
                        outcome,
                    }),
                    Err(e) => return Err(wrap(name, e)),
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Slot>> = funcs
                .iter_mut()
                .map(|func| Mutex::new(Slot { func, result: None }))
                .collect();
            std::thread::scope(|s| {
                for _ in 0..jobs {
                    s.spawn(|| {
                        // Per-worker pooled pipeline instance, reset (or
                        // discarded, after a fault) between functions.
                        let mut pool = None;
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&i) = schedule.get(k) else { break };
                            // Containment catches pass panics, but a slot
                            // can still be poisoned by a panic outside the
                            // boundary; the slot data is valid regardless
                            // of where its holder died (the result is
                            // either written whole or absent), so recover
                            // it instead of cascading the crash.
                            let mut slot = slots[i].lock().unwrap_or_else(PoisonError::into_inner);
                            slot.result = Some(self.compile_one(&mut pool, slot.func));
                        }
                    });
                }
            });
            // Deterministic, input-ordered assembly (workers claim in
            // schedule order and finish in any order; slots are indexed by
            // input position). Every function runs even when one fails —
            // the module is poisoned on error regardless, and completing
            // the pool makes "earliest failure in module order" exact
            // under out-of-order scheduling.
            let mut results: Vec<Option<Result<(PipelineReport, FunctionOutcome), PipelineError>>> =
                slots
                    .into_iter()
                    .map(|s| {
                        s.into_inner()
                            .unwrap_or_else(PoisonError::into_inner)
                            .result
                    })
                    .collect();
            if let Some(i) = results.iter().position(|r| !matches!(r, Some(Ok(_)))) {
                return Err(match results.swap_remove(i) {
                    Some(Err(e)) => wrap(&names[i], e),
                    // A worker died before writing the slot. Containment
                    // should make this unreachable; surface it as a fault
                    // of the function instead of crashing the driver.
                    None => PipelineError::Fault(Diagnostic {
                        function: names[i].clone(),
                        pass: None,
                        site: None,
                        cause: FaultCause::Panic(
                            "worker terminated before completing the function".to_string(),
                        ),
                    }),
                    Some(Ok(_)) => unreachable!("position() found a non-Ok slot"),
                });
            }
            for (name, result) in names.iter().zip(results) {
                let (report, outcome) = result
                    .expect("non-Ok slots were returned above")
                    .expect("non-Ok slots were returned above");
                functions.push(FunctionReport {
                    function: name.clone(),
                    report,
                    outcome,
                });
            }
        }
        Ok(ModuleReport {
            functions,
            wall_seconds: t0.elapsed().as_secs_f64(),
            jobs,
        })
    }

    /// Compiles one function through a pooled pipeline instance.
    ///
    /// The pool is built lazily from the parsed spec and reset between
    /// functions ([`PassManager::reset_for_reuse`]); after any fault it is
    /// discarded — a pass may have been abandoned mid-run — and rebuilt
    /// lazily for the next function.
    ///
    /// # Errors
    ///
    /// Under [`OnError::Degrade`], faults degrade the function (`Ok` with
    /// [`FunctionOutcome::Degraded`], IR restored to the pre-pipeline
    /// snapshot); only pipeline construction itself can fail. Under
    /// [`OnError::Fail`] the fault is returned: regular pipeline errors
    /// as-is, panics and budget cancellations as
    /// [`PipelineError::Fault`].
    fn compile_one(
        &self,
        pool: &mut Option<PassManager>,
        func: &mut Function,
    ) -> Result<(PipelineReport, FunctionOutcome), PipelineError> {
        match pool {
            Some(pm) => pm.reset_for_reuse(),
            None => {
                *pool = Some(
                    self.registry
                        .build_parsed(&self.spec, self.options.pipeline.clone())?,
                );
            }
        }
        let pm = pool.as_mut().expect("pool was just filled");
        let mut am = AnalysisManager::new();
        match self.options.on_error {
            OnError::Degrade => match pm.run_contained(func, &mut am) {
                Ok(report) => Ok((report, FunctionOutcome::Optimized)),
                Err(diag) => {
                    *pool = None;
                    Ok((PipelineReport::default(), FunctionOutcome::Degraded(diag)))
                }
            },
            OnError::Fail => {
                // Same containment boundary, but faults fail the run
                // instead of degrading, and regular pipeline errors pass
                // through typed (no snapshot/rollback: the module is
                // treated as poisoned on error, and skipping the function
                // clone keeps the fault-free default path overhead-free).
                install_quiet_panic_hook();
                clear_current_pass();
                darm_ir::fault::begin_function();
                match catch_unwind(AssertUnwindSafe(|| pm.run_with(func, &mut am))) {
                    Ok(Ok(report)) => Ok((report, FunctionOutcome::Optimized)),
                    Ok(Err(error)) => {
                        *pool = None;
                        Err(error)
                    }
                    Err(payload) => {
                        *pool = None;
                        Err(PipelineError::Fault(Diagnostic::from_unwind(
                            func.name(),
                            payload,
                        )))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{IcmpPred, Type, Value};

    /// A function with a constant diamond plus dead code — grist for
    /// simplify/instcombine/dce.
    fn messy(name: &str) -> Function {
        let mut f = Function::new(name, vec![Type::I32], Type::I32);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        b.br(Value::I1(true), t, e);
        b.switch_to(t);
        let v = b.add(b.param(0), b.const_i32(1));
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        let p = b.phi(Type::I32, &[(t, v), (e, Value::I32(0))]);
        let dead = b.mul(p, b.const_i32(0));
        let _ = b.icmp(IcmpPred::Eq, dead, dead);
        b.ret(Some(p));
        f
    }

    fn messy_module(n: usize) -> Module {
        Module::from_functions("m", (0..n).map(|i| messy(&format!("f{i}")))).unwrap()
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        let registry = PassRegistry::with_transforms();
        let spec = "fixpoint(simplify,instcombine,dce)";
        let mut serial = messy_module(9);
        let mut parallel = messy_module(9);
        let mpm1 = ModulePassManager::new(
            &registry,
            spec,
            ModuleOptions::serial(PipelineOptions::default()),
        )
        .unwrap();
        let r1 = mpm1.run(&mut serial).unwrap();
        assert_eq!(r1.jobs, 1);
        let mpm4 = ModulePassManager::new(
            &registry,
            spec,
            ModuleOptions {
                pipeline: PipelineOptions::default(),
                jobs: 4,
                ..ModuleOptions::default()
            },
        )
        .unwrap();
        let r4 = mpm4.run(&mut parallel).unwrap();
        assert_eq!(r4.jobs, 4);
        assert_eq!(serial.to_string(), parallel.to_string());
        // Reports are input-ordered in both.
        let order: Vec<&str> = r4.functions.iter().map(|f| f.function.as_str()).collect();
        assert_eq!(order, (0..9).map(|i| format!("f{i}")).collect::<Vec<_>>());
        assert_eq!(r1.functions.len(), r4.functions.len());
        // Each function collapsed to one block.
        for f in serial.functions() {
            assert_eq!(f.block_ids().len(), 1, "@{}", f.name());
        }
    }

    #[test]
    fn rollup_merges_slots_across_functions() {
        let registry = PassRegistry::with_transforms();
        let mut m = messy_module(3);
        let mpm = ModulePassManager::new(
            &registry,
            "simplify,dce",
            ModuleOptions::serial(PipelineOptions::default()),
        )
        .unwrap();
        let report = mpm.run(&mut m).unwrap();
        let rollup = report.rollup();
        assert_eq!(rollup.passes.len(), 2);
        assert_eq!(rollup.passes[0].name, "simplify");
        assert_eq!(rollup.passes[0].runs, 3, "one run per function");
        assert!(rollup.passes[1].units > 0, "dce removed something");
        let table = report.render();
        assert!(table.contains("3 function(s)"), "{table}");
        assert!(table.contains("| @f2 |"), "{table}");
    }

    #[test]
    fn schedule_claims_largest_functions_first() {
        let registry = PassRegistry::with_transforms();
        // f0 small, f1 big (pad with dead adds), f2 middling.
        let mut m = Module::new("m");
        for (i, pad) in [(0usize, 0usize), (1, 40), (2, 10)] {
            let mut f = messy(&format!("f{i}"));
            let entry = f.entry();
            let term = f.terminator(entry).unwrap();
            for k in 0..pad {
                f.insert_inst_before(
                    term,
                    darm_ir::InstData::new(
                        darm_ir::Opcode::Add,
                        darm_ir::Type::I32,
                        vec![Value::I32(k as i32), Value::I32(1)],
                    ),
                );
            }
            m.add_function(f).unwrap();
        }
        let mpm = ModulePassManager::new(&registry, "dce", ModuleOptions::default()).unwrap();
        assert_eq!(mpm.scheduled_order(&m), vec![1, 2, 0]);
        // Equal sizes keep input order (deterministic tie-break).
        let eq = messy_module(3);
        assert_eq!(mpm.scheduled_order(&eq), vec![0, 1, 2]);
        // Scheduling never leaks into results: the parallel run still
        // assembles input-ordered and bit-identical to serial.
        let mut serial = m.clone();
        let mut parallel = m.clone();
        let spec = "fixpoint(simplify,instcombine,dce)";
        ModulePassManager::new(
            &registry,
            spec,
            ModuleOptions::serial(PipelineOptions::default()),
        )
        .unwrap()
        .run(&mut serial)
        .unwrap();
        ModulePassManager::new(
            &registry,
            spec,
            ModuleOptions {
                pipeline: PipelineOptions::default(),
                jobs: 3,
                ..ModuleOptions::default()
            },
        )
        .unwrap()
        .run(&mut parallel)
        .unwrap();
        assert_eq!(serial.to_string(), parallel.to_string());
    }

    #[test]
    fn construction_validates_the_spec_up_front() {
        let registry = PassRegistry::with_transforms();
        let opts = ModuleOptions::default();
        assert!(matches!(
            ModulePassManager::new(&registry, "dce(", opts.clone()),
            Err(PipelineError::Spec(_))
        ));
        assert!(matches!(
            ModulePassManager::new(&registry, "frobnicate", opts),
            Err(PipelineError::UnknownPass { .. })
        ));
    }

    /// A registry whose `explode` pass panics on the named functions and
    /// is a no-op elsewhere.
    fn exploding_registry(victims: &'static [&'static str]) -> PassRegistry {
        let mut registry = PassRegistry::with_transforms();
        registry.register("explode", move || {
            Box::new(crate::passes::FnPass::new("explode", move |func, _am| {
                if victims.contains(&func.name()) {
                    panic!("boom in @{}", func.name());
                }
                Ok(crate::PassOutcome::unchanged())
            }))
        });
        registry
    }

    #[test]
    fn degrade_contains_a_panic_and_keeps_the_rest_optimized() {
        let registry = exploding_registry(&["f1"]);
        for jobs in [1, 4] {
            let mut m = messy_module(4);
            let before = m.functions()[1].to_string();
            let mpm = ModulePassManager::new(
                &registry,
                "explode,fixpoint(simplify,instcombine,dce)",
                ModuleOptions {
                    jobs,
                    on_error: OnError::Degrade,
                    ..ModuleOptions::default()
                },
            )
            .unwrap();
            let report = mpm.run(&mut m).expect("degrade mode never fails the run");
            assert_eq!(report.degraded_count(), 1, "jobs={jobs}");
            let (name, diag) = report.degraded().next().unwrap();
            assert_eq!(name, "f1");
            assert_eq!(diag.pass.as_deref(), Some("explode"));
            assert_eq!(diag.cause, FaultCause::Panic("boom in @f1".to_string()));
            // The degraded function is bit-identical to its input; the
            // others still went through the full pipeline.
            assert_eq!(m.functions()[1].to_string(), before, "jobs={jobs}");
            for (i, f) in m.functions().iter().enumerate() {
                if i != 1 {
                    assert_eq!(f.block_ids().len(), 1, "@{} jobs={jobs}", f.name());
                }
            }
            let table = report.render();
            assert!(table.contains("| @f1 | 0.000 | 0 | degraded |"), "{table}");
            assert!(table.contains("degraded: 1 function(s)"), "{table}");
        }
    }

    #[test]
    fn fail_mode_contains_the_panic_and_names_the_earliest_function() {
        // f1 and f3 both panic; the error must name f1 regardless of
        // worker scheduling — and the driver must not crash or poison.
        let registry = exploding_registry(&["f1", "f3"]);
        for jobs in [1, 4] {
            let mut m = messy_module(4);
            let mpm = ModulePassManager::new(
                &registry,
                "explode",
                ModuleOptions {
                    jobs,
                    ..ModuleOptions::default()
                },
            )
            .unwrap();
            match mpm.run(&mut m) {
                Err(PipelineError::Fault(diag)) => {
                    assert_eq!(diag.function, "f1", "jobs={jobs}");
                    assert_eq!(diag.pass.as_deref(), Some("explode"));
                    assert_eq!(diag.cause, FaultCause::Panic("boom in @f1".to_string()));
                }
                other => panic!("expected Fault, got {other:?}"),
            }
        }
    }

    #[test]
    fn pooled_serial_run_matches_fresh_instances() {
        // The serial path pools one pipeline instance across functions;
        // jobs=4 builds per-worker instances. Identical output proves
        // `reset_for_reuse` restores as-new behavior (cursors, baselines,
        // stats) between functions.
        let registry = PassRegistry::with_transforms();
        let spec = "fixpoint(simplify,instcombine,dce),ssa-repair";
        let mut pooled = messy_module(6);
        let mut fresh = messy_module(6);
        let serial = ModulePassManager::new(
            &registry,
            spec,
            ModuleOptions::serial(PipelineOptions::default()),
        )
        .unwrap();
        let report = serial.run(&mut pooled).unwrap();
        for func in fresh.functions_mut() {
            let mut pm = registry.build(spec, PipelineOptions::default()).unwrap();
            pm.run(func).unwrap();
        }
        assert_eq!(pooled.to_string(), fresh.to_string());
        assert!(report.functions.iter().all(|f| !f.outcome.is_degraded()));
    }

    #[test]
    fn failures_name_the_earliest_failing_function() {
        let registry = PassRegistry::with_transforms();
        // `verify` fails on broken SSA: build a module whose f1 and f3 are
        // broken; the error must name f1 regardless of worker order.
        let mut m = Module::new("m");
        for i in 0..4 {
            let mut f = messy(&format!("f{i}"));
            if i % 2 == 1 {
                // Point the ret at a non-dominating instruction.
                let blocks = f.block_ids();
                let t_inst = f.insts_of(blocks[1])[0];
                let x = *blocks.last().unwrap();
                let term = f.terminator(x).unwrap();
                f.inst_mut(term).operands[0] = Value::Inst(t_inst);
            }
            m.add_function(f).unwrap();
        }
        let mpm = ModulePassManager::new(
            &registry,
            "verify",
            ModuleOptions {
                pipeline: PipelineOptions::default(),
                jobs: 4,
                ..ModuleOptions::default()
            },
        )
        .unwrap();
        match mpm.run(&mut m) {
            Err(PipelineError::InFunction { function, .. }) => assert_eq!(function, "f1"),
            other => panic!("expected InFunction, got {other:?}"),
        }
    }
}
