//! Dominator and post-dominator trees, dominance frontiers, and iterated
//! dominance frontiers — plus *incremental maintenance* for the local CFG
//! edits control-flow melding performs.
//!
//! Implements the Cooper–Harvey–Kennedy "engineered" dominance algorithm on
//! reverse post-order. The post-dominator tree runs the same core on the
//! reversed CFG with a virtual exit node collecting all `ret` blocks.
//!
//! ## Incremental updates
//!
//! [`DomTree::try_update`] / [`PostDomTree::try_update`] accept the
//! normalized [`EditSummary`] of a mutation window (derived from the
//! `darm-ir` journal) and update the existing tree without a from-scratch
//! recompute when the edit batch matches a supported shape:
//!
//! * **No graph change** (blocks added/removed off the reachable region):
//!   arrays extend/clear in place.
//! * **Edge subdivision** (the landing pads of region simplification —
//!   "split edge" generalized to many sources): an exact O(depth) local
//!   rule on the dominator tree, in the spirit of Ramalingam–Reps.
//! * **Insertion-only batches** ("redirect branch" toward a new target,
//!   newly attached blocks): re-converge the CHK fixpoint *seeded from the
//!   old tree*. For pure insertions the old tree is a pre-fixpoint above
//!   the true solution, so the descending iteration provably lands on the
//!   exact new tree — typically in one sweep over the affected region.
//!
//! Anything else (deletions, wholesale region rewrites) returns `None` and
//! the caller recomputes. Either way the result is *bit-identical* to a
//! fresh computation — `prop_incremental.rs` holds `try_update` to that
//! under randomized edit sequences. [`DomTree::changed_from`] then reports
//! which blocks' dominator chains differ between two trees, which is what
//! lets SSA repair rescan only the region whose dominance actually moved.

use crate::cfg::Cfg;
use darm_ir::{BlockId, CfgEdit, Function};

/// Core dominator computation over an abstract graph of `n` nodes.
/// Returns `idom[v]` (None for the root and unreachable nodes).
fn compute_idoms(n: usize, root: usize, preds: &[Vec<usize>], rpo: &[usize]) -> Vec<Option<usize>> {
    compute_idoms_seeded(n, root, preds, rpo, None)
}

/// [`compute_idoms`] with an optional seed tree. Seeding is only sound when
/// the seed is a pre-fixpoint of the new graph's dominator equations —
/// i.e. the previous tree after *edge insertions only* (constraints only
/// tighten, so the descending iteration still converges to the unique
/// greatest fixpoint, the true dominator tree).
fn compute_idoms_seeded(
    n: usize,
    root: usize,
    preds: &[Vec<usize>],
    rpo: &[usize],
    seed: Option<&[Option<usize>]>,
) -> Vec<Option<usize>> {
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    if let Some(seed) = seed {
        for &b in rpo {
            // Seed only nodes the old tree knew as reachable; freshly
            // reachable nodes start unconstrained (⊤).
            if b != root {
                if let Some(Some(old)) = seed.get(b) {
                    if rpo_index[*old] != usize::MAX {
                        idom[b] = Some(*old);
                    }
                }
            }
        }
    }
    idom[root] = Some(root);
    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].expect("processed node must have idom");
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].expect("processed node must have idom");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b] != Some(ni) {
                    idom[b] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom[root] = None; // root has no immediate dominator
    idom
}

fn tree_depths(n: usize, idom: &[Option<usize>], root: usize) -> Vec<u32> {
    let mut depth = vec![u32::MAX; n];
    depth[root] = 0;
    // Nodes form a forest rooted at `root`; resolve depths iteratively.
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if depth[v] != u32::MAX {
                continue;
            }
            if let Some(d) = idom[v] {
                if depth[d] != u32::MAX {
                    depth[v] = depth[d] + 1;
                    changed = true;
                }
            }
        }
    }
    depth
}

/// The dominator tree of a function.
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<usize>>,
    depth: Vec<u32>,
    entry: usize,
}

impl DomTree {
    /// Computes the dominator tree from a CFG snapshot.
    pub fn new(func: &Function, cfg: &Cfg) -> DomTree {
        let n = func.block_capacity();
        let mut preds = vec![Vec::new(); n];
        for &b in cfg.rpo() {
            for &p in cfg.preds(b) {
                if cfg.is_reachable(p) {
                    preds[b.index()].push(p.index());
                }
            }
        }
        let rpo: Vec<usize> = cfg.rpo().iter().map(|b| b.index()).collect();
        let entry = cfg.entry().index();
        let idom = compute_idoms(n, entry, &preds, &rpo);
        let depth = tree_depths(n, &idom, entry);
        DomTree { idom, depth, entry }
    }

    /// The immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()].map(BlockId::new)
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let (a, mut b) = (a.index(), b.index());
        if self.depth[a] == u32::MAX || self.depth[b] == u32::MAX {
            return false;
        }
        while self.depth[b] > self.depth[a] {
            b = self.idom[b].expect("depth > 0 implies idom");
        }
        a == b
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The entry block the tree is rooted at.
    pub fn root(&self) -> BlockId {
        BlockId::new(self.entry)
    }

    /// Dominance frontiers (Cooper's algorithm). Indexed by block arena
    /// index; each frontier is sorted and deduplicated.
    pub fn dominance_frontiers(&self, cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = self.idom.len();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for &b in cfg.rpo() {
            let preds = cfg.preds(b);
            if preds.len() < 2 {
                continue;
            }
            let Some(idom_b) = self.idom[b.index()] else {
                continue;
            };
            for &p in preds {
                if !cfg.is_reachable(p) {
                    continue;
                }
                let mut runner = p.index();
                while runner != idom_b {
                    df[runner].push(b);
                    match self.idom[runner] {
                        Some(next) => runner = next,
                        None => break,
                    }
                }
            }
        }
        for fr in &mut df {
            fr.sort();
            fr.dedup();
        }
        df
    }

    /// Iterated dominance frontier of a set of blocks — the φ-placement set
    /// of classic SSA construction, also used for sync-dependence and SSA
    /// repair.
    pub fn iterated_dominance_frontier(&self, cfg: &Cfg, seeds: &[BlockId]) -> Vec<BlockId> {
        let df = self.dominance_frontiers(cfg);
        DomTree::iterated_frontier_from(&df, seeds)
    }

    /// [`DomTree::iterated_dominance_frontier`] over precomputed frontiers,
    /// so callers that query many seed sets against one CFG state (sync
    /// dependence per divergent branch, SSA repair per broken definition)
    /// compute the frontiers once and iterate many times.
    pub fn iterated_frontier_from(df: &[Vec<BlockId>], seeds: &[BlockId]) -> Vec<BlockId> {
        let n = df.len();
        let mut in_set = vec![false; n];
        let mut work: Vec<BlockId> = seeds.to_vec();
        let mut out = Vec::new();
        while let Some(b) = work.pop() {
            for &j in &df[b.index()] {
                if !in_set[j.index()] {
                    in_set[j.index()] = true;
                    out.push(j);
                    work.push(j);
                }
            }
        }
        out.sort();
        out
    }

    /// Nearest common ancestor of a non-empty set of reachable blocks.
    fn nca_many(&self, blocks: &[BlockId]) -> Option<BlockId> {
        let mut acc = blocks[0].index();
        if self.depth[acc] == u32::MAX {
            return None;
        }
        for &b in &blocks[1..] {
            let mut other = b.index();
            if self.depth[other] == u32::MAX {
                return None;
            }
            while acc != other {
                if self.depth[acc] >= self.depth[other] {
                    acc = self.idom[acc]?;
                } else {
                    other = self.idom[other].expect("depth > 0 implies idom");
                }
            }
        }
        Some(BlockId::new(acc))
    }

    /// Incrementally updates the tree for the mutation window summarized in
    /// `summary`, where `cfg` is a snapshot of the *post-edit* CFG. Returns
    /// `None` when the batch shape is unsupported (the caller recomputes);
    /// a returned tree is exactly equal to `DomTree::new(func, cfg)`.
    pub fn try_update(&self, func: &Function, cfg: &Cfg, summary: &EditSummary) -> Option<DomTree> {
        let n = func.block_capacity();
        // Structurally clean: reachable subgraph untouched, only extend or
        // clear arena slots.
        if summary.is_structurally_clean() {
            if summary
                .removed_blocks
                .iter()
                .any(|&b| self.depth.get(b.index()).copied() != Some(u32::MAX))
            {
                return None; // a reachable block vanished without edge edits?
            }
            let mut idom = self.idom.clone();
            let mut depth = self.depth.clone();
            idom.resize(n, None);
            depth.resize(n, u32::MAX);
            for &b in &summary.removed_blocks {
                idom[b.index()] = None;
                depth[b.index()] = u32::MAX;
            }
            return Some(DomTree {
                idom,
                depth,
                entry: self.entry,
            });
        }
        // Edge subdivision (landing pad): exact local rule.
        if let Some((m, t, sources)) = summary.as_subdivision(func) {
            if t.index() >= self.depth.len() || self.depth[t.index()] == u32::MAX {
                return None;
            }
            if sources
                .iter()
                .any(|&s| s.index() >= self.depth.len() || self.depth[s.index()] == u32::MAX)
            {
                return None;
            }
            let mut idom = self.idom.clone();
            idom.resize(n, None);
            // `m` captures `t` ⇔ every entry path to `t` crosses a
            // redirected edge ⇔ every current in-edge of `t` comes from
            // `m` or from a block `t` itself dominated (a back edge,
            // which contributes no entry path).
            let covered = cfg
                .preds(t)
                .iter()
                .all(|&p| p == m || (p.index() < self.depth.len() && self.dominates(t, p)));
            if covered {
                let old_idom_t = self.idom[t.index()]?;
                idom[m.index()] = Some(old_idom_t);
                idom[t.index()] = Some(m.index());
            } else {
                let nca = self.nca_many(&sources)?;
                idom[m.index()] = Some(nca.index());
            }
            let depth = depths_in_order(&idom, self.entry, cfg.rpo().iter().map(|b| b.index()), n);
            return Some(DomTree {
                idom,
                depth,
                entry: self.entry,
            });
        }
        // Insertion-only batch: re-converge the fixpoint seeded from the
        // old tree (sound because constraints only tighten).
        if summary.removed_edges.is_empty() && summary.removed_blocks.is_empty() {
            let mut preds = vec![Vec::new(); n];
            for &b in cfg.rpo() {
                for &p in cfg.preds(b) {
                    if cfg.is_reachable(p) {
                        preds[b.index()].push(p.index());
                    }
                }
            }
            let rpo: Vec<usize> = cfg.rpo().iter().map(|b| b.index()).collect();
            let idom = compute_idoms_seeded(n, self.entry, &preds, &rpo, Some(&self.idom));
            let depth = depths_in_order(&idom, self.entry, rpo.iter().copied(), n);
            return Some(DomTree {
                idom,
                depth,
                entry: self.entry,
            });
        }
        None
    }

    /// Which blocks' dominator *chains* differ between `old` and `new` —
    /// i.e. the blocks for which any `dominates(_, b)` answer may have
    /// changed. Indexed by block arena index of `new`'s function state;
    /// blocks unreachable in the new tree are reported unchanged (no
    /// analysis walks them).
    pub fn changed_from(old: &DomTree, new: &DomTree, cfg: &Cfg) -> Vec<bool> {
        let n = new.idom.len();
        let mut changed = vec![false; n];
        for &b in cfg.rpo() {
            let i = b.index();
            let old_covers = i < old.idom.len() && old.depth[i] != u32::MAX;
            let idom_differs = !old_covers || old.idom[i] != new.idom[i];
            changed[i] = idom_differs
                || new.idom[i].is_some_and(|p| changed[p])
                || old.depth[i] != new.depth[i];
        }
        changed
    }
}

/// Rebuilds the depth array from an idom array, visiting nodes in an order
/// where every node's idom precedes it (reverse post-order has this
/// property for dominator trees).
fn depths_in_order(
    idom: &[Option<usize>],
    root: usize,
    order: impl Iterator<Item = usize>,
    n: usize,
) -> Vec<u32> {
    let mut depth = vec![u32::MAX; n];
    depth[root] = 0;
    for b in order {
        if b == root {
            continue;
        }
        if let Some(p) = idom[b] {
            if depth[p] != u32::MAX {
                depth[b] = depth[p] + 1;
            }
        }
    }
    depth
}

/// Net block-graph change of a journal window, normalized against the
/// *post-edit* function: an edge (or block) appears here only if its
/// existence actually flipped across the window — transient add/remove
/// pairs and conservative same-edge delete/insert records cancel out.
#[derive(Debug, Clone, Default)]
pub struct EditSummary {
    /// Blocks that are alive now but were not before the window.
    pub added_blocks: Vec<BlockId>,
    /// Blocks that were alive before the window and are tombstoned now.
    pub removed_blocks: Vec<BlockId>,
    /// Edges that exist now but did not before.
    pub added_edges: Vec<(BlockId, BlockId)>,
    /// Edges that existed before but do not now.
    pub removed_edges: Vec<(BlockId, BlockId)>,
}

impl EditSummary {
    /// Normalizes an ordered [`CfgEdit`] log against the current state of
    /// `func`. Edge existence *before* the window is reconstructed
    /// arithmetically: `count_before = count_now - inserts + deletes` per
    /// (from, to) pair, so duplicate edges (`br c, X, X`) and cancelling
    /// event pairs are handled exactly.
    pub fn normalize(func: &Function, edits: &[CfgEdit]) -> EditSummary {
        use std::collections::HashMap;
        let mut blocks_added: Vec<BlockId> = Vec::new();
        let mut blocks_removed: Vec<BlockId> = Vec::new();
        let mut net: HashMap<(BlockId, BlockId), (i64, i64)> = HashMap::new();
        for &e in edits {
            match e {
                CfgEdit::BlockAdded(b) => blocks_added.push(b),
                CfgEdit::BlockRemoved(b) => blocks_removed.push(b),
                CfgEdit::EdgeInserted(u, v) => net.entry((u, v)).or_default().0 += 1,
                CfgEdit::EdgeDeleted(u, v) => net.entry((u, v)).or_default().1 += 1,
            }
        }
        let mut summary = EditSummary::default();
        blocks_added.sort_unstable();
        blocks_added.dedup();
        for b in blocks_added {
            // Added and later removed in the same window → net nothing.
            if func.is_block_alive(b) {
                summary.added_blocks.push(b);
            }
        }
        blocks_removed.sort_unstable();
        blocks_removed.dedup();
        for b in blocks_removed {
            // A block can only be added once (fresh arena slot), so a
            // removed block that was also added nets out entirely.
            if !func.is_block_alive(b) && !edits.contains(&CfgEdit::BlockAdded(b)) {
                summary.removed_blocks.push(b);
            }
        }
        let mut pairs: Vec<((BlockId, BlockId), (i64, i64))> = net.into_iter().collect();
        pairs.sort_unstable();
        for ((u, v), (ins, del)) in pairs {
            let now = if func.is_block_alive(u) {
                func.succs(u).iter().filter(|&&s| s == v).count() as i64
            } else {
                0
            };
            let before = now - ins + del;
            match (before > 0, now > 0) {
                (false, true) => summary.added_edges.push((u, v)),
                (true, false) => summary.removed_edges.push((u, v)),
                _ => {}
            }
        }
        summary
    }

    /// Whether the reachable block graph is untouched: no edge flipped and
    /// every removed block is gone without ever having carried edges.
    pub fn is_structurally_clean(&self) -> bool {
        self.added_edges.is_empty() && self.removed_edges.is_empty()
    }

    /// Whether `u` had any out-edge before the window. Existence-level, not
    /// multiset arithmetic (a duplicate-target branch has two successor
    /// entries but one edge): an edge existed before iff it exists now and
    /// was not added in the window, or was removed in the window.
    fn had_out_edge_before(&self, func: &Function, u: BlockId) -> bool {
        if func.is_block_alive(u)
            && func
                .succs(u)
                .iter()
                .any(|&v| !self.added_edges.contains(&(u, v)))
        {
            return true;
        }
        self.removed_edges.iter().any(|&(a, _)| a == u)
    }

    /// Recognizes the *edge subdivision* shape: all edges `s → t` from a
    /// source set `S` redirected through one fresh block `m` (`s → m → t`).
    /// Returns `(m, t, S)`.
    fn as_subdivision(&self, func: &Function) -> Option<(BlockId, BlockId, Vec<BlockId>)> {
        if !self.removed_blocks.is_empty() || self.added_blocks.len() != 1 {
            return None;
        }
        let m = self.added_blocks[0];
        if !func.is_block_alive(m) || func.succs(m).len() != 1 {
            return None;
        }
        let t = func.succs(m)[0];
        // Expected additions: (m, t) plus (s, m) for each source.
        let mut sources = Vec::new();
        let mut saw_exit_edge = false;
        for &(u, v) in &self.added_edges {
            if (u, v) == (m, t) {
                saw_exit_edge = true;
            } else if v == m {
                sources.push(u);
            } else {
                return None;
            }
        }
        if !saw_exit_edge || sources.is_empty() {
            return None;
        }
        sources.sort_unstable();
        sources.dedup();
        let mut removed: Vec<BlockId> = self
            .removed_edges
            .iter()
            .map(|&(u, v)| if v == t { Some(u) } else { None })
            .collect::<Option<Vec<_>>>()?;
        removed.sort_unstable();
        removed.dedup();
        if removed != sources {
            return None;
        }
        Some((m, t, sources))
    }
}

/// The post-dominator tree of a function, computed over the reversed CFG
/// with a virtual exit.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    idom: Vec<Option<usize>>,
    depth: Vec<u32>,
    /// Index of the virtual exit node (== number of block slots).
    virtual_exit: usize,
}

/// Builds the reversed graph (with a virtual exit collecting terminator-
/// less blocks) and its reverse post-order from the virtual exit.
fn build_reverse_graph(n: usize, cfg: &Cfg) -> (Vec<Vec<usize>>, Vec<usize>) {
    let virtual_exit = n;
    // Reversed graph: rev_preds[v] = successors of v in the original CFG,
    // plus edges ret-block -> virtual exit.
    let mut rev_preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for &b in cfg.rpo() {
        for &s in cfg.succs(b) {
            rev_preds[b.index()].push(s.index());
        }
        if cfg.succs(b).is_empty() {
            rev_preds[b.index()].push(virtual_exit);
        }
    }
    // RPO of the reversed graph = reverse of a post-order DFS from the
    // virtual exit following reversed edges (original succ -> pred).
    let mut rev_succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    for (v, ps) in rev_preds.iter().enumerate() {
        for &p in ps {
            rev_succs[p].push(v);
        }
    }
    let mut visited = vec![false; n + 1];
    let mut post = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(virtual_exit, 0)];
    visited[virtual_exit] = true;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        if *i < rev_succs[v].len() {
            let s = rev_succs[v][*i];
            *i += 1;
            if !visited[s] {
                visited[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(v);
            stack.pop();
        }
    }
    post.reverse();
    (rev_preds, post)
}

impl PostDomTree {
    /// Computes the post-dominator tree from a CFG snapshot.
    pub fn new(func: &Function, cfg: &Cfg) -> PostDomTree {
        let n = func.block_capacity();
        let virtual_exit = n;
        let (rev_preds, post) = build_reverse_graph(n, cfg);
        let idom = compute_idoms(n + 1, virtual_exit, &rev_preds, &post);
        let depth = tree_depths(n + 1, &idom, virtual_exit);
        PostDomTree {
            idom,
            depth,
            virtual_exit,
        }
    }

    /// Incremental analogue of [`DomTree::try_update`] on the reversed
    /// graph. Supports structurally-clean windows and insertion-only
    /// batches whose sources already had a successor (so no block loses its
    /// virtual-exit edge — that would be a *deletion* in the reversed
    /// graph). Returns `None` otherwise; a returned tree equals
    /// `PostDomTree::new(func, cfg)` exactly.
    pub fn try_update(
        &self,
        func: &Function,
        cfg: &Cfg,
        summary: &EditSummary,
    ) -> Option<PostDomTree> {
        let n = func.block_capacity();
        let remap = |v: usize| if v == self.virtual_exit { n } else { v };
        if summary.is_structurally_clean() {
            if summary
                .removed_blocks
                .iter()
                .any(|&b| self.depth.get(b.index()).copied() != Some(u32::MAX))
            {
                return None;
            }
            // Extend to the new capacity, moving the virtual exit from the
            // old arena bound to the new one.
            let mut idom = vec![None; n + 1];
            let mut depth = vec![u32::MAX; n + 1];
            for v in 0..self.idom.len() {
                let tv = remap(v);
                idom[tv] = self.idom[v].map(remap);
                depth[tv] = self.depth[v];
            }
            for &b in &summary.removed_blocks {
                idom[b.index()] = None;
                depth[b.index()] = u32::MAX;
            }
            return Some(PostDomTree {
                idom,
                depth,
                virtual_exit: n,
            });
        }
        if summary.removed_edges.is_empty() && summary.removed_blocks.is_empty() {
            // A forward insertion is a reverse insertion too — unless the
            // source previously had no successors, in which case it loses
            // its virtual-exit edge (a reverse deletion): fall back.
            let mut sources: Vec<BlockId> = summary.added_edges.iter().map(|&(u, _)| u).collect();
            sources.sort_unstable();
            sources.dedup();
            for &u in &sources {
                let newly_added = summary.added_blocks.contains(&u);
                let was_unreachable =
                    u.index() >= self.depth.len() || self.depth[u.index()] == u32::MAX;
                if !newly_added && !was_unreachable && !summary.had_out_edge_before(func, u) {
                    return None;
                }
            }
            let (rev_preds, post) = build_reverse_graph(n, cfg);
            let mut seed = vec![None; n + 1];
            for v in 0..self.idom.len() {
                seed[remap(v)] = self.idom[v].map(remap);
            }
            let idom = compute_idoms_seeded(n + 1, n, &rev_preds, &post, Some(&seed));
            let depth = depths_in_order(&idom, n, post.iter().copied(), n + 1);
            return Some(PostDomTree {
                idom,
                depth,
                virtual_exit: n,
            });
        }
        None
    }

    /// The immediate post-dominator of `b`; `None` means the virtual exit
    /// (i.e. the function return).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(v) if v != self.virtual_exit => Some(BlockId::new(v)),
            _ => None,
        }
    }

    /// Whether `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let (a, mut b) = (a.index(), b.index());
        if self.depth[a] == u32::MAX || self.depth[b] == u32::MAX {
            return false;
        }
        while self.depth[b] > self.depth[a] {
            b = self.idom[b].expect("depth > 0 implies idom");
        }
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Function, IcmpPred, Type, Value};

    /// entry -> {t, e}; t -> x; e -> x; x -> ret
    fn diamond() -> (Function, Vec<BlockId>) {
        let mut f = Function::new("d", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        let ids = f.block_ids();
        (f, ids)
    }

    /// Nested diamond on the true side:
    /// entry -> {a, e}; a -> {b, c}; b -> m; c -> m; m -> x; e -> x; x ret
    fn nested() -> (Function, Vec<BlockId>) {
        let mut f = Function::new("n", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let a = f.add_block("a");
        let bb = f.add_block("b");
        let c = f.add_block("c");
        let m = f.add_block("m");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c0 = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c0, a, e);
        b.switch_to(a);
        let c1 = b.icmp(IcmpPred::Sgt, Value::Param(0), Value::I32(10));
        b.br(c1, bb, c);
        b.switch_to(bb);
        b.jump(m);
        b.switch_to(c);
        b.jump(m);
        b.switch_to(m);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        let ids = f.block_ids();
        (f, ids)
    }

    #[test]
    fn diamond_dominators() {
        let (f, ids) = diamond();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(t), Some(entry));
        assert_eq!(dt.idom(e), Some(entry));
        assert_eq!(dt.idom(x), Some(entry));
        assert!(dt.dominates(entry, x));
        assert!(!dt.dominates(t, x));
        assert!(dt.dominates(t, t));
        assert!(dt.strictly_dominates(entry, t));
        assert!(!dt.strictly_dominates(t, t));
    }

    #[test]
    fn diamond_post_dominators() {
        let (f, ids) = diamond();
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(pdt.ipdom(entry), Some(x));
        assert_eq!(pdt.ipdom(t), Some(x));
        assert_eq!(pdt.ipdom(e), Some(x));
        assert_eq!(pdt.ipdom(x), None);
        assert!(pdt.post_dominates(x, entry));
        assert!(!pdt.post_dominates(t, entry));
        assert!(!pdt.post_dominates(t, e));
        assert!(!pdt.post_dominates(e, t));
    }

    #[test]
    fn nested_ipdom_chain() {
        let (f, ids) = nested();
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let (_entry, a, _b, _c, m, _e, x) =
            (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);
        assert_eq!(pdt.ipdom(a), Some(m));
        assert_eq!(pdt.ipdom(m), Some(x));
    }

    #[test]
    fn dominance_frontiers_of_diamond() {
        let (f, ids) = diamond();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let df = dt.dominance_frontiers(&cfg);
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(df[t.index()], vec![x]);
        assert_eq!(df[e.index()], vec![x]);
        assert!(df[entry.index()].is_empty());
        assert!(df[x.index()].is_empty());
    }

    #[test]
    fn idf_of_branch_successors_is_join() {
        let (f, ids) = nested();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let (bb, c, m) = (ids[2], ids[3], ids[4]);
        // Values merging at m can merge again at x (where m's path joins e's),
        // so the iterated frontier is {m, x}.
        let idf = dt.iterated_dominance_frontier(&cfg, &[bb, c]);
        assert_eq!(idf, vec![m, ids[6]]);
        // outer branch successors join at x
        let (a, e, x) = (ids[1], ids[5], ids[6]);
        let idf2 = dt.iterated_dominance_frontier(&cfg, &[a, e]);
        assert_eq!(idf2, vec![x]);
    }

    #[test]
    fn loop_post_dominators() {
        // entry -> h; h -> {body, exit}; body -> h
        let mut f = Function::new("l", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let h = f.add_block("h");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let mut b = FunctionBuilder::new(&mut f, entry);
        b.jump(h);
        b.switch_to(h);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c, body, exit);
        b.switch_to(body);
        b.jump(h);
        b.switch_to(exit);
        b.ret(None);
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let dt = DomTree::new(&f, &cfg);
        assert_eq!(pdt.ipdom(h), Some(exit));
        assert_eq!(pdt.ipdom(body), Some(h));
        assert_eq!(dt.idom(body), Some(h));
        assert!(dt.dominates(h, body));
    }
}
