//! Dominator and post-dominator trees, dominance frontiers, and iterated
//! dominance frontiers.
//!
//! Implements the Cooper–Harvey–Kennedy "engineered" dominance algorithm on
//! reverse post-order. The post-dominator tree runs the same core on the
//! reversed CFG with a virtual exit node collecting all `ret` blocks.

use crate::cfg::Cfg;
use darm_ir::{BlockId, Function};

/// Core dominator computation over an abstract graph of `n` nodes.
/// Returns `idom[v]` (None for the root and unreachable nodes).
fn compute_idoms(n: usize, root: usize, preds: &[Vec<usize>], rpo: &[usize]) -> Vec<Option<usize>> {
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[root] = Some(root);
    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].expect("processed node must have idom");
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].expect("processed node must have idom");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b] != Some(ni) {
                    idom[b] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    idom[root] = None; // root has no immediate dominator
    idom
}

fn tree_depths(n: usize, idom: &[Option<usize>], root: usize) -> Vec<u32> {
    let mut depth = vec![u32::MAX; n];
    depth[root] = 0;
    // Nodes form a forest rooted at `root`; resolve depths iteratively.
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            if depth[v] != u32::MAX {
                continue;
            }
            if let Some(d) = idom[v] {
                if depth[d] != u32::MAX {
                    depth[v] = depth[d] + 1;
                    changed = true;
                }
            }
        }
    }
    depth
}

/// The dominator tree of a function.
#[derive(Debug, Clone)]
pub struct DomTree {
    idom: Vec<Option<usize>>,
    depth: Vec<u32>,
    entry: usize,
}

impl DomTree {
    /// Computes the dominator tree from a CFG snapshot.
    pub fn new(func: &Function, cfg: &Cfg) -> DomTree {
        let n = func.block_capacity();
        let mut preds = vec![Vec::new(); n];
        for &b in cfg.rpo() {
            for &p in cfg.preds(b) {
                if cfg.is_reachable(p) {
                    preds[b.index()].push(p.index());
                }
            }
        }
        let rpo: Vec<usize> = cfg.rpo().iter().map(|b| b.index()).collect();
        let entry = cfg.entry().index();
        let idom = compute_idoms(n, entry, &preds, &rpo);
        let depth = tree_depths(n, &idom, entry);
        DomTree { idom, depth, entry }
    }

    /// The immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()].map(BlockId::new)
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let (a, mut b) = (a.index(), b.index());
        if self.depth[a] == u32::MAX || self.depth[b] == u32::MAX {
            return false;
        }
        while self.depth[b] > self.depth[a] {
            b = self.idom[b].expect("depth > 0 implies idom");
        }
        a == b
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The entry block the tree is rooted at.
    pub fn root(&self) -> BlockId {
        BlockId::new(self.entry)
    }

    /// Dominance frontiers (Cooper's algorithm). Indexed by block arena
    /// index; each frontier is sorted and deduplicated.
    pub fn dominance_frontiers(&self, cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = self.idom.len();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for &b in cfg.rpo() {
            let preds = cfg.preds(b);
            if preds.len() < 2 {
                continue;
            }
            let Some(idom_b) = self.idom[b.index()] else {
                continue;
            };
            for &p in preds {
                if !cfg.is_reachable(p) {
                    continue;
                }
                let mut runner = p.index();
                while runner != idom_b {
                    df[runner].push(b);
                    match self.idom[runner] {
                        Some(next) => runner = next,
                        None => break,
                    }
                }
            }
        }
        for fr in &mut df {
            fr.sort();
            fr.dedup();
        }
        df
    }

    /// Iterated dominance frontier of a set of blocks — the φ-placement set
    /// of classic SSA construction, also used for sync-dependence and SSA
    /// repair.
    pub fn iterated_dominance_frontier(&self, cfg: &Cfg, seeds: &[BlockId]) -> Vec<BlockId> {
        let df = self.dominance_frontiers(cfg);
        let n = self.idom.len();
        let mut in_set = vec![false; n];
        let mut work: Vec<BlockId> = seeds.to_vec();
        let mut out = Vec::new();
        while let Some(b) = work.pop() {
            for &j in &df[b.index()] {
                if !in_set[j.index()] {
                    in_set[j.index()] = true;
                    out.push(j);
                    work.push(j);
                }
            }
        }
        out.sort();
        out
    }
}

/// The post-dominator tree of a function, computed over the reversed CFG
/// with a virtual exit.
#[derive(Debug, Clone)]
pub struct PostDomTree {
    idom: Vec<Option<usize>>,
    depth: Vec<u32>,
    /// Index of the virtual exit node (== number of block slots).
    virtual_exit: usize,
}

impl PostDomTree {
    /// Computes the post-dominator tree from a CFG snapshot.
    pub fn new(func: &Function, cfg: &Cfg) -> PostDomTree {
        let n = func.block_capacity();
        let virtual_exit = n;
        // Reversed graph: rev_preds[v] = successors of v in the original CFG,
        // plus edges ret-block -> virtual exit.
        let mut rev_preds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                rev_preds[b.index()].push(s.index());
            }
            if cfg.succs(b).is_empty() {
                rev_preds[b.index()].push(virtual_exit);
            }
        }
        // RPO of the reversed graph = reverse of a post-order DFS from the
        // virtual exit following reversed edges (original succ -> pred).
        let mut rev_succs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (v, ps) in rev_preds.iter().enumerate() {
            for &p in ps {
                rev_succs[p].push(v);
            }
        }
        let mut visited = vec![false; n + 1];
        let mut post = Vec::new();
        let mut stack: Vec<(usize, usize)> = vec![(virtual_exit, 0)];
        visited[virtual_exit] = true;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < rev_succs[v].len() {
                let s = rev_succs[v][*i];
                *i += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(v);
                stack.pop();
            }
        }
        post.reverse();
        let idom = compute_idoms(n + 1, virtual_exit, &rev_preds, &post);
        let depth = tree_depths(n + 1, &idom, virtual_exit);
        PostDomTree {
            idom,
            depth,
            virtual_exit,
        }
    }

    /// The immediate post-dominator of `b`; `None` means the virtual exit
    /// (i.e. the function return).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(v) if v != self.virtual_exit => Some(BlockId::new(v)),
            _ => None,
        }
    }

    /// Whether `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let (a, mut b) = (a.index(), b.index());
        if self.depth[a] == u32::MAX || self.depth[b] == u32::MAX {
            return false;
        }
        while self.depth[b] > self.depth[a] {
            b = self.idom[b].expect("depth > 0 implies idom");
        }
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darm_ir::builder::FunctionBuilder;
    use darm_ir::{Function, IcmpPred, Type, Value};

    /// entry -> {t, e}; t -> x; e -> x; x -> ret
    fn diamond() -> (Function, Vec<BlockId>) {
        let mut f = Function::new("d", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let t = f.add_block("t");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c, t, e);
        b.switch_to(t);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        let ids = f.block_ids();
        (f, ids)
    }

    /// Nested diamond on the true side:
    /// entry -> {a, e}; a -> {b, c}; b -> m; c -> m; m -> x; e -> x; x ret
    fn nested() -> (Function, Vec<BlockId>) {
        let mut f = Function::new("n", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let a = f.add_block("a");
        let bb = f.add_block("b");
        let c = f.add_block("c");
        let m = f.add_block("m");
        let e = f.add_block("e");
        let x = f.add_block("x");
        let mut b = FunctionBuilder::new(&mut f, entry);
        let c0 = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c0, a, e);
        b.switch_to(a);
        let c1 = b.icmp(IcmpPred::Sgt, Value::Param(0), Value::I32(10));
        b.br(c1, bb, c);
        b.switch_to(bb);
        b.jump(m);
        b.switch_to(c);
        b.jump(m);
        b.switch_to(m);
        b.jump(x);
        b.switch_to(e);
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        let ids = f.block_ids();
        (f, ids)
    }

    #[test]
    fn diamond_dominators() {
        let (f, ids) = diamond();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(t), Some(entry));
        assert_eq!(dt.idom(e), Some(entry));
        assert_eq!(dt.idom(x), Some(entry));
        assert!(dt.dominates(entry, x));
        assert!(!dt.dominates(t, x));
        assert!(dt.dominates(t, t));
        assert!(dt.strictly_dominates(entry, t));
        assert!(!dt.strictly_dominates(t, t));
    }

    #[test]
    fn diamond_post_dominators() {
        let (f, ids) = diamond();
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(pdt.ipdom(entry), Some(x));
        assert_eq!(pdt.ipdom(t), Some(x));
        assert_eq!(pdt.ipdom(e), Some(x));
        assert_eq!(pdt.ipdom(x), None);
        assert!(pdt.post_dominates(x, entry));
        assert!(!pdt.post_dominates(t, entry));
        assert!(!pdt.post_dominates(t, e));
        assert!(!pdt.post_dominates(e, t));
    }

    #[test]
    fn nested_ipdom_chain() {
        let (f, ids) = nested();
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let (_entry, a, _b, _c, m, _e, x) =
            (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);
        assert_eq!(pdt.ipdom(a), Some(m));
        assert_eq!(pdt.ipdom(m), Some(x));
    }

    #[test]
    fn dominance_frontiers_of_diamond() {
        let (f, ids) = diamond();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let df = dt.dominance_frontiers(&cfg);
        let (entry, t, e, x) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(df[t.index()], vec![x]);
        assert_eq!(df[e.index()], vec![x]);
        assert!(df[entry.index()].is_empty());
        assert!(df[x.index()].is_empty());
    }

    #[test]
    fn idf_of_branch_successors_is_join() {
        let (f, ids) = nested();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let (bb, c, m) = (ids[2], ids[3], ids[4]);
        // Values merging at m can merge again at x (where m's path joins e's),
        // so the iterated frontier is {m, x}.
        let idf = dt.iterated_dominance_frontier(&cfg, &[bb, c]);
        assert_eq!(idf, vec![m, ids[6]]);
        // outer branch successors join at x
        let (a, e, x) = (ids[1], ids[5], ids[6]);
        let idf2 = dt.iterated_dominance_frontier(&cfg, &[a, e]);
        assert_eq!(idf2, vec![x]);
    }

    #[test]
    fn loop_post_dominators() {
        // entry -> h; h -> {body, exit}; body -> h
        let mut f = Function::new("l", vec![Type::I32], Type::Void);
        let entry = f.entry();
        let h = f.add_block("h");
        let body = f.add_block("body");
        let exit = f.add_block("exit");
        let mut b = FunctionBuilder::new(&mut f, entry);
        b.jump(h);
        b.switch_to(h);
        let c = b.icmp(IcmpPred::Slt, Value::Param(0), Value::I32(0));
        b.br(c, body, exit);
        b.switch_to(body);
        b.jump(h);
        b.switch_to(exit);
        b.ret(None);
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let dt = DomTree::new(&f, &cfg);
        assert_eq!(pdt.ipdom(h), Some(exit));
        assert_eq!(pdt.ipdom(body), Some(h));
        assert_eq!(dt.idom(body), Some(h));
        assert!(dt.dominates(h, body));
    }
}
